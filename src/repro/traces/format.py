"""CRAWDAD-style contact-trace files.

The Haggle and Reality Mining contact logs circulate as whitespace-
separated "one contact per line" text files.  We read and write the
common layout::

    <u> <v> <t_beg> <t_end>

with ``#``-prefixed comment lines.  Node identifiers are kept as integers
when they parse as integers and as strings otherwise, so external-device
ids like ``ext12`` round-trip.  A user with the real CRAWDAD data can load
it through :func:`read_contacts` and run the exact pipeline of the paper.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, TextIO, Union

from ..core.contact import Contact, Node
from ..core.temporal_network import TemporalNetwork
from ..obs import get_obs

PathLike = Union[str, Path]


def _parse_node(token: str) -> Node:
    """Ints for canonical integer literals, strings otherwise.

    Only tokens that are the *canonical* decimal form of an integer
    become ints: ``"5"`` -> 5 but ``"05"`` and ``"+5"`` stay strings.
    A non-canonical token would not write back as itself, so treating it
    as an int silently merged distinct node identities (``"05"`` used to
    read back as node 5).
    """
    try:
        value = int(token)
    except ValueError:
        return token
    return value if str(value) == token else token


def parse_contact_line(line: str, line_number: int = 0) -> "Contact | None":
    """Parse one trace line; returns None for blank/comment lines.

    Raises ValueError (with the line number) on malformed lines.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    fields = stripped.split()
    if len(fields) < 4:
        raise ValueError(
            f"line {line_number}: expected 'u v t_beg t_end', got {stripped!r}"
        )
    u, v = _parse_node(fields[0]), _parse_node(fields[1])
    try:
        t_beg, t_end = float(fields[2]), float(fields[3])
    except ValueError as exc:
        raise ValueError(f"line {line_number}: bad timestamps in {stripped!r}") from exc
    return Contact(t_beg, t_end, u, v)


def iter_contacts(stream: TextIO) -> Iterable[Contact]:
    """Contacts from an open text stream, skipping comments and blanks."""
    for number, line in enumerate(stream, start=1):
        contact = parse_contact_line(line, number)
        if contact is not None:
            yield contact


def read_contacts(path: PathLike, directed: bool = False) -> TemporalNetwork:
    """Load a contact-trace file into a :class:`TemporalNetwork`."""
    obs = get_obs()
    with obs.span("traces.read_contacts", path=str(path)) as span, obs.timer(
        "traces.read_contacts"
    ):
        with open(path, "r", encoding="utf-8") as stream:
            contacts = list(iter_contacts(stream))
        net = TemporalNetwork(contacts, directed=directed)
        if obs.enabled:
            span.set(contacts=len(contacts), devices=len(net))
            obs.metrics.counter("traces.contacts_read").inc(len(contacts))
    return net


def write_contacts(
    net: TemporalNetwork, path: PathLike, header: str = ""
) -> None:
    """Write a network's contacts in the one-contact-per-line layout."""
    with open(path, "w", encoding="utf-8") as stream:
        dump_contacts(net, stream, header=header)


def _format_node(node: Node) -> str:
    """The on-disk token of a node id; rejects ids that cannot round-trip.

    A *string* id whose text is a canonical integer literal (``"5"``) or
    contains whitespace/``#`` would read back as a different identity —
    refuse to write it rather than corrupt the trace.
    """
    text = str(node)
    if isinstance(node, str):
        if not text or any(c.isspace() for c in text):
            raise ValueError(f"node id {node!r} cannot round-trip through a trace file")
        if text.startswith("#"):
            raise ValueError(f"node id {node!r} would parse as a comment")
        if _parse_node(text) != node:
            raise ValueError(
                f"ambiguous node id {node!r}: it would read back as the "
                f"integer {_parse_node(text)!r}"
            )
    return text


def dump_contacts(net: TemporalNetwork, stream: TextIO, header: str = "") -> None:
    """Write contacts to an open stream (see :func:`write_contacts`)."""
    if header:
        for line in header.splitlines():
            stream.write(f"# {line}\n")
    stream.write(f"# nodes={len(net)} contacts={net.num_contacts}\n")
    for contact in net.contacts:
        u, v = _format_node(contact.u), _format_node(contact.v)
        stream.write(f"{u} {v} {contact.t_beg:.6f} {contact.t_end:.6f}\n")


def dumps_contacts(net: TemporalNetwork, header: str = "") -> str:
    """The trace-file text of a network (for tests and small traces)."""
    buffer = io.StringIO()
    dump_contacts(net, buffer, header=header)
    return buffer.getvalue()


def loads_contacts(text: str, directed: bool = False) -> TemporalNetwork:
    """Parse trace-file text into a network (inverse of dumps_contacts)."""
    contacts: List[Contact] = list(iter_contacts(io.StringIO(text)))
    return TemporalNetwork(contacts, directed=directed)
