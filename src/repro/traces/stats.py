"""Descriptive statistics of contact traces.

Everything Table 1 and the preliminary observations of Section 5 report:
contact counts and per-node contact rates, contact-duration distributions
(Figure 7), inter-contact times (the statistic earlier work focused on),
and the "next contact" function of Figure 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.cdf import EmpiricalCDF
from ..core.contact import Contact, Node
from ..core.temporal_network import TemporalNetwork

HOUR = 3600.0
DAY = 86400.0


@dataclass(frozen=True)
class TraceSummary:
    """The Table 1 row of a trace."""

    name: str
    duration_days: float
    granularity_s: Optional[float]
    num_devices: int
    num_contacts: int
    contact_rate_per_device_per_hour: float

    def as_row(self) -> List[object]:
        return [
            self.name,
            round(self.duration_days, 2),
            self.granularity_s if self.granularity_s is not None else "-",
            self.num_devices,
            self.num_contacts,
            round(self.contact_rate_per_device_per_hour, 3),
        ]


def contact_rate_per_device_per_hour(net: TemporalNetwork) -> float:
    """Average contacts initiated per device per hour.

    Each (undirected) contact involves two devices; the paper's "rate of
    contact" rows count contacts per participating device, i.e.
    ``2 * contacts / (devices * duration)``.
    """
    if len(net) == 0 or net.duration <= 0:
        return 0.0
    return 2.0 * net.num_contacts / (len(net) * (net.duration / HOUR))


def summarize(
    net: TemporalNetwork, name: str, granularity_s: Optional[float] = None
) -> TraceSummary:
    """Compute a Table 1 row for a trace."""
    return TraceSummary(
        name=name,
        duration_days=net.duration / DAY,
        granularity_s=granularity_s,
        num_devices=len(net),
        num_contacts=net.num_contacts,
        contact_rate_per_device_per_hour=contact_rate_per_device_per_hour(net),
    )


def contact_durations(net: TemporalNetwork) -> np.ndarray:
    """All contact durations (seconds), in trace order."""
    return np.asarray([c.duration for c in net.contacts], dtype=float)


def duration_ccdf(
    net: TemporalNetwork, grid: Sequence[float]
) -> np.ndarray:
    """P[duration > x] on a grid — the Figure 7 curves."""
    cdf = EmpiricalCDF(contact_durations(net))
    return cdf.ccdf(grid)


def fraction_longer_than(net: TemporalNetwork, threshold: float) -> float:
    """Fraction of contacts strictly longer than a threshold.

    Section 5.3's observations: ~75% of Infocom06 contacts are one scan
    slot; ~0.4% exceed one hour.
    """
    if net.num_contacts == 0:
        return 0.0
    durations = contact_durations(net)
    return float((durations > threshold).mean())


def inter_contact_times(net: TemporalNetwork) -> np.ndarray:
    """Gaps between successive contacts of each pair, pooled over pairs.

    The inter-contact time is "the time between two successive contacts
    for the same pair" (Section 2) — measured end-of-contact to next
    begin-of-contact, skipping overlapping records.
    """
    by_pair: Dict[Tuple[Node, Node], List[Contact]] = {}
    for contact in net.contacts:
        key = (contact.u, contact.v)
        if not net.directed and repr(contact.v) < repr(contact.u):
            key = (contact.v, contact.u)
        by_pair.setdefault(key, []).append(contact)
    gaps: List[float] = []
    for contacts in by_pair.values():
        ordered = sorted(contacts)
        for previous, current in zip(ordered[:-1], ordered[1:]):
            gap = current.t_beg - previous.t_end
            if gap > 0:
                gaps.append(gap)
    return np.asarray(gaps, dtype=float)


def next_contact_function(
    net: TemporalNetwork, node: Node, times: Sequence[float]
) -> np.ndarray:
    """Figure 6's "time of the next contact with any other device".

    For each probe time t, the earliest instant >= t at which the node is
    in contact with anyone (t itself while a contact is active); +inf
    after the node's last contact.  The diagonal stretches of the plot are
    uninterrupted contact, the plateaus are disconnection periods.
    """
    if node not in net:
        raise KeyError(f"unknown node {node!r}")
    intervals = sorted(
        (c.t_beg, c.t_end) for c in net.contacts_of_node(node)
    )
    begs = np.asarray([b for b, _ in intervals])
    # Running maximum of ends aligned to sorted begins lets one binary
    # search answer "is some interval covering t".
    ends = np.asarray([e for _, e in intervals])
    out = np.empty(len(times))
    for i, t in enumerate(times):
        idx = int(np.searchsorted(begs, t, side="right"))
        covering = idx > 0 and bool((ends[:idx] >= t).any())
        if covering:
            out[i] = t
        elif idx < len(begs):
            out[i] = begs[idx]
        else:
            out[i] = math.inf
    return out


def disconnection_periods(net: TemporalNetwork, node: Node) -> List[Tuple[float, float]]:
    """Maximal intervals during which the node has no active contact,
    within the trace span (Figure 6's plateaus, as explicit intervals)."""
    t_min, t_max = net.span
    intervals = sorted((c.t_beg, c.t_end) for c in net.contacts_of_node(node))
    gaps: List[Tuple[float, float]] = []
    cursor = t_min
    for beg, end in intervals:
        if beg > cursor:
            gaps.append((cursor, beg))
        cursor = max(cursor, end)
    if cursor < t_max:
        gaps.append((cursor, t_max))
    return gaps


def per_node_contact_counts(net: TemporalNetwork) -> Dict[Node, int]:
    """Contacts each node participates in (degree heterogeneity check)."""
    counts: Dict[Node, int] = {node: 0 for node in net.nodes}
    for contact in net.contacts:
        counts[contact.u] += 1
        counts[contact.v] += 1
    return counts
