"""Synthetic stand-ins for the paper's four mobility data sets.

The paper measures Infocom05, Infocom06 and Hong-Kong (Haggle iMote
deployments) and the MIT Reality Mining Bluetooth trace.  Those CRAWDAD
data sets cannot ship with this repository, so each builder below
synthesises a trace matched to the paper's Table 1 characteristics
(device counts, duration, scan granularity, contact volume) and to the
qualitative structure Sections 5.1-5.2 describe:

* Infocom05/06 — conference crowds: session/break bursts, dead nights,
  loose group structure, granularity 120 s, very high contact rates;
* Hong-Kong — strangers recruited in a bar: almost no internal contacts,
  connectivity through a large external-device population, long
  disconnections;
* Reality Mining — a 9-month campus: research-group communities, diurnal
  and weekly cycles, low rates, granularity 300 s.

Counts are calibrated *after* the iMote scanning model is applied, via a
measure-and-rescale pass, so the recorded volumes land near the targets.
Every builder is deterministic given ``seed`` and accepts a ``scale``
that shrinks duration and contact volume together (device counts stay at
the paper's values) for test- and laptop-sized runs.

OCR caution: some Table 1 numerals in the available paper text are
garbled; the targets below keep the legible ones (41/22,459 for
Infocom05; 78 devices; 120 s and 300 s granularities) and take the
defensible reading elsewhere, recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..core.temporal_network import TemporalNetwork
from ..obs import get_obs
from ..mobility.base import (
    compose_profiles,
    conference_profile,
    diurnal_profile,
    weekly_profile,
)
from ..mobility.community import CommunityProcess
from ..mobility.duration import (
    BoundedPareto,
    Exponential,
    LogNormal,
    Mixture,
    campus_durations,
)
from ..mobility.places import PlacesProcess
from .imote import ScanningModel

DAY = 86400.0


@dataclass(frozen=True)
class DatasetSpec:
    """Paper Table 1 targets for one data set."""

    name: str
    devices: int
    duration_days: float
    granularity_s: float
    internal_contacts: int
    external_devices: int = 0
    external_contacts: int = 0
    #: the 99%-diameter the paper reports for this data set (Figure 9).
    paper_diameter: Optional[int] = None


PAPER_TABLE1: Dict[str, DatasetSpec] = {
    "infocom05": DatasetSpec(
        name="Infocom05",
        devices=41,
        duration_days=3.0,
        granularity_s=120.0,
        internal_contacts=22_459,
        external_devices=223,
        external_contacts=1_173,
        paper_diameter=5,
    ),
    "infocom06": DatasetSpec(
        name="Infocom06",
        devices=78,
        duration_days=4.0,
        granularity_s=120.0,
        internal_contacts=82_000,
        external_devices=4_000,
        external_contacts=1_630,
        paper_diameter=5,
    ),
    "hongkong": DatasetSpec(
        name="Hong-Kong",
        devices=37,
        duration_days=5.0,
        granularity_s=120.0,
        internal_contacts=92,
        external_devices=869,
        external_contacts=2_507,
        paper_diameter=6,
    ),
    "reality": DatasetSpec(
        name="Reality Mining BT",
        devices=97,
        duration_days=270.0,
        granularity_s=300.0,
        internal_contacts=212_667,
        paper_diameter=4,
    ),
}


def _scaled(spec: DatasetSpec, scale: float) -> DatasetSpec:
    """Shrink duration and contact volumes together; keep device counts."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return dataclasses.replace(
        spec,
        duration_days=max(spec.duration_days * scale, 0.5),
        internal_contacts=max(int(spec.internal_contacts * scale), 10),
        external_devices=(
            max(int(spec.external_devices * scale), 5)
            if spec.external_devices
            else 0
        ),
        external_contacts=(
            max(int(spec.external_contacts * scale), 10)
            if spec.external_contacts
            else 0
        ),
    )


def _split_counts(trace: TemporalNetwork) -> "tuple[int, int]":
    internal = 0
    external = 0
    for contact in trace.contacts:
        if isinstance(contact.v, str) or isinstance(contact.u, str):
            external += 1
        else:
            internal += 1
    return internal, external


def _calibrated_trace(
    process: CommunityProcess,
    scanning: Optional[ScanningModel],
    target_internal: int,
    target_external: int,
    seed: int,
) -> TemporalNetwork:
    """Calibrate analytically, then correct for the scanning retention.

    Raw contact volumes are linear in the rates with known expectation,
    so :meth:`CommunityProcess.scaled_to` hits the raw targets exactly in
    expectation.  Scanning then misses short contacts and splits long
    lossy ones in a way that is awkward to predict analytically; a pilot
    realisation measures the observed/raw ratio per contact class (a
    correlated ratio, so it is usable even at small counts, and clamped
    for safety) and the rates are corrected once by its inverse.
    """
    process = process.scaled_to(
        float(target_internal),
        float(target_external) if (process.externals and target_external) else None,
    )

    def realise(proc: CommunityProcess, stream: int) -> "tuple[TemporalNetwork, TemporalNetwork]":
        rng = np.random.default_rng([seed, stream])
        raw = proc.generate(rng)
        observed = scanning.observe(raw, rng) if scanning is not None else raw
        return raw, observed

    if scanning is None:
        return realise(process, 1)[1]

    raw, observed = realise(process, 0)
    raw_int, raw_ext = _split_counts(raw)
    obs_int, obs_ext = _split_counts(observed)

    def retention(obs: int, raw_count: int) -> float:
        if raw_count < 5:
            return 1.0  # too few samples to estimate; assume lossless
        return min(max(obs / raw_count, 0.25), 2.0)

    changes = {}
    keep_int = retention(obs_int, raw_int)
    changes["intra_rate"] = process.intra_rate / keep_int
    changes["inter_rate"] = process.inter_rate / keep_int
    if process.externals and target_external:
        changes["external_rate"] = process.external_rate / retention(
            obs_ext, raw_ext
        )
    calibrated = dataclasses.replace(process, **changes)
    return realise(calibrated, 1)[1]


def _community_sizes(devices: int, groups: int) -> "tuple[int, ...]":
    base, extra = divmod(devices, groups)
    return tuple(base + (1 if i < extra else 0) for i in range(groups))


def infocom05(
    seed: int = 1,
    scale: float = 1.0,
    with_externals: bool = False,
    scanned: bool = True,
) -> TemporalNetwork:
    """Synthetic Infocom05: 41 devices over a 3-day conference."""
    return _conference_dataset(
        PAPER_TABLE1["infocom05"], seed, scale, with_externals, scanned, groups=6
    )


def infocom06(
    seed: int = 1,
    scale: float = 1.0,
    with_externals: bool = False,
    scanned: bool = True,
) -> TemporalNetwork:
    """Synthetic Infocom06: 78 devices over a 4-day conference."""
    return _conference_dataset(
        PAPER_TABLE1["infocom06"], seed, scale, with_externals, scanned, groups=10
    )


#: Fraction of a conference trace's contact volume contributed by session
#: co-presence (the places component); the rest are corridor brushes.
_CONFERENCE_SESSIONS_SHARE = 0.2


def _conference_dataset(
    spec: DatasetSpec,
    seed: int,
    scale: float,
    with_externals: bool,
    scanned: bool,
    groups: int,
) -> TemporalNetwork:
    """Hybrid conference trace: session cliques + corridor encounters.

    Long contacts come from co-presence in session rooms (a
    :class:`PlacesProcess`), so they are clique-structured the way real
    Bluetooth sightings are — that is what keeps the diameter small when
    only the long contacts remain (paper Section 6.2 / Figure 12) and
    gives the Figure 7 over-an-hour tail.  The bulk of the volume is
    short pairwise corridor encounters from a :class:`CommunityProcess`,
    which also carries the external-device sightings.
    """
    spec = _scaled(spec, scale)
    horizon = spec.duration_days * DAY
    externals = spec.external_devices if with_externals else 0
    target_internal = float(spec.internal_contacts)
    target_external = float(spec.external_contacts) if externals else 0.0
    brush_durations = LogNormal(median=spec.granularity_s / 2.0, sigma=1.0)
    corridor = CommunityProcess(
        community_sizes=_community_sizes(spec.devices, groups),
        # Initial rates are placeholders; calibration rescales them.
        intra_rate=3e-5,
        inter_rate=1e-5,
        horizon=horizon,
        durations_intra=brush_durations,
        durations_inter=brush_durations,
        profile=conference_profile(),
        node_sigma=0.4,
        externals=externals,
        external_rate=1e-7 if externals else 0.0,
        durations_external=brush_durations,
    )
    corridor = corridor.scaled_to(
        target_internal * (1.0 - _CONFERENCE_SESSIONS_SHARE),
        target_external if externals else None,
    )
    sessions = PlacesProcess(
        n=spec.devices,
        num_places=max(groups - 2, 3),  # session rooms + social areas
        visit_rate=3e-4,
        horizon=horizon,
        stay=Mixture(
            components=(
                LogNormal(median=6 * 60.0, sigma=1.0),
                BoundedPareto(alpha=1.1, lower=30 * 60.0, upper=5 * 3600.0),
            ),
            weights=(0.75, 0.25),
        ),
        profile=conference_profile(),
        node_sigma=0.4,
        day_sigma=0.2,
        home_bias=0.35,
        min_overlap=20.0,
    )
    sessions = sessions.calibrated_to(
        target_internal * _CONFERENCE_SESSIONS_SHARE,
        lambda i: np.random.default_rng([seed, 200 + i]),
    )

    def realise(
        corridor_proc: CommunityProcess,
        sessions_proc: PlacesProcess,
        stream: int,
    ) -> "tuple[TemporalNetwork, TemporalNetwork]":
        rng = np.random.default_rng([seed, stream])
        contacts = list(corridor_proc.generate(rng).contacts)
        contacts.extend(sessions_proc.generate(rng).contacts)
        nodes = corridor_proc.internal_nodes() + corridor_proc.external_nodes()
        combined = TemporalNetwork(contacts, nodes=nodes, directed=False)
        if not scanned:
            return combined, combined
        scanning = ScanningModel(spec.granularity_s, miss_probability=0.05)
        return combined, scanning.observe(combined, rng)

    raw, observed = realise(corridor, sessions, 0)
    if scanned:
        retention = observed.num_contacts / max(raw.num_contacts, 1)
        if retention > 0 and not 0.85 <= retention <= 1.15:
            clamped = min(max(retention, 0.25), 4.0)
            corridor = dataclasses.replace(
                corridor,
                intra_rate=corridor.intra_rate / clamped,
                inter_rate=corridor.inter_rate / clamped,
                external_rate=corridor.external_rate / clamped,
            )
            sessions = sessions.with_visit_rate(
                sessions.visit_rate / math.sqrt(clamped)
            )
            _, observed = realise(corridor, sessions, 1)
    return observed


def hongkong(
    seed: int = 1,
    scale: float = 1.0,
    with_externals: bool = True,
    scanned: bool = True,
) -> TemporalNetwork:
    """Synthetic Hong-Kong: 37 strangers, connectivity through externals.

    Participants were "chosen carefully in a Hong Kong bar to avoid social
    relationships", so internal contacts are nearly absent and the paper
    analyses internal+external contacts (the default here, unlike the
    conference builders).
    """
    spec = _scaled(PAPER_TABLE1["hongkong"], scale)
    horizon = spec.duration_days * DAY
    durations = campus_durations()
    externals = spec.external_devices if with_externals else 0
    process = CommunityProcess(
        community_sizes=(1,) * spec.devices,  # no social structure
        intra_rate=0.0,
        inter_rate=5e-9,
        horizon=horizon,
        durations_intra=durations,
        durations_inter=durations,
        profile=diurnal_profile(day_start=9 * 3600, day_end=23 * 3600,
                                night_level=0.02),
        node_sigma=0.6,
        day_sigma=1.3,  # bursty days: some participants vanish for a day+
        externals=externals,
        external_rate=2e-8 if externals else 0.0,
        durations_external=durations,
    )
    scanning = ScanningModel(spec.granularity_s, miss_probability=0.05) if scanned else None
    return _calibrated_trace(
        process,
        scanning,
        spec.internal_contacts,
        spec.external_contacts if with_externals else 0,
        seed,
    )


def reality_mining(
    seed: int = 1,
    scale: float = 1.0,
    scanned: bool = True,
) -> TemporalNetwork:
    """Synthetic Reality Mining: 97 phones across a 9-month campus study.

    The full nine months are heavy for interactive use; ``scale=0.1``
    gives a representative month.

    Campus proximity is *place-structured*: phones sight each other in
    offices, labs and lecture halls, so the instantaneous contact graph
    is a union of cliques.  The builder therefore uses the
    :class:`~repro.mobility.places.PlacesProcess` (visits to shared
    places under diurnal and weekly cycles) rather than independent
    pairwise meetings — independent pairs of the same volume form
    path-like contemporaneous components and grossly inflate the
    small-time-scale diameter, which the clique structure keeps small as
    in the paper.
    """
    spec = _scaled(PAPER_TABLE1["reality"], scale)
    horizon = spec.duration_days * DAY
    process = PlacesProcess(
        n=spec.devices,
        num_places=10,  # offices / labs / lecture halls
        visit_rate=2e-4,  # placeholder; calibration tunes it
        horizon=horizon,
        stay=Exponential(60 * 60.0),
        profile=compose_profiles(
            diurnal_profile(day_start=8 * 3600, day_end=19 * 3600, night_level=0.05),
            weekly_profile(weekday_level=1.0, weekend_level=0.25),
        ),
        node_sigma=0.4,
        day_sigma=0.6,
        home_bias=0.65,
        min_overlap=60.0,
    )

    def rng_factory(stream: int) -> np.random.Generator:
        return np.random.default_rng([seed, 100 + stream])

    process = process.calibrated_to(float(spec.internal_contacts), rng_factory)
    rng = np.random.default_rng([seed, 1])
    trace = process.generate(rng)
    if scanned:
        scanning = ScanningModel(spec.granularity_s, miss_probability=0.05)
        observed = scanning.observe(trace, rng)
        # Scanning both misses short overlaps and splits long lossy ones;
        # one corrective pass re-centres the recorded volume.
        retention = observed.num_contacts / max(trace.num_contacts, 1)
        if retention > 0 and not 0.85 <= retention <= 1.15:
            clamped = min(max(retention, 0.25), 4.0)
            corrected = process.with_visit_rate(
                process.visit_rate / math.sqrt(clamped)
            )
            rng = np.random.default_rng([seed, 2])
            observed = scanning.observe(corrected.generate(rng), rng)
        trace = observed
    return trace


def reality_gsm(
    seed: int = 1,
    scale: float = 1.0,
) -> TemporalNetwork:
    """Synthetic Reality Mining GSM variant: cell-tower co-location.

    The paper reports making "the same observations on the GSM data set":
    Reality Mining also logged the cell tower each phone camped on, so
    "contact" there means sharing a cell — far coarser than Bluetooth
    (cells span hundreds of metres and phones stay camped for long
    stretches).  Modelled as the same population visiting a small set of
    large places with hour-scale stays and no scanning loss (GSM
    association is event-logged, not periodically scanned).  No Table 1
    targets exist for this trace; the volume knob is calibrated to a
    plausible multiple of the Bluetooth contact count.
    """
    spec = _scaled(PAPER_TABLE1["reality"], scale)
    horizon = spec.duration_days * DAY
    process = PlacesProcess(
        n=spec.devices,
        num_places=25,  # cells covering campus and surroundings
        visit_rate=1e-4,
        horizon=horizon,
        stay=Exponential(2 * 3600.0),
        profile=compose_profiles(
            diurnal_profile(day_start=7 * 3600, day_end=22 * 3600, night_level=0.15),
            weekly_profile(weekday_level=1.0, weekend_level=0.5),
        ),
        node_sigma=0.3,
        day_sigma=0.4,
        home_bias=0.7,
        min_overlap=300.0,
    )
    process = process.calibrated_to(
        float(spec.internal_contacts) * 2.0,
        lambda i: np.random.default_rng([seed, 400 + i]),
    )
    return process.generate(np.random.default_rng([seed, 5]))


def campus_wlan(
    seed: int = 1,
    scale: float = 1.0,
    devices: int = 120,
    access_points: int = 40,
    duration_days: float = 14.0,
) -> TemporalNetwork:
    """Synthetic campus-WLAN trace (Dartmouth/UCSD-style).

    The paper notes the same small-diameter observations hold on "traces
    from campus WLAN in Dartmouth and UCSD", where a contact means two
    laptops associated to the same access point.  Modelled as a places
    process over access points with session-length stays and strong
    home-AP affinity (students return to their department).  No Table 1
    targets exist; the volume is a derived, documented choice
    (~40 contacts per device per day before scaling).
    """
    horizon = max(duration_days * scale, 1.0) * DAY
    target = devices * 40.0 * (horizon / DAY)
    process = PlacesProcess(
        n=devices,
        num_places=access_points,
        visit_rate=1e-4,
        horizon=horizon,
        stay=Mixture(
            components=(
                LogNormal(median=15 * 60.0, sigma=1.0),
                BoundedPareto(alpha=1.2, lower=3600.0, upper=8 * 3600.0),
            ),
            weights=(0.7, 0.3),
        ),
        profile=compose_profiles(
            diurnal_profile(day_start=8 * 3600, day_end=23 * 3600, night_level=0.1),
            weekly_profile(weekday_level=1.0, weekend_level=0.4),
        ),
        node_sigma=0.5,
        day_sigma=0.5,
        home_bias=0.6,
        min_overlap=60.0,
    )
    process = process.calibrated_to(
        target, lambda i: np.random.default_rng([seed, 500 + i])
    )
    return process.generate(np.random.default_rng([seed, 6]))


#: Builders by data-set key, for the CLI and the benchmarks.
BUILDERS: Dict[str, Callable[..., TemporalNetwork]] = {
    "infocom05": infocom05,
    "infocom06": infocom06,
    "hongkong": hongkong,
    "reality": reality_mining,
    "reality_gsm": reality_gsm,
    "wlan": campus_wlan,
}


def build(name: str, seed: int = 1, scale: float = 1.0, **kwargs: object) -> TemporalNetwork:
    """Build a data set by key (see :data:`BUILDERS`)."""
    try:
        builder = BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown data set {name!r}; available: {sorted(BUILDERS)}"
        ) from None
    obs = get_obs()
    with obs.span(
        "traces.build", dataset=name, seed=seed, scale=scale
    ) as span, obs.timer("traces.build", dataset=name):
        net = builder(seed=seed, scale=scale, **kwargs)
        if obs.enabled:
            span.set(contacts=net.num_contacts, devices=len(net))
            obs.metrics.counter("traces.contacts_built", dataset=name).inc(
                net.num_contacts
            )
    return net
