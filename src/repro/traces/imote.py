"""The iMote periodic-scanning measurement model.

The Haggle experiments logged contacts with Bluetooth devices "using a
periodic scanning every t seconds, where t is called granularity"
(Section 5.1), and the paper warns that traces "may not include all
opportunistic encounters ... because of the time between two scans,
hardware limitations, software parameters, and interference", and that
"some contacts appear shorter than they are".

This module applies that observation process to a ground-truth contact
trace: each observing device scans every ``granularity`` seconds at a
random phase; a true contact interval is recorded as the span of scans
that detected it (quantised, shortened, possibly split or missed
entirely), and each scan detection can independently fail with
``miss_probability`` (interference).  Applying it turns a mobility-model
trace into an Infocom-like measured trace — including the Figure 7 pile-up
of one-slot contacts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.contact import Contact, Node, merge_intervals
from ..core.temporal_network import TemporalNetwork


@dataclass(frozen=True)
class ScanningModel:
    """Parameters of the periodic-scan observation process.

    Attributes:
        granularity: seconds between successive scans of one device.
        miss_probability: chance that one scan fails to detect an active
            contact (collisions/interference); independent per scan.
        record_duration: duration recorded for a detection — a detected
            scan at time s yields the interval [s, s + granularity), the
            convention of the Haggle traces where one-scan contacts appear
            as one-granularity contacts.
    """

    granularity: float
    miss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.granularity <= 0:
            raise ValueError("granularity must be positive")
        if not 0.0 <= self.miss_probability < 1.0:
            raise ValueError("miss probability must be in [0, 1)")

    def observe(
        self, net: TemporalNetwork, rng: np.random.Generator
    ) -> TemporalNetwork:
        """The measured trace an iMote deployment would record.

        The observer of a contact is its ``u`` endpoint (the device that
        "sees" the other); each observer gets an independent scan phase.
        Detected scans are merged into recorded intervals per pair.
        """
        phases: Dict[Node, float] = {
            node: float(rng.uniform(0.0, self.granularity)) for node in net.nodes
        }
        by_pair: Dict["tuple[Node, Node]", List[Contact]] = {}
        for contact in net.contacts:
            for recorded in self._scan_contact(contact, phases[contact.u], rng):
                by_pair.setdefault((recorded.u, recorded.v), []).append(recorded)
        observed: List[Contact] = []
        for pair_contacts in by_pair.values():
            observed.extend(merge_intervals(pair_contacts))
        return TemporalNetwork(observed, nodes=net.nodes, directed=net.directed)

    def _scan_contact(
        self, contact: Contact, phase: float, rng: np.random.Generator
    ) -> List[Contact]:
        """Recorded intervals for one true contact under one scan phase."""
        g = self.granularity
        first = math.ceil((contact.t_beg - phase) / g)
        last = math.floor((contact.t_end - phase) / g)
        if last < first:
            return []  # the contact fell between two scans: missed
        scan_indices = np.arange(first, last + 1)
        if self.miss_probability > 0.0:
            detected = rng.uniform(size=len(scan_indices)) >= self.miss_probability
            scan_indices = scan_indices[detected]
        if len(scan_indices) == 0:
            return []
        recorded: List[Contact] = []
        run_start = None
        previous = None
        for index in scan_indices:
            if run_start is None:
                run_start = index
            elif index != previous + 1:
                recorded.append(self._interval(run_start, previous, phase, contact))
                run_start = index
            previous = index
        recorded.append(self._interval(run_start, previous, phase, contact))
        return recorded

    def _interval(
        self, first_scan: int, last_scan: int, phase: float, contact: Contact
    ) -> Contact:
        beg = phase + first_scan * self.granularity
        end = phase + (last_scan + 1) * self.granularity
        return Contact(beg, end, contact.u, contact.v)


def quantize_only(net: TemporalNetwork, granularity: float) -> TemporalNetwork:
    """Deterministic quantisation (no misses, common phase 0).

    Snaps begins down and ends up to the granularity grid — the crude
    approximation some trace analyses use; kept for ablation against the
    full scanning model.
    """
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    contacts = [
        Contact(
            math.floor(c.t_beg / granularity) * granularity,
            math.ceil(c.t_end / granularity) * granularity,
            c.u,
            c.v,
        )
        for c in net.contacts
    ]
    return TemporalNetwork(contacts, nodes=net.nodes, directed=net.directed)
