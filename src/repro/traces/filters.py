"""Contact-removal and windowing transforms (paper Section 6).

"We apply a contact removal technique to a mobility trace: each contact is
either kept or removed according to a given rule fixed in advance" —
random removal probes the contact *rate* (Section 6.1, Figure 10), and
duration-threshold removal probes the role of *short contacts*
(Section 6.2, Figure 11).  All transforms return new networks with the
same node roster, so success-rate denominators stay comparable.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from ..core.contact import Contact, Node
from ..core.temporal_network import TemporalNetwork


def keep_if(
    net: TemporalNetwork, predicate: Callable[[Contact], bool]
) -> TemporalNetwork:
    """A copy keeping only the contacts satisfying the predicate."""
    return net.with_contacts(c for c in net.contacts if predicate(c))


def remove_random(
    net: TemporalNetwork, probability: float, rng: np.random.Generator
) -> TemporalNetwork:
    """Remove each contact independently with the given probability.

    The paper's Section 6.1 rate ablation: removing 90% / 99% of Infocom06
    contacts degrades delay sharply at small time scales but "does not
    seem to impact the diameter of the network".
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("removal probability must be in [0, 1]")
    if probability == 0.0:
        return net.with_contacts(net.contacts)
    keep = rng.uniform(size=net.num_contacts) >= probability
    return net.with_contacts(
        contact for contact, kept in zip(net.contacts, keep) if kept
    )


def remove_short(net: TemporalNetwork, min_duration: float) -> TemporalNetwork:
    """Remove every contact lasting less than ``min_duration`` seconds.

    The paper's Section 6.2 ablation: dropping contacts under 10 minutes
    keeps more small-delay paths alive than random removal of the same
    volume, *but increases the diameter* — short contacts are the
    shortcuts that keep the network a small world.
    """
    if min_duration < 0:
        raise ValueError("min duration cannot be negative")
    return keep_if(net, lambda c: c.duration >= min_duration)


def remove_long(net: TemporalNetwork, max_duration: float) -> TemporalNetwork:
    """Remove every contact lasting more than ``max_duration`` seconds
    (the complementary ablation: a world of only fleeting encounters)."""
    if max_duration < 0:
        raise ValueError("max duration cannot be negative")
    return keep_if(net, lambda c: c.duration <= max_duration)


def time_window(
    net: TemporalNetwork, t0: float, t1: float, clip: bool = True
) -> TemporalNetwork:
    """Restrict the trace to the half-open window [t0, t1).

    With ``clip`` (default), contacts straddling the boundary are clipped
    to it; otherwise only contacts fully inside the half-open window are
    kept (``Contact.within_window``: a contact beginning or ending
    exactly at ``t1`` is dropped, matching the half-open convention of
    ``contacts_beginning_in``).  Used to carve out "the second day of
    Infocom06" (Section 6) or day-time periods.
    """
    if t1 <= t0:
        raise ValueError("empty time window")
    if clip:
        clipped = (c.clipped(t0, t1) for c in net.contacts)
        return net.with_contacts(c for c in clipped if c is not None)
    return keep_if(net, lambda c: c.within_window(t0, t1))


def restrict_nodes(
    net: TemporalNetwork, nodes: Iterable[Node]
) -> TemporalNetwork:
    """Keep only contacts among the given nodes (e.g. internal devices).

    The returned roster is exactly ``nodes`` (isolated ones included).
    """
    node_set = set(nodes)
    unknown = node_set - set(net.nodes)
    if unknown:
        raise KeyError(f"nodes not in network: {sorted(unknown, key=repr)!r}")
    kept = [
        c for c in net.contacts if c.u in node_set and c.v in node_set
    ]
    return TemporalNetwork(kept, nodes=node_set, directed=net.directed)


def internal_only(net: TemporalNetwork) -> TemporalNetwork:
    """Drop external devices (the ``"ext..."`` nodes of the generators)."""
    internal = [n for n in net.nodes if not (isinstance(n, str) and n.startswith("ext"))]
    return restrict_nodes(net, internal)


def shift_origin(net: TemporalNetwork, new_origin: Optional[float] = None) -> TemporalNetwork:
    """Translate times so the trace starts at 0 (or at ``new_origin``)."""
    t_min, _ = net.span
    offset = (0.0 if new_origin is None else new_origin) - t_min
    return net.with_contacts(c.shifted(offset) for c in net.contacts)
