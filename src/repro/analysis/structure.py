"""Structural analysis of temporal networks.

Tools for the two graph views the opportunistic-networking literature
reasons about:

* the **instantaneous contact graph** at a time t — whose component
  structure decides what flooding can do "for free" (within one long
  contact chain), and whose transitivity distinguishes clique-like
  co-presence from path-like pairwise meetings (see DESIGN.md §5.2b);
* the **aggregated contact graph** over a window — the static projection
  earlier work measured (e.g. Papadopouli & Schulzrinne's "seven degrees
  of separation", reference [16] of the paper); its shortest-path lengths
  lower-bound the temporal hop counts, since a temporal path is also a
  path in the projection.

Built on networkx for the classic graph metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..core.contact import Node
from ..core.temporal_network import TemporalNetwork


def instantaneous_graph(net: TemporalNetwork, t: float) -> nx.Graph:
    """The undirected graph of contacts active at time t."""
    graph = nx.Graph()
    graph.add_nodes_from(net.nodes)
    for contact in net.contacts_active_at(t):
        graph.add_edge(contact.u, contact.v)
    return graph


def aggregated_graph(
    net: TemporalNetwork,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> nx.Graph:
    """The static projection: an edge for every pair that ever met in
    [t0, t1] (default: the whole trace), weighted by contact count."""
    span0, span1 = net.span
    lo = span0 if t0 is None else t0
    hi = span1 if t1 is None else t1
    graph = nx.Graph()
    graph.add_nodes_from(net.nodes)
    for contact in net.contacts:
        if contact.t_end < lo or contact.t_beg > hi:
            continue
        if graph.has_edge(contact.u, contact.v):
            graph[contact.u][contact.v]["weight"] += 1
        else:
            graph.add_edge(contact.u, contact.v, weight=1)
    return graph


@dataclass(frozen=True)
class InstantSnapshot:
    """Component statistics of one instantaneous contact graph."""

    time: float
    active_edges: int
    num_components: int  # non-singleton components
    largest_component: int
    transitivity: float


def snapshot(net: TemporalNetwork, t: float) -> InstantSnapshot:
    """Component and transitivity statistics at one instant."""
    graph = instantaneous_graph(net, t)
    components = [c for c in nx.connected_components(graph) if len(c) > 1]
    return InstantSnapshot(
        time=t,
        active_edges=graph.number_of_edges(),
        num_components=len(components),
        largest_component=max((len(c) for c in components), default=0),
        transitivity=nx.transitivity(graph),
    )


def snapshots(
    net: TemporalNetwork, times: Sequence[float]
) -> List[InstantSnapshot]:
    """Instantaneous component statistics at each probe time."""
    return [snapshot(net, t) for t in times]


def mean_transitivity(
    net: TemporalNetwork, num_probes: int = 50
) -> float:
    """Average instantaneous transitivity over uniform probe times,
    ignoring instants with no triads.  Near 1 for place-structured
    (clique) co-presence, near 0 for independent pairwise meetings."""
    t0, t1 = net.span
    if t1 <= t0:
        return math.nan
    values = []
    for t in np.linspace(t0, t1, num_probes):
        graph = instantaneous_graph(net, float(t))
        triads = sum(
            d * (d - 1) for _, d in graph.degree()
        )
        if triads > 0:
            values.append(nx.transitivity(graph))
    if not values:
        return math.nan
    return float(np.mean(values))


@dataclass(frozen=True)
class StaticSummary:
    """Shortest-path statistics of the aggregated contact graph."""

    nodes: int
    edges: int
    connected_pairs_fraction: float
    mean_path_length: float
    static_diameter: Optional[int]


def static_summary(net: TemporalNetwork) -> StaticSummary:
    """The "seven degrees" view: path lengths in the static projection.

    The static diameter lower-bounds the hop count any temporal path
    needs, but ignores timing entirely — the paper's point is that even
    *time-respecting* paths stay this short.
    """
    graph = aggregated_graph(net)
    n = graph.number_of_nodes()
    total_pairs = n * (n - 1) / 2
    lengths = []
    longest = 0
    connected_pairs = 0
    for component in nx.connected_components(graph):
        if len(component) < 2:
            continue
        sub = graph.subgraph(component)
        for source, targets in nx.all_pairs_shortest_path_length(sub):
            for target, distance in targets.items():
                if repr(source) < repr(target):
                    lengths.append(distance)
                    connected_pairs += 1
                    if distance > longest:
                        longest = distance
    return StaticSummary(
        nodes=n,
        edges=graph.number_of_edges(),
        connected_pairs_fraction=(
            connected_pairs / total_pairs if total_pairs else 0.0
        ),
        mean_path_length=float(np.mean(lengths)) if lengths else math.nan,
        static_diameter=longest if lengths else None,
    )


def reachability_fraction(
    net: TemporalNetwork,
    start_time: float,
    time_budget: float,
    sources: Optional[Sequence[Node]] = None,
) -> float:
    """Fraction of ordered pairs (s, d) with a time-respecting path from
    s reaching d within ``time_budget`` of ``start_time`` — the temporal
    "influence" counterpart of static connectivity."""
    from ..baselines.flooding import flood

    if time_budget < 0:
        raise ValueError("time budget cannot be negative")
    chosen = list(net.nodes) if sources is None else list(sources)
    total = 0
    reached = 0
    deadline = start_time + time_budget
    for source in chosen:
        arrival = flood(net, source, start_time)
        for destination in net.nodes:
            if destination == source:
                continue
            total += 1
            if arrival.get(destination, math.inf) <= deadline:
                reached += 1
    return reached / total if total else 0.0
