"""Fixed-width text tables for benchmark output.

Every benchmark prints the rows/series of the paper table or figure it
regenerates; this module renders them uniformly so EXPERIMENTS.md can be
assembled by copy-paste.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_cell(value: object) -> str:
    """Render one table cell: trimmed floats, explicit inf/nan, str(rest)."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table with a separator under the header."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: "dict[str, Sequence[object]]",
    title: str = "",
) -> str:
    """Render one x column plus one column per named series (figure data)."""
    headers = [x_label] + list(series)
    columns = [x_values] + [series[name] for name in series]
    length = len(x_values)
    for name, col in series.items():
        if len(col) != length:
            raise ValueError(f"series {name!r} length {len(col)} != {length}")
    rows = [[col[i] for col in columns] for i in range(length)]
    return render_table(headers, rows, title=title)
