"""Canonical time grids and human-readable time formatting.

The paper reports delay distributions "on a [2 minutes, week] time period"
with logarithmic time axes ticked at 2 min, 10 min, 1 hour, 3 h, 6 h,
1 day, 2 d, 1 week.  This module centralises those conventions so every
benchmark and example uses the same axes.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY

#: The tick delays the paper's figures label.
PAPER_TICKS: Sequence[float] = (
    2 * MINUTE,
    10 * MINUTE,
    HOUR,
    3 * HOUR,
    6 * HOUR,
    DAY,
    2 * DAY,
    WEEK,
)


def paper_delay_grid(points: int = 60, t_min: float = 2 * MINUTE,
                     t_max: float = WEEK) -> np.ndarray:
    """Log-spaced delay budgets spanning the paper's [2 min, 1 week] axis,
    always including the paper's tick values exactly."""
    if points < 2:
        raise ValueError("need at least two grid points")
    if not 0 < t_min < t_max:
        raise ValueError("need 0 < t_min < t_max")
    base = np.geomspace(t_min, t_max, points)
    ticks = [t for t in PAPER_TICKS if t_min <= t <= t_max]
    return np.unique(np.concatenate([base, ticks]))


def slot_delay_grid(num_slots: int) -> np.ndarray:
    """Integer delay grid for slot-based (random temporal network) traces."""
    if num_slots < 1:
        raise ValueError("need at least one slot")
    return np.arange(0, num_slots + 1, dtype=float)


def format_duration(seconds: float) -> str:
    """Human-readable duration, e.g. 7200 -> '2h', 90 -> '1.5min'."""
    if seconds == float("inf"):
        return "inf"
    if seconds < 0:
        return "-" + format_duration(-seconds)
    units = [(WEEK, "w"), (DAY, "d"), (HOUR, "h"), (MINUTE, "min"), (1.0, "s")]
    for size, suffix in units:
        if seconds >= size:
            value = seconds / size
            if abs(value - round(value)) < 1e-9:
                return f"{int(round(value))}{suffix}"
            return f"{value:.3g}{suffix}"
    return f"{seconds:.3g}s"


def tick_labels(grid: Sequence[float]) -> List[str]:
    """Format every grid delay with :func:`format_duration`."""
    return [format_duration(t) for t in grid]
