"""Empirical distribution helpers that tolerate infinite observations.

Delay distributions in the paper put explicit mass at +infinity ("If no
path exists, we include an infinite value in the distribution"), which
rules out most off-the-shelf ECDF utilities; this small class supports it
directly and also serves the contact-duration CCDF of Figure 7.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..core.floats import is_pinned_zero


class EmpiricalCDF:
    """Empirical CDF of a sample that may contain +infinity.

    The CDF is right-continuous; ``F(x) = P[X <= x]`` computed over the
    full sample size (so ``F(max finite) < 1`` when infinite values are
    present).
    """

    def __init__(self, sample: Iterable[float]) -> None:
        values = list(sample)
        if not values:
            raise ValueError("empty sample")
        self.num_infinite = sum(1 for v in values if math.isinf(v))
        self._finite = np.sort(
            np.asarray([v for v in values if not math.isinf(v)], dtype=float)
        )
        self.size = len(values)

    @property
    def finite_values(self) -> np.ndarray:
        return self._finite

    @property
    def finite_fraction(self) -> float:
        """Total probability mass on finite values."""
        return len(self._finite) / self.size

    def __call__(self, x: float) -> float:
        return float(np.searchsorted(self._finite, x, side="right")) / self.size

    def evaluate(self, grid: Sequence[float]) -> np.ndarray:
        """Vectorised CDF values on an ascending grid."""
        grid_arr = np.asarray(list(grid), dtype=float)
        return np.searchsorted(self._finite, grid_arr, side="right") / self.size

    def ccdf(self, grid: Sequence[float]) -> np.ndarray:
        """Complementary CDF ``P[X > x]`` on a grid (Figure 7 style)."""
        return 1.0 - self.evaluate(grid)

    def quantile(self, q: float) -> float:
        """Smallest x with ``F(x) >= q``; inf when q exceeds the finite mass."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile level must be in [0, 1]")
        if is_pinned_zero(q):
            return float(self._finite[0]) if len(self._finite) else float("inf")
        rank = math.ceil(q * self.size)
        if rank > len(self._finite):
            return float("inf")
        return float(self._finite[rank - 1])

    def mean_finite(self) -> float:
        """Mean of the finite part (nan when everything is infinite)."""
        if len(self._finite) == 0:
            return math.nan
        return float(self._finite.mean())


def ccdf_points(sample: Iterable[float]) -> "Tuple[np.ndarray, np.ndarray]":
    """(sorted values, P[X > value]) pairs for log-log CCDF plots."""
    values = np.sort(np.asarray(list(sample), dtype=float))
    if len(values) == 0:
        raise ValueError("empty sample")
    n = len(values)
    ccdf = 1.0 - np.arange(1, n + 1) / n
    return values, ccdf


def histogram_table(
    sample: Iterable[float], edges: Sequence[float]
) -> List[Tuple[float, float, int]]:
    """Counts of sample values per [edge_i, edge_{i+1}) bin."""
    values = [v for v in sample]
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        count = sum(1 for v in values if lo <= v < hi)
        rows.append((lo, hi, count))
    return rows
