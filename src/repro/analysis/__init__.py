"""Shared numerics: empirical distributions, canonical grids, text tables."""

from .cdf import EmpiricalCDF, ccdf_points, histogram_table
from .grids import (
    DAY,
    HOUR,
    MINUTE,
    PAPER_TICKS,
    WEEK,
    format_duration,
    paper_delay_grid,
    slot_delay_grid,
    tick_labels,
)
from .structure import (
    InstantSnapshot,
    StaticSummary,
    aggregated_graph,
    instantaneous_graph,
    mean_transitivity,
    reachability_fraction,
    snapshot,
    snapshots,
    static_summary,
)
from .tables import format_cell, render_series, render_table

__all__ = [
    "DAY",
    "EmpiricalCDF",
    "HOUR",
    "InstantSnapshot",
    "MINUTE",
    "PAPER_TICKS",
    "StaticSummary",
    "WEEK",
    "aggregated_graph",
    "ccdf_points",
    "format_cell",
    "format_duration",
    "histogram_table",
    "instantaneous_graph",
    "mean_transitivity",
    "paper_delay_grid",
    "reachability_fraction",
    "render_series",
    "render_table",
    "slot_delay_grid",
    "snapshot",
    "snapshots",
    "static_summary",
    "tick_labels",
]
