"""The (1 - eps)-diameter of an opportunistic mobile network.

Paper Section 4.1: for every delay budget t, let ``P[Pi(t, k) = 1]`` be the
probability (over uniform source, destination and starting time) that a
path with at most k hops delivers within t.  The (1 - eps)-diameter is

    min { k :  for all t >= 0,  P[Pi(t, k)] >= (1 - eps) * P[Pi(t, inf)] },

i.e. the smallest hop bound that achieves at least a (1 - eps) fraction of
the success rate of unrestricted flooding at *every* time scale.  The paper
uses eps = 1% ("confidence level 99%") throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .contact import Node
from .delay_cdf import DelayCDF, _validate_grid_window, cdf_from_table
from .optimal import PathProfileSet
from .segments import build_segment_table

__all__ = [
    "DiameterResult",
    "success_curves",
    "diameter",
    "diameter_vs_delay",
]


@dataclass(frozen=True)
class DiameterResult:
    """Outcome of a diameter computation.

    Attributes:
        value: the (1 - eps)-diameter in hops; None when even the largest
            recorded hop bound falls short of the flooding optimum (the
            caller should then widen ``hop_bounds``).
        eps: the tolerance used (paper: 0.01).
        curves: the success curve (delay CDF) per hop bound, including the
            flooding optimum under key None.
        binding_delay: for each examined hop bound k that failed, a delay
            at which it fell below (1 - eps) of flooding — diagnostic for
            "which time scale needs more hops".
    """

    value: Optional[int]
    eps: float
    curves: Dict[Optional[int], DelayCDF]
    binding_delay: Dict[int, float]


def success_curves(
    profiles: PathProfileSet,
    grid: Sequence[float],
    hop_bounds: Optional[Sequence[int]] = None,
    window: Optional[Tuple[float, float]] = None,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
) -> Dict[Optional[int], DelayCDF]:
    """Delay CDFs per hop bound, plus the flooding optimum (key None).

    All curves are evaluated from ONE traversal of the profiles (a shared
    :class:`~repro.core.segments.SegmentTable`), so the per-bound cost is
    the vectorized kernel only.
    """
    if hop_bounds is None:
        hop_bounds = list(profiles.hop_bounds)
    grid_arr, window = _validate_grid_window(profiles, grid, window)
    bounds: List[Optional[int]] = list(hop_bounds) + [None]
    table = build_segment_table(profiles, bounds, window, pairs)
    return {bound: cdf_from_table(table, bound, grid_arr) for bound in bounds}


def _meets(curve: np.ndarray, optimum: np.ndarray, eps: float) -> Optional[int]:
    """Index of the first grid point where the curve misses the target,
    or None when the curve meets (1 - eps) x optimum everywhere."""
    target = (1.0 - eps) * optimum
    # Tiny slack guards against floating-point noise in exact ties.
    shortfall = np.nonzero(curve < target - 1e-12)[0]
    if len(shortfall) == 0:
        return None
    return int(shortfall[0])


def diameter(
    profiles: PathProfileSet,
    grid: Sequence[float],
    eps: float = 0.01,
    hop_bounds: Optional[Sequence[int]] = None,
    window: Optional[Tuple[float, float]] = None,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
    curves: Optional[Dict[Optional[int], DelayCDF]] = None,
) -> DiameterResult:
    """Compute the (1 - eps)-diameter of the network behind ``profiles``.

    The "for all t" in the definition is evaluated on the supplied delay
    grid, which mirrors the paper's practice of examining time scales from
    minutes to a week (Section 5.3.1).

    ``curves`` may carry a precomputed :func:`success_curves` result for
    the same grid/window/pairs (it must include the flooding optimum
    under key None), in which case no profile traversal happens here.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must be in (0, 1)")
    if curves is None:
        curves = success_curves(profiles, grid, hop_bounds, window, pairs)
    elif None not in curves:
        raise ValueError("precomputed curves must include the flooding optimum")
    optimum = curves[None].values
    bounds = sorted(k for k in curves if k is not None)
    binding: Dict[int, float] = {}
    value: Optional[int] = None
    for bound in bounds:
        miss = _meets(curves[bound].values, optimum, eps)
        if miss is None:
            value = bound
            break
        binding[bound] = float(curves[bound].grid[miss])
    return DiameterResult(value=value, eps=eps, curves=curves, binding_delay=binding)


def diameter_vs_delay(
    profiles: PathProfileSet,
    grid: Sequence[float],
    eps: float = 0.01,
    hop_bounds: Optional[Sequence[int]] = None,
    window: Optional[Tuple[float, float]] = None,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
) -> "List[Optional[int]]":
    """Hops needed per delay budget (paper Figure 12).

    For each grid delay t, the smallest hop bound k with
    ``P[Pi(t, k)] >= (1 - eps) * P[Pi(t, inf)]``; None where no recorded
    bound suffices.
    """
    curves = success_curves(profiles, grid, hop_bounds, window, pairs)
    optimum = curves[None].values
    bounds = sorted(k for k in curves if k is not None)
    needed: List[Optional[int]] = []
    for i in range(len(optimum)):
        target = (1.0 - eps) * optimum[i]
        found: Optional[int] = None
        for bound in bounds:
            if curves[bound].values[i] >= target - 1e-12:
                found = bound
                break
        needed.append(found)
    return needed
