"""Delivery functions: Pareto-minimal lists of (LD, EA) pairs.

Paper Section 4.3 represents the delivery function of a source-destination
pair by the pairs of values (LD, EA) of the optimal paths between them:

    del(t) = min { max(t, EA_k)  :  t <= LD_k },      (paper Eq. 3)

and observes (condition (4)) that only the pairs forming a Pareto frontier
are needed.  With pairs sorted by increasing LD and all dominated pairs
removed, the EA values are increasing too, and

    del(t) = max(t, EA_i)   where i is the first index with LD_i >= t,

(+infinity when no such index exists).  This module maintains that frontier
incrementally; it is the central data structure of the reproduction.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Tuple

from .pairs import PathPair

INFINITY = float("inf")


class DeliveryFunction:
    """The optimal-delivery profile of one source-destination pair.

    Internally two parallel lists, ``lds`` and ``eas``, both strictly
    increasing.  An empty function means the destination is never reachable.
    """

    __slots__ = ("lds", "eas")

    def __init__(self, pairs: Iterable[Tuple[float, float]] = ()) -> None:
        self.lds: List[float] = []
        self.eas: List[float] = []
        for ld, ea in pairs:
            self.insert(ld, ea)

    # ------------------------------------------------------------------
    # Frontier maintenance
    # ------------------------------------------------------------------

    def insert(self, ld: float, ea: float) -> bool:
        """Insert the pair (ld, ea), keeping the frontier Pareto-minimal.

        Returns True when the pair was genuinely new (not weakly dominated
        by an existing pair); dominated existing pairs are removed.
        Amortised O(log n) per surviving insertion.
        """
        lds, eas = self.lds, self.eas
        lo = bisect_left(lds, ld)
        if lo < len(lds) and eas[lo] <= ea:
            # Some pair departs at least as late and arrives no later.
            return False
        # Pairs with LD <= ld and EA >= ea are now dominated: they form a
        # suffix of [0, hi) because EA is increasing.
        hi = bisect_right(lds, ld)
        cut = bisect_left(eas, ea, 0, hi)
        if cut != hi:
            del lds[cut:hi]
            del eas[cut:hi]
        lds.insert(cut, ld)
        eas.insert(cut, ea)
        return True

    def insert_pair(self, pair: PathPair) -> bool:
        """`insert` accepting a :class:`PathPair`."""
        return self.insert(pair.ld, pair.ea)

    def merge(self, other: "DeliveryFunction") -> int:
        """Insert every pair of ``other``; returns how many survived."""
        added = 0
        for ld, ea in zip(other.lds, other.eas):
            if self.insert(ld, ea):
                added += 1
        return added

    def copy(self) -> "DeliveryFunction":
        clone = DeliveryFunction()
        clone.lds = list(self.lds)
        clone.eas = list(self.eas)
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.lds)

    def __bool__(self) -> bool:
        return bool(self.lds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeliveryFunction):
            return NotImplemented
        return self.lds == other.lds and self.eas == other.eas

    def __hash__(self) -> None:  # pragma: no cover - mutable container
        raise TypeError("DeliveryFunction is unhashable")

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"(LD={ld:g}, EA={ea:g})" for ld, ea in zip(self.lds, self.eas)
        )
        return f"DeliveryFunction([{pairs}])"

    def pairs(self) -> Iterator[PathPair]:
        """The frontier as :class:`PathPair` values, LD ascending."""
        return (PathPair(ld, ea) for ld, ea in zip(self.lds, self.eas))

    def delivery_time(self, t: float) -> float:
        """``del(t)``: the optimal delivery time of a message created at t."""
        i = bisect_left(self.lds, t)
        if i == len(self.lds):
            return INFINITY
        ea = self.eas[i]
        return ea if ea > t else t

    def delay(self, t: float) -> float:
        """``del(t) - t``: the optimal delivery delay at start time t."""
        delivery = self.delivery_time(t)
        return delivery - t if delivery != INFINITY else INFINITY

    def dominated(self, ld: float, ea: float) -> bool:
        """Whether (ld, ea) is weakly dominated by the frontier."""
        lo = bisect_left(self.lds, ld)
        return lo < len(self.lds) and self.eas[lo] <= ea

    @property
    def last_departure(self) -> float:
        """Latest start time with a finite delivery; -inf when unreachable."""
        return self.lds[-1] if self.lds else -INFINITY

    def segments(self) -> Iterator[Tuple[float, float, float]]:
        """Yield (seg_beg, seg_end, ea) pieces of the delivery function.

        Within start times ``t`` in the half-open piece ``(seg_beg,
        seg_end]``, ``del(t) = max(t, ea)``.  The first piece begins at
        -inf; start times beyond the last LD have infinite delay and are
        *not* yielded.
        """
        prev = -INFINITY
        for ld, ea in zip(self.lds, self.eas):
            yield (prev, ld, ea)
            prev = ld

    def success_measure(self, delay_budget: float, t0: float, t1: float) -> float:
        """Lebesgue measure of start times in [t0, t1] with delay <= budget.

        Exact (no sampling): on the piece (a, b] with arrival ea, the delay
        is ``max(0, ea - t)``, so the piece contributes the length of
        ``[max(a, ea - budget, t0), min(b, t1)]``.  Dividing by ``t1 - t0``
        gives the success probability of paper Section 5.3.1 for one pair.
        """
        if t1 <= t0:
            return 0.0
        total = 0.0
        for seg_beg, seg_end, ea in self.segments():
            hi = seg_end if seg_end < t1 else t1
            lo = seg_beg if seg_beg > t0 else t0
            earliest_ok = ea - delay_budget
            if earliest_ok > lo:
                lo = earliest_ok
            if hi > lo:
                total += hi - lo
        return total

    def reachable_measure(self, t0: float, t1: float) -> float:
        """Measure of start times in [t0, t1] with *any* finite delivery."""
        if t1 <= t0 or not self.lds:
            return 0.0
        hi = self.lds[-1] if self.lds[-1] < t1 else t1
        return max(0.0, hi - t0)

    def validate(self) -> None:
        """Assert the frontier invariants; used by property tests."""
        lds, eas = self.lds, self.eas
        if len(lds) != len(eas):
            raise AssertionError("parallel arrays out of sync")
        for i in range(1, len(lds)):
            if not (lds[i - 1] < lds[i] and eas[i - 1] < eas[i]):
                raise AssertionError(
                    f"frontier not strictly increasing at {i}: "
                    f"{(lds[i - 1], eas[i - 1])} vs {(lds[i], eas[i])}"
                )
