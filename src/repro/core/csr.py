"""Flat CSR compilation of a temporal network for the array engines.

The per-source frontier DP (:mod:`repro.core.optimal`) spends its life
reading one directed edge's contact arrays — ``ends``, ``begs``,
``suffix_min_beg`` — per extension step.  The dict-of-lists adjacency is
a fine shape for the scalar loop but a poor one for two things the
ROADMAP cares about: batched numpy kernels (nothing flat to vectorise
over) and multi-process fan-out (pickling the dict costs
``workers x contacts``).

:class:`CSRNetwork` compiles a :class:`TemporalNetwork` once into
integer node ids plus flat numpy arrays in CSR (compressed sparse row)
layout.  With N nodes, E directed edges that carry at least one contact
and C directed contact slots:

* ``edge_offsets``  — int64 ``[N + 1]``; node ``u``'s edges occupy
  ``edge_dst[edge_offsets[u]:edge_offsets[u + 1]]``, in the same
  repr-sorted neighbour order the dict adjacency uses.
* ``edge_dst``      — int64 ``[E]``; destination node id per edge.
* ``edge_last_end`` — float64 ``[E]``; the edge's largest contact end
  (the feasibility cut ``EA <= last_end``).
* ``contact_offsets`` — int64 ``[E + 1]``; edge ``e``'s contacts occupy
  ``ends[contact_offsets[e]:contact_offsets[e + 1]]``, sorted by
  ``(t_end, t_beg)`` exactly like :class:`~.temporal_network.EdgeContacts`.
* ``ends`` / ``begs`` / ``suffix_min_beg`` — float64 ``[C]``; the flat
  concatenation of every edge's contact arrays.  Because edges of one
  node are contiguous, *all* contacts out of a node form one slice.
On top of the packed arrays, :meth:`_finalize` derives (locally, never
serialised — workers re-derive them on attach, which is cheaper than
doubling the broadcast):

* ``uniq_ends`` — float64 ``[U]``; the distinct contact end times.
* ``end_keys``  — int64 ``[C]``; ``edge(c) * (U + 1) + rank(ends[c])``
  where ``rank`` indexes into ``uniq_ends``.  The composite key is
  globally non-decreasing (edge-major), so a *single*
  ``np.searchsorted(end_keys, edge * (U + 1) + rank(t))`` reproduces the
  per-edge ``bisect_left(ends, t)`` for a whole batch of (edge, t)
  queries at once — the trick that lets :mod:`repro.core.engine_vec`
  run every frontier extension of a round in one kernel.
* ``time_table`` — float64 ``[T]``; distinct contact times (ends and
  begs together).  Every LD/EA value any engine can ever produce is a
  verbatim element of this table, so the vectorized engine runs its
  entire DP on int64 *ranks* into it — exact comparisons, no float
  arithmetic — and materialises floats only at snapshot time.
* ``ends_rank`` / ``begs_rank`` / ``sufmin_rank`` — int64 ``[C]``; the
  contact arrays mapped through ``time_table``.  Minima/maxima of times
  equal minima/maxima of ranks (the table is a monotone bijection).
* ``table_to_end_rank`` — int64 ``[T]``; precomputed
  ``bisect_left(uniq_ends, time_table[r])`` so the feasibility cut is a
  gather instead of a ``searchsorted`` per round.
* ``edge_last_end_rank`` — int64 ``[E]``; rank of each edge's last end.
* ``rank_bits`` — bit width of a rank, for packing (dest, LD rank,
  EA rank, flag) into one int64 sort key per frontier point.

The compiled form is position-independent: :meth:`CSRNetwork.pack_into`
serialises it into any writable buffer (a ``multiprocessing.shared_memory``
block in practice) and :meth:`CSRNetwork.from_buffer` re-hydrates
zero-copy numpy views over that buffer, so broadcasting a network to a
worker pool costs one shared-memory segment total instead of one
adjacency pickle per worker batch.

:func:`csr_for` caches compilations twice over: on the network object
itself (sharded runs reuse one network instance across shards) and in a
small digest-keyed LRU (service workers re-read the same trace file per
task and get the compiled form back for free).  Build time lands in the
``engine.csr.build_s`` timer; reuse in ``engine.csr.hit`` / ``.miss``.
"""

from __future__ import annotations

import pickle
import threading
import uuid
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import get_obs
from .contact import Node
from .temporal_network import TemporalNetwork

__all__ = ["CSRNetwork", "build_csr", "csr_for", "network_key"]

#: adjacency entry mirror of :data:`repro.core.optimal._AdjEntry`.
_AdjEntry = Tuple[Node, List[float], List[float], List[float], float]

_MAGIC = b"RCSR0001"
#: serialised arrays, in pack order; derived arrays (see
#: :meth:`CSRNetwork._finalize`) are recomputed on attach instead.
#: cap on the dense edge x distinct-end first-contact table (cells);
#: past this the vectorized engine bisects ``end_keys`` per query.
_MAX_FIRST_END_LUT = 1 << 26

_ARRAY_FIELDS = (
    "edge_offsets",
    "edge_dst",
    "edge_last_end",
    "contact_offsets",
    "ends",
    "begs",
    "suffix_min_beg",
)


def _align16(n: int) -> int:
    return (n + 15) & ~15


class CSRNetwork:
    """A temporal network compiled to integer ids + flat CSR arrays."""

    __slots__ = (
        "nodes",
        "node_index",
        "directed",
        "edge_offsets",
        "edge_dst",
        "edge_last_end",
        "contact_offsets",
        "ends",
        "begs",
        "suffix_min_beg",
        "uniq_ends",
        "end_keys",
        "time_table",
        "ends_rank",
        "begs_rank",
        "sufmin_rank",
        "table_to_end_rank",
        "edge_last_end_rank",
        "rank_bits",
        "stair_pos",
        "stair_sufnext",
        "pos_to_stair",
        "first_end_lut",
        "_keepalive",
    )

    nodes: List[Node]
    node_index: Dict[Node, int]
    directed: bool
    edge_offsets: np.ndarray
    edge_dst: np.ndarray
    edge_last_end: np.ndarray
    contact_offsets: np.ndarray
    ends: np.ndarray
    begs: np.ndarray
    suffix_min_beg: np.ndarray
    uniq_ends: np.ndarray
    end_keys: np.ndarray
    time_table: np.ndarray
    ends_rank: np.ndarray
    begs_rank: np.ndarray
    sufmin_rank: np.ndarray
    table_to_end_rank: np.ndarray
    edge_last_end_rank: np.ndarray
    rank_bits: int
    stair_pos: np.ndarray
    stair_sufnext: np.ndarray
    pos_to_stair: np.ndarray
    first_end_lut: Optional[np.ndarray]
    #: owner of the backing buffer for zero-copy views (else None).
    _keepalive: Optional[object]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return int(self.edge_dst.size)

    @property
    def num_contact_slots(self) -> int:
        """Directed contact slots (undirected contacts count twice)."""
        return int(self.ends.size)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"CSRNetwork({self.num_nodes} nodes, {self.num_edges} edges, "
            f"{self.num_contact_slots} contact slots, {kind})"
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    @classmethod
    def from_network(cls, net: TemporalNetwork) -> "CSRNetwork":
        """Compile ``net``; node ids follow the repr-sorted ``net.nodes``
        order and edges follow the repr-sorted neighbour order, so the
        layout is exactly the dict adjacency flattened."""
        self = cls.__new__(cls)
        nodes = list(net.nodes)
        node_index = {node: i for i, node in enumerate(nodes)}
        edge_offsets = np.zeros(len(nodes) + 1, dtype=np.int64)
        edge_dst: List[int] = []
        counts: List[int] = []
        last_ends: List[float] = []
        flat_ends: List[float] = []
        flat_begs: List[float] = []
        flat_sufmin: List[float] = []
        for i, u in enumerate(nodes):
            for v in net.out_neighbors(u):
                edge = net.edge_contacts(u, v)
                if not edge.ends:
                    continue
                edge_dst.append(node_index[v])
                counts.append(len(edge.ends))
                last_ends.append(edge.ends[-1])
                flat_ends.extend(edge.ends)
                flat_begs.extend(edge.begs)
                flat_sufmin.extend(edge.suffix_min_beg)
            edge_offsets[i + 1] = len(edge_dst)
        self.nodes = nodes
        self.node_index = node_index
        self.directed = net.directed
        self.edge_offsets = edge_offsets
        self.edge_dst = np.asarray(edge_dst, dtype=np.int64)
        self.edge_last_end = np.asarray(last_ends, dtype=np.float64)
        counts_arr = np.asarray(counts, dtype=np.int64)
        self.contact_offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts_arr, out=self.contact_offsets[1:])
        self.ends = np.asarray(flat_ends, dtype=np.float64)
        self.begs = np.asarray(flat_begs, dtype=np.float64)
        self.suffix_min_beg = np.asarray(flat_sufmin, dtype=np.float64)
        self._keepalive = None
        self._finalize()
        return self

    def _finalize(self) -> None:
        """Derive the rank-space arrays from the packed base arrays."""
        counts = np.diff(self.contact_offsets)
        self.uniq_ends = np.unique(self.ends)
        contact_edge = np.repeat(
            np.arange(counts.size, dtype=np.int64), counts
        )
        rank = np.searchsorted(self.uniq_ends, self.ends).astype(np.int64)
        self.end_keys = contact_edge * np.int64(self.uniq_ends.size + 1) + rank
        self.time_table = np.unique(np.concatenate((self.ends, self.begs)))
        self.ends_rank = np.searchsorted(self.time_table, self.ends).astype(
            np.int64
        )
        self.begs_rank = np.searchsorted(self.time_table, self.begs).astype(
            np.int64
        )
        self.sufmin_rank = np.searchsorted(
            self.time_table, self.suffix_min_beg
        ).astype(np.int64)
        self.table_to_end_rank = np.searchsorted(
            self.uniq_ends, self.time_table
        ).astype(np.int64)
        self.edge_last_end_rank = np.searchsorted(
            self.time_table, self.edge_last_end
        ).astype(np.int64)
        # Rank packing width: ranks fit in rank_bits, and the sentinel
        # 1 << rank_bits strictly exceeds every rank.
        self.rank_bits = max(1, int(self.time_table.size).bit_length())
        # Per-edge suffix-min staircase: contact j can contribute a
        # Pareto-surviving (LD, EA) = (end_j, max(beg_j, EA_entry))
        # candidate only if beg_j is strictly below every later beg on
        # the edge — otherwise a later contact (or the covered-run
        # collapse candidate) weakly dominates it within the same round
        # and destination.  ``stair_pos`` lists those contacts (global
        # indices), ``pos_to_stair[c]`` counts staircase contacts before
        # ``c`` (so any [first, covered) window maps to a staircase
        # index range with two gathers — no binary search), and
        # ``stair_sufnext`` carries each staircase contact's min-later-
        # beg rank for the per-pair EA cut-off.  Together they let the
        # engine enumerate only the candidates the scalar DP's
        # suffix-min prune would keep, instead of every contact in
        # every window.
        table_size = np.int64(self.time_table.size)
        sufmin_next = np.full(self.ends.size, table_size + 1, dtype=np.int64)
        if self.ends.size:
            sufmin_next[:-1] = self.sufmin_rank[1:]
            nonempty = self.contact_offsets[1:] > self.contact_offsets[:-1]
            sufmin_next[self.contact_offsets[1:][nonempty] - 1] = (
                table_size + 1
            )
        stair_mask = sufmin_next > self.begs_rank
        self.stair_pos = np.flatnonzero(stair_mask)
        self.stair_sufnext = sufmin_next[self.stair_pos]
        self.pos_to_stair = np.zeros(self.ends.size + 1, dtype=np.int64)
        np.cumsum(stair_mask, out=self.pos_to_stair[1:])
        # Dense first-contact table: ``first_end_lut[e * (U + 1) + r]``
        # is the first contact of edge ``e`` whose end has uniq-end rank
        # >= ``r`` (edge's contact stop when none) — the per-pair window
        # bisect collapsed to one gather.  Built with a reversed 2-D
        # running minimum, no binary search.  Skipped for huge traces
        # where O(edges x distinct ends) would not pay for itself; the
        # engine then falls back to ``searchsorted`` over ``end_keys``.
        num_edges = counts.size
        lut_cells = num_edges * (self.uniq_ends.size + 1)
        if 0 < lut_cells <= _MAX_FIRST_END_LUT:
            lut = np.full(lut_cells, np.iinfo(np.int64).max, dtype=np.int64)
            first_occ = np.empty(self.ends.size, dtype=bool)
            if self.ends.size:
                first_occ[0] = True
                np.not_equal(
                    self.end_keys[1:], self.end_keys[:-1], out=first_occ[1:]
                )
            lut[self.end_keys[first_occ]] = np.flatnonzero(first_occ)
            lut2d = lut.reshape(num_edges, self.uniq_ends.size + 1)
            lut2d[:, -1] = self.contact_offsets[1:]
            np.minimum.accumulate(lut2d[:, ::-1], axis=1, out=lut2d[:, ::-1])
            self.first_end_lut = lut
        else:
            self.first_end_lut = None

    # ------------------------------------------------------------------
    # Scalar-engine view
    # ------------------------------------------------------------------

    def to_adjacency(self) -> Dict[Node, List[_AdjEntry]]:
        """The dict-of-lists adjacency the scalar DP runs on.

        Values are plain Python floats (``ndarray.tolist``), so the
        rebuilt adjacency is element-for-element the one
        :func:`repro.core.optimal._build_adjacency` builds — pool
        workers can run the scalar oracle off a broadcast CSR without
        ever pickling the dict.
        """
        ends = self.ends.tolist()
        begs = self.begs.tolist()
        sufmin = self.suffix_min_beg.tolist()
        edge_offsets = self.edge_offsets.tolist()
        contact_offsets = self.contact_offsets.tolist()
        edge_dst = self.edge_dst.tolist()
        last_ends = self.edge_last_end.tolist()
        adjacency: Dict[Node, List[_AdjEntry]] = {}
        for ui, u in enumerate(self.nodes):
            e0, e1 = edge_offsets[ui], edge_offsets[ui + 1]
            if e0 == e1:
                continue
            entries: List[_AdjEntry] = []
            for e in range(e0, e1):
                c0, c1 = contact_offsets[e], contact_offsets[e + 1]
                entries.append(
                    (
                        self.nodes[edge_dst[e]],
                        ends[c0:c1],
                        begs[c0:c1],
                        sufmin[c0:c1],
                        last_ends[e],
                    )
                )
            adjacency[u] = entries
        return adjacency

    # ------------------------------------------------------------------
    # Zero-copy serialisation (shared-memory broadcast)
    # ------------------------------------------------------------------

    def _pack_plan(
        self,
    ) -> Tuple[bytes, List[Tuple[str, str, int, int]], int, int]:
        """(header bytes, array metas, data start, total size).

        Array offsets in the metas are relative to the data section and
        16-byte aligned, so re-hydrated views are always aligned no
        matter how long the pickled header is.
        """
        metas: List[Tuple[str, str, int, int]] = []
        offset = 0
        for name in _ARRAY_FIELDS:
            arr: np.ndarray = getattr(self, name)
            offset = _align16(offset)
            metas.append((name, arr.dtype.str, int(arr.size), offset))
            offset += int(arr.nbytes)
        header = pickle.dumps(
            {"directed": self.directed, "nodes": self.nodes, "arrays": metas},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        data_start = _align16(16 + len(header))
        return header, metas, data_start, data_start + offset

    def packed_nbytes(self) -> int:
        """Size in bytes :meth:`pack_into` needs."""
        return self._pack_plan()[3]

    def pack_into(self, buf: "memoryview | bytearray") -> int:
        """Serialise into ``buf`` (position-independent); returns the
        number of bytes written."""
        header, metas, data_start, total = self._pack_plan()
        view = memoryview(buf)
        if len(view) < total:
            raise ValueError(
                f"buffer holds {len(view)} bytes, need {total}"
            )
        view[0:8] = _MAGIC
        view[8:16] = len(header).to_bytes(8, "little")
        view[16 : 16 + len(header)] = header
        for name, dtype, size, offset in metas:
            dst = np.frombuffer(
                view, dtype=np.dtype(dtype), count=size, offset=data_start + offset
            )
            np.copyto(dst, getattr(self, name))
        return total

    @classmethod
    def from_buffer(
        cls, buf: "memoryview | bytearray", keepalive: Optional[object] = None
    ) -> "CSRNetwork":
        """Re-hydrate zero-copy views over a buffer written by
        :meth:`pack_into`.

        Only the (small) node list is deserialised; every packed array
        is a view into ``buf`` and the derived rank-space arrays are
        recomputed locally (cheaper than broadcasting them).
        ``keepalive`` pins the buffer's owner (the attached
        ``SharedMemory`` object) for the lifetime of the views.
        """
        view = memoryview(buf)
        if bytes(view[0:8]) != _MAGIC:
            raise ValueError("buffer does not hold a packed CSRNetwork")
        header_len = int.from_bytes(view[8:16], "little")
        header = pickle.loads(view[16 : 16 + header_len])
        data_start = _align16(16 + header_len)
        self = cls.__new__(cls)
        self.nodes = list(header["nodes"])
        self.node_index = {node: i for i, node in enumerate(self.nodes)}
        self.directed = bool(header["directed"])
        for name, dtype, size, offset in header["arrays"]:
            setattr(
                self,
                name,
                np.frombuffer(
                    view,
                    dtype=np.dtype(dtype),
                    count=size,
                    offset=data_start + offset,
                ),
            )
        self._keepalive = keepalive
        self._finalize()
        return self


def build_csr(net: TemporalNetwork) -> CSRNetwork:
    """Compile ``net``, timing the build in ``engine.csr.build_s``."""
    with get_obs().timer("engine.csr.build_s"):
        return CSRNetwork.from_network(net)


#: attribute the per-network compilation caches under (no __slots__ on
#: TemporalNetwork, and networks are immutable by convention).
_CSR_ATTR = "_repro_csr_cache"
_KEY_ATTR = "_repro_network_key"

#: digest-keyed LRU so a worker process that re-reads the same trace
#: file per task (the service pool does) still compiles once.
_DIGEST_LRU: "OrderedDict[str, CSRNetwork]" = OrderedDict()
_DIGEST_LRU_MAX = 4
_DIGEST_LOCK = threading.Lock()


def network_key(net: TemporalNetwork) -> str:
    """A stable cache/broadcast key for ``net``, computed once per object.

    The content digest (:func:`~repro.core.storage.trace_digest`) when
    the node ids are encodable — equal traces read from disk twice share
    a key — else a unique token pinned to the object (never reused, so
    it can never alias a different network).
    """
    key: Optional[str] = getattr(net, _KEY_ATTR, None)
    if key is None:
        try:
            from .storage import trace_digest

            key = trace_digest(net)
        except TypeError:
            key = f"pyobj-{uuid.uuid4().hex}"
        setattr(net, _KEY_ATTR, key)
    return key


def csr_for(net: TemporalNetwork) -> CSRNetwork:
    """The cached CSR compilation of ``net``.

    Lookup order: the network object itself, then the key LRU (equal
    trace content read from disk again), then a fresh
    :func:`build_csr`.  Reuse lands in ``engine.csr.hit`` / ``.miss``.
    """
    cached: Optional[CSRNetwork] = getattr(net, _CSR_ATTR, None)
    obs = get_obs()
    if cached is not None:
        obs.metrics.counter("engine.csr.hit").inc()
        return cached
    key = network_key(net)
    with _DIGEST_LOCK:
        hit = _DIGEST_LRU.get(key)
        if hit is not None:
            _DIGEST_LRU.move_to_end(key)
    if hit is not None:
        setattr(net, _CSR_ATTR, hit)
        obs.metrics.counter("engine.csr.hit").inc()
        return hit
    obs.metrics.counter("engine.csr.miss").inc()
    csr = build_csr(net)
    setattr(net, _CSR_ATTR, csr)
    with _DIGEST_LOCK:
        _DIGEST_LRU[key] = csr
        _DIGEST_LRU.move_to_end(key)
        while len(_DIGEST_LRU) > _DIGEST_LRU_MAX:
            _DIGEST_LRU.popitem(last=False)
    return csr
