"""Exhaustive computation of delay-optimal paths for all starting times.

This is the algorithmic contribution of the paper (Section 4.4): compute,
for every source-destination pair and every hop bound, the full delivery
function — i.e. the Pareto-minimal list of (LD, EA) path summaries — using
an induction on the number of contacts in a sequence:

    "This can be done by computing all the optimal paths associated with
     sequences of at most k contacts, starting with k = 1, and using
     concatenation with edges on the right to deduce the next step."

The implementation is a per-source, hop-indexed dynamic programming:

* ``F_k[d]`` is the Pareto frontier over sequences of at most k contacts
  from the source to d.  After round k it is exact for hop bound k.
* **Delta queues**: only frontier entries inserted during round k are
  extended during round k+1 (Bellman-Ford style), and entries that have
  been displaced from the frontier by a dominator before their turn are
  skipped (the dominator's extensions dominate theirs), so total work
  follows surviving frontier churn.
* **Per-edge candidate pruning**: extending an entry (LD, EA) along an
  edge whose contacts are sorted by end time, only contacts with
  ``t_end >= EA`` are feasible (paper fact (iv)); all contacts with
  ``t_end >= LD`` collapse into a single candidate
  ``(LD, max(EA, min t_beg))`` found via a suffix-minimum array, and the
  remaining run is locally Pareto-pruned before touching the frontier.

The hot loop works on plain parallel lists with inlined Pareto insertion;
results are exposed as :class:`~repro.core.delivery.DeliveryFunction`.

Unbounded hop count is the fixpoint of the induction; it terminates
because frontiers only gain Pareto-optimal points from the finite set
{contact end times} x {contact begin times}.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs import MetricsRegistry, get_obs
from .contact import Node
from .delivery import DeliveryFunction
from .floats import is_pinned_zero
from .temporal_network import TemporalNetwork

DEFAULT_HOP_BOUNDS = (1, 2, 3, 4, 5, 6)

#: adjacency entry: (neighbor, ends, begs, suffix_min_beg, last_end)
_AdjEntry = Tuple[Node, List[float], List[float], List[float], float]
_Adjacency = Dict[Node, List[_AdjEntry]]


def _build_adjacency(net: TemporalNetwork) -> _Adjacency:
    """Per-node list of (neighbor, sorted contact arrays) — built once per
    network and shared across all per-source runs.

    Nodes with no outgoing contacts get *no* entry (readers use
    ``adjacency.get(u, ())``): on sparse rosters with many isolated
    nodes — success-rate denominators keep them around — empty entries
    were pure overhead, and the CSR compilation
    (:mod:`repro.core.csr`) skips them too, so both layouts agree.
    """
    adjacency: _Adjacency = {}
    for u in net.nodes:
        entries: List[_AdjEntry] = []
        for v in net.out_neighbors(u):
            edge = net.edge_contacts(u, v)
            if edge.ends:
                entries.append(
                    (v, edge.ends, edge.begs, edge.suffix_min_beg, edge.ends[-1])
                )
        if entries:
            adjacency[u] = entries
    return adjacency


def _adjacency_for(net: TemporalNetwork) -> _Adjacency:
    """The cached adjacency of ``net`` (networks are immutable by
    convention, so sharded runs over one network instance build once)."""
    cached: Optional[_Adjacency] = getattr(net, "_repro_adjacency_cache", None)
    if cached is None:
        cached = _build_adjacency(net)
        setattr(net, "_repro_adjacency_cache", cached)
    return cached


def _function_from_lists(lds: List[float], eas: List[float]) -> DeliveryFunction:
    """Wrap already-Pareto-minimal parallel lists without re-inserting."""
    func = DeliveryFunction()
    func.lds = list(lds)
    func.eas = list(eas)
    return func


@dataclass
class ProfileStats:
    """Work counters of one per-source DP run (observability only).

    Collected when the active :mod:`repro.obs` bundle is enabled and
    otherwise skipped entirely, so the hot loop stays uninstrumented by
    default.  Round indices are hop counts: ``insertions_per_round[k-1]``
    is the number of frontier points inserted with exactly k contacts.
    """

    rounds: int = 0
    #: frontier insertions during round k (index k-1).
    insertions_per_round: List[int] = field(default_factory=list)
    #: round-k queue entries dropped because a same-round dominator
    #: displaced them before their extension turn (index k-1).
    displaced_per_round: List[int] = field(default_factory=list)
    #: candidate (LD, EA) pairs evaluated against a frontier.
    candidates_scanned: int = 0
    #: contacts collapsed away by the suffix-minimum covered-run rule.
    suffix_min_prunes: int = 0
    #: Pareto points across all destinations at the fixpoint.
    frontier_points: int = 0
    #: destinations with a non-empty final profile.
    destinations: int = 0


def _record_profile_metrics(
    metrics: MetricsRegistry, profiles: "Iterable[SourceProfiles]"
) -> None:
    """Fold per-source :class:`ProfileStats` into the session registry."""
    sources = metrics.counter("optimal.sources")
    rounds_hist = metrics.histogram("optimal.rounds_to_fixpoint")
    scanned = metrics.counter("optimal.candidates_scanned")
    pruned = metrics.counter("optimal.suffix_min_prunes")
    points = metrics.counter("optimal.frontier_points")
    reachable = metrics.counter("optimal.reachable_destinations")
    # Per-hop totals are folded in plain dicts first so the labelled
    # instrument lookup happens once per hop, not once per (source, hop).
    insertions_by_hop: Dict[int, int] = {}
    displaced_by_hop: Dict[int, int] = {}
    for sp in profiles:
        stats = sp.stats
        if stats is None:
            continue
        sources.inc()
        rounds_hist.observe(stats.rounds)
        scanned.inc(stats.candidates_scanned)
        pruned.inc(stats.suffix_min_prunes)
        points.inc(stats.frontier_points)
        reachable.inc(stats.destinations)
        for hop, n in enumerate(stats.insertions_per_round, start=1):
            insertions_by_hop[hop] = insertions_by_hop.get(hop, 0) + n
        for hop, n in enumerate(stats.displaced_per_round, start=1):
            displaced_by_hop[hop] = displaced_by_hop.get(hop, 0) + n
    for hop, n in insertions_by_hop.items():
        # reprolint: disable=REP003 -- the label varies with the loop
        # variable, so no single instrument reference can be hoisted; this
        # loop runs once per distinct hop count after the fold, not on the
        # per-source hot path.
        metrics.counter("optimal.frontier_insertions", hop=hop).inc(n)
    for hop, n in displaced_by_hop.items():
        # reprolint: disable=REP003 -- same as above: per-hop label, cold
        # post-aggregation loop bounded by the fixpoint round count.
        metrics.counter("optimal.frontier_displacements", hop=hop).inc(n)


class SourceProfiles:
    """Delivery functions from one source to every destination.

    Obtained from :func:`compute_profiles`; answers ``profile(d, max_hops)``
    for any recorded hop bound and for unbounded hops (``max_hops=None``).
    """

    def __init__(
        self,
        source: Node,
        hop_bounds: Tuple[int, ...],
        snapshots: Dict[int, Dict[Node, DeliveryFunction]],
        final: Dict[Node, DeliveryFunction],
        rounds: int,
        stats: Optional[ProfileStats] = None,
    ) -> None:
        self.source = source
        self.hop_bounds = hop_bounds
        self._snapshots = snapshots
        self._final = final
        #: number of DP rounds to fixpoint == largest hop count over which
        #: any optimal path improves; small by the paper's main result.
        self.rounds = rounds
        #: work counters when the run was observed (else None).
        self.stats = stats
        self._empty = DeliveryFunction()

    def profile(
        self, destination: Node, max_hops: Optional[int] = None
    ) -> DeliveryFunction:
        """The delivery function to ``destination`` under a hop bound.

        ``max_hops=None`` means unbounded (the paper's k = infinity).  A
        bounded query must use one of the recorded ``hop_bounds`` unless
        it is at least the fixpoint round count, in which case the bound
        is vacuous and the final profile is returned.
        """
        if max_hops is None or max_hops >= self.rounds:
            return self._final.get(destination, self._empty)
        if max_hops not in self._snapshots:
            raise KeyError(
                f"hop bound {max_hops} was not recorded; available: "
                f"{sorted(self._snapshots)} (or None for unbounded)"
            )
        for bound in sorted(self._snapshots, reverse=True):
            if bound > max_hops:
                continue
            snap = self._snapshots[bound].get(destination)
            if snap is not None:
                return snap
        return self._empty

    def destinations(self) -> Sequence[Node]:
        """Destinations reachable (within unbounded hops) from the source."""
        return sorted(self._final, key=repr)

    def bound_profiles(
        self,
        destinations: Iterable[Node],
        bounds: Sequence[Optional[int]],
    ) -> Iterator[Tuple[Node, Tuple[DeliveryFunction, ...]]]:
        """Resolve every destination under several hop bounds in one walk.

        Yields ``(destination, funcs)`` with ``funcs`` aligned with
        ``bounds``; each entry is the same object :meth:`profile` would
        return for that bound, but the recorded-snapshot walk happens
        once per destination instead of once per (destination, bound).
        """
        recorded = sorted(self._snapshots)
        plan: List[Optional[int]] = []
        for bound in bounds:
            if bound is None or bound >= self.rounds:
                plan.append(None)
                continue
            if bound not in self._snapshots:
                raise KeyError(
                    f"hop bound {bound} was not recorded; available: "
                    f"{recorded} (or None for unbounded)"
                )
            plan.append(recorded.index(bound))
        for destination in destinations:
            final = self._final.get(destination, self._empty)
            carry = self._empty
            resolved: List[DeliveryFunction] = []
            for bound in recorded:
                snap = self._snapshots[bound].get(destination)
                if snap is not None:
                    carry = snap
                resolved.append(carry)
            yield destination, tuple(
                final if p is None else resolved[p] for p in plan
            )


def _run_single_source(
    adjacency: _Adjacency,
    source: Node,
    hop_bounds: Tuple[int, ...],
    max_rounds: Optional[int],
    slack: float,
    collect_stats: bool = False,
) -> SourceProfiles:
    """The per-source frontier dynamic programming described above.

    ``collect_stats`` gathers :class:`ProfileStats`; the counters are
    either derived from structures the loop maintains anyway (queue and
    bucket lengths) or guarded so the disabled mode adds no work to the
    innermost contact scan.
    """
    stats = ProfileStats() if collect_stats else None
    stat_scanned = 0
    stat_pruned = 0
    # Frontier per destination as parallel [lds, eas] lists (both strictly
    # increasing); plain lists keep the hot loop allocation-free.
    frontier: Dict[Node, List[List[float]]] = {}
    snapshots: Dict[int, Dict[Node, DeliveryFunction]] = {k: {} for k in hop_bounds}
    snapshot_rounds = sorted(hop_bounds)
    changed: Set[Node] = set()
    infinity = float("inf")

    queue: List[Tuple[Node, float, float]] = []
    for v, ends, begs, _sufmin, _last in adjacency.get(source, ()):
        if collect_stats:
            stat_scanned += len(ends)
        entry = frontier.get(v)
        if entry is None:
            entry = frontier[v] = [[], []]
        lds, eas = entry
        for ld, ea in zip(ends, begs):
            # Inlined Pareto insert (see DeliveryFunction.insert); with
            # slack > 0, candidates whose arrival improves the frontier by
            # no more than slack are treated as dominated.
            lo = bisect_left(lds, ld)
            n = len(lds)
            if lo < n and eas[lo] <= ea + slack:
                continue
            hi = lo + 1 if lo < n and lds[lo] == ld else lo
            cut = bisect_left(eas, ea, 0, hi)
            if cut != hi:
                del lds[cut:hi]
                del eas[cut:hi]
            lds.insert(cut, ld)
            eas.insert(cut, ea)
            queue.append((v, ld, ea))
        if lds:
            changed.add(v)

    if stats is not None:
        stats.insertions_per_round.append(len(queue))

    rounds_run = 1
    snap_idx = 0

    def take_snapshot(after_round: int) -> int:
        """Record copies for every due hop bound; returns the next index."""
        idx = snap_idx
        while idx < len(snapshot_rounds) and snapshot_rounds[idx] <= after_round:
            bound = snapshot_rounds[idx]
            if bound == after_round:
                # repr order canonicalises the snapshot dict (set order
                # is insertion/hash dependent), so persisted output is
                # identical across engines and across processes.
                for node in sorted(changed, key=repr):
                    lds, eas = frontier[node]
                    snapshots[bound][node] = _function_from_lists(lds, eas)
                changed.clear()
            idx += 1
        return idx

    snap_idx = take_snapshot(1)

    limit = max_rounds if max_rounds is not None else infinity
    while queue and rounds_run < limit:
        # Drop entries displaced from the frontier during the *previous*
        # round: their displacer was inserted in the same round (same hop
        # count), so its extensions dominate theirs at every hop bound.
        # Entries displaced *during* the current round must still be
        # extended (the displacer has one hop more), hence the filter runs
        # once per round, up front.  Survivors are bucketed by node so the
        # edge arrays are unpacked once per (node, edge), not per entry.
        buckets: Dict[Node, List[Tuple[float, float]]] = {}
        for u, ld, ea in queue:
            own_lds, own_eas = frontier[u]
            lo = bisect_left(own_lds, ld)
            if lo < len(own_lds) and own_lds[lo] == ld and own_eas[lo] == ea:
                buckets.setdefault(u, []).append((ea, ld))
        if stats is not None:
            survivors = sum(len(pairs) for pairs in buckets.values())
            stats.displaced_per_round.append(len(queue) - survivors)
        next_queue: List[Tuple[Node, float, float]] = []
        for u, pairs in buckets.items():
            pairs.sort()
            eas_sorted = [p[0] for p in pairs]
            for v, ends, begs, sufmin, last_end in adjacency.get(u, ()):
                if v == source:
                    continue
                # Entries with EA past the edge's last contact cannot use it.
                stop = bisect_right(eas_sorted, last_end)
                if stop == 0:
                    continue
                entry = frontier.get(v)
                if entry is None:
                    entry = frontier[v] = [[], []]
                lds, eas = entry
                n = len(ends)
                inserted_any = False
                for idx in range(stop):
                    ea, ld = pairs[idx]
                    first = bisect_left(ends, ea)
                    # Contacts outliving the whole window: one candidate.
                    covered = bisect_left(ends, ld, first, n)
                    if collect_stats:
                        stat_scanned += covered - first
                        if covered < n:
                            stat_scanned += 1
                            stat_pruned += n - covered - 1
                    best_ea = infinity
                    if covered < n:
                        cand_ea = sufmin[covered]
                        if cand_ea < ea:
                            cand_ea = ea
                        best_ea = cand_ea
                        lo = bisect_left(lds, ld)
                        m = len(lds)
                        if not (lo < m and eas[lo] <= cand_ea + slack):
                            hi = lo + 1 if lo < m and lds[lo] == ld else lo
                            cut = bisect_left(eas, cand_ea, 0, hi)
                            if cut != hi:
                                del lds[cut:hi]
                                del eas[cut:hi]
                            lds.insert(cut, ld)
                            eas.insert(cut, cand_ea)
                            next_queue.append((v, ld, cand_ea))
                            inserted_any = True
                    # Contacts ending inside [EA, LD): genuine frontier
                    # steps, scanned by decreasing end time with a local
                    # Pareto prune.
                    for j in range(covered - 1, first - 1, -1):
                        cand_ea = begs[j]
                        if cand_ea < ea:
                            cand_ea = ea
                        if cand_ea >= best_ea:
                            continue
                        best_ea = cand_ea
                        cand_ld = ends[j]
                        lo = bisect_left(lds, cand_ld)
                        m = len(lds)
                        if lo < m and eas[lo] <= cand_ea + slack:
                            continue
                        hi = lo + 1 if lo < m and lds[lo] == cand_ld else lo
                        cut = bisect_left(eas, cand_ea, 0, hi)
                        if cut != hi:
                            del lds[cut:hi]
                            del eas[cut:hi]
                        lds.insert(cut, cand_ld)
                        eas.insert(cut, cand_ea)
                        next_queue.append((v, cand_ld, cand_ea))
                        inserted_any = True
                if inserted_any:
                    changed.add(v)
        queue = next_queue
        if queue:
            rounds_run += 1
            if stats is not None:
                stats.insertions_per_round.append(len(queue))
            snap_idx = take_snapshot(rounds_run)

    final = {
        node: _function_from_lists(lds, eas)
        for node, (lds, eas) in frontier.items()
        if lds
    }
    if stats is not None:
        stats.rounds = rounds_run
        stats.candidates_scanned = stat_scanned
        stats.suffix_min_prunes = stat_pruned
        stats.frontier_points = sum(len(func.lds) for func in final.values())
        stats.destinations = len(final)
    return SourceProfiles(source, hop_bounds, snapshots, final, rounds_run, stats)


class PathProfileSet:
    """All-pairs optimal-path profiles of a temporal network."""

    def __init__(
        self,
        network: TemporalNetwork,
        by_source: Dict[Node, SourceProfiles],
        hop_bounds: Tuple[int, ...],
    ) -> None:
        self.network = network
        self._by_source = by_source
        self.hop_bounds = hop_bounds
        self._empty = DeliveryFunction()

    @property
    def sources(self) -> Sequence[Node]:
        return sorted(self._by_source, key=repr)

    @property
    def max_rounds_run(self) -> int:
        """The largest fixpoint round over sources: an upper bound on the
        hop count of every optimal path in the network."""
        if not self._by_source:
            return 0
        return max(sp.rounds for sp in self._by_source.values())

    def source_profiles(self, source: Node) -> SourceProfiles:
        return self._by_source[source]

    def profile(
        self, source: Node, destination: Node, max_hops: Optional[int] = None
    ) -> DeliveryFunction:
        """Delivery function of (source, destination) under a hop bound."""
        if source == destination:
            raise ValueError("source and destination must differ")
        return self._by_source[source].profile(destination, max_hops)

    def items(
        self, max_hops: Optional[int] = None
    ) -> Iterator[Tuple[Tuple[Node, Node], DeliveryFunction]]:
        """Iterate ((source, destination), profile) over all ordered pairs.

        Pairs whose destination is unreachable yield an empty profile, so
        the iteration covers the full denominator of the paper's empirical
        success probabilities.
        """
        for source in self.sources:
            sp = self._by_source[source]
            for destination in self.network.nodes:
                if destination == source:
                    continue
                yield (source, destination), sp.profile(destination, max_hops)


#: engine choices accepted by :func:`compute_profiles`.
ENGINES = ("auto", "scalar", "vec")

#: below this contact count ``engine="auto"`` stays scalar: per-round
#: numpy dispatch overhead beats list bisects only once rounds carry
#: hundreds of candidates (see EXPERIMENTS.md for the measured
#: crossover).
_AUTO_VEC_MIN_CONTACTS = 512


def _resolve_engine(engine: str, slack: float, network: TemporalNetwork) -> str:
    """Pick the execution engine for one ``compute_profiles`` call.

    ``vec`` is exact-only: slack pruning accepts or rejects a candidate
    against the frontier *state at insertion time*, which depends on
    insertion order — something the batched engine deliberately has
    none of.  ``auto`` therefore selects ``vec`` only for exact runs,
    and only above a size where the batching pays for itself.  Both
    engines produce identical profiles, so the choice is never part of
    a cache key.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "scalar":
        return "scalar"
    if engine == "vec":
        if not is_pinned_zero(slack):
            raise ValueError(
                "engine='vec' is exact-only and cannot honour slack > 0; "
                "use engine='scalar' (or 'auto') for approximate runs"
            )
        return "vec"
    if is_pinned_zero(slack) and network.num_contacts >= _AUTO_VEC_MIN_CONTACTS:
        return "vec"
    return "scalar"


def compute_profiles(
    network: TemporalNetwork,
    hop_bounds: Iterable[int] = DEFAULT_HOP_BOUNDS,
    sources: Optional[Iterable[Node]] = None,
    max_rounds: Optional[int] = None,
    slack: float = 0.0,
    workers: int = 1,
    engine: str = "auto",
) -> PathProfileSet:
    """Compute delay-optimal path profiles for all starting times.

    Args:
        network: the temporal network (trace).
        hop_bounds: hop bounds at which bounded profiles are recorded;
            unbounded profiles are always available.
        sources: restrict the computation to these sources (the DP is
            per-source separable); default all nodes.
        max_rounds: optional safety cap on DP rounds (hence on the hop
            count explored); None runs to the exact fixpoint.
        slack: approximation knob for very long traces.  With slack > 0
            (seconds), frontier candidates that improve the earliest
            arrival by at most ``slack`` are pruned.  Every reported pair
            remains a genuine achievable path summary (delivery times are
            never optimistic); in practice they stay within about
            ``slack`` per hop of the exact optimum, though this is an
            empirical observation, not a worst-case guarantee.  0 (the
            default) is exact.
        workers: number of processes for the per-source runs (the DP is
            per-source separable).  1 (the default) stays in-process;
            larger values use the persistent shared-memory pool
            (:mod:`repro.core.engine_pool`), which broadcasts the
            compiled network once and deals sources out as stolen
            chunks — worthwhile from a few thousand contacts upward.
        engine: ``"scalar"`` (the reference DP over dict adjacency),
            ``"vec"`` (batched numpy kernels over the flat CSR arrays,
            exact-only) or ``"auto"`` (``vec`` for exact runs on
            non-trivial traces, ``scalar`` otherwise).  Both engines
            produce identical profiles; the knob trades constant
            factors, so it is deliberately excluded from cache keys.

    Returns:
        A :class:`PathProfileSet`.
    """
    if slack < 0:
        raise ValueError("slack cannot be negative")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    bounds = tuple(sorted(set(int(k) for k in hop_bounds)))
    if bounds and bounds[0] < 1:
        raise ValueError("hop bounds must be >= 1")
    chosen = list(network.nodes) if sources is None else list(sources)
    for node in chosen:
        if node not in network:
            raise KeyError(f"unknown source {node!r}")
    resolved = _resolve_engine(engine, slack, network)
    obs = get_obs()
    collect = obs.enabled
    with obs.span(
        "optimal.compute_profiles",
        sources=len(chosen),
        nodes=len(network),
        contacts=network.num_contacts,
        workers=workers,
        slack=slack,
        engine=resolved,
    ) as span, obs.timer("optimal.compute_profiles"):
        if workers == 1 or len(chosen) <= 1:
            if resolved == "vec":
                from .csr import csr_for
                from .engine_vec import run_sources_vec

                csr = csr_for(network)
                profiles = run_sources_vec(
                    csr,
                    [csr.node_index[source] for source in chosen],
                    bounds,
                    max_rounds,
                    slack,
                    collect,
                )
                by_source = dict(zip(chosen, profiles))
            else:
                adjacency = _adjacency_for(network)
                by_source = {
                    source: _run_single_source(
                        adjacency, source, bounds, max_rounds, slack, collect
                    )
                    for source in chosen
                }
        else:
            from .csr import csr_for, network_key
            from .engine_pool import shared_pool

            csr = csr_for(network)
            node_ids = csr.node_index
            pool = shared_pool(min(workers, len(chosen)))
            by_source = pool.run(
                csr,
                network_key(network),
                [node_ids[source] for source in chosen],
                bounds,
                max_rounds,
                slack,
                collect,
                resolved,
            )
        if collect:
            _record_profile_metrics(obs.metrics, by_source.values())
            span.set(
                max_rounds_run=max(
                    (sp.rounds for sp in by_source.values()), default=0
                ),
                frontier_points=sum(
                    sp.stats.frontier_points
                    for sp in by_source.values()
                    if sp.stats is not None
                ),
            )
    return PathProfileSet(network, by_source, bounds)
