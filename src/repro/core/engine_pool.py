"""Persistent worker pool with a zero-copy shared-memory CSR broadcast.

``compute_profiles(workers=N)`` used to build a fresh
``ProcessPoolExecutor`` per call, carve the source roster into static
stripes (``chosen[i::pool_size]``) and pickle the *entire adjacency
dict once per stripe* — serialisation cost grew with
``workers x contacts`` and one expensive source serialised a whole
stripe behind it.  This module replaces both halves:

* **Broadcast once.**  The compiled :class:`~repro.core.csr.CSRNetwork`
  is packed into a single ``multiprocessing.shared_memory`` segment,
  keyed by trace digest; workers attach by name and re-hydrate
  zero-copy numpy views (:meth:`CSRNetwork.from_buffer`).  Repeat calls
  on the same network reuse the segment — the task messages carry only
  the segment name and a few source ids, so per-task pickle traffic is
  bytes, not megabytes.  Counters: ``engine.pool.broadcasts`` /
  ``.broadcast_bytes`` (segment creations), ``.broadcast_reused``
  (cache hits), ``.task_bytes`` (actual pickled task traffic) and
  ``.spawns`` (worker processes started) — the broadcast-exactly-once
  property is asserted from these in tests and the engine bench.
* **Steal, don't stripe.**  Sources are cut into bounded chunks pushed
  through one shared task queue; an idle worker pulls the next chunk,
  so a single expensive source delays at most one chunk, not a stripe.

The pool is persistent (module-level, keyed by worker count) so warm
paths skip process start-up; segments are explicitly unlinked on
eviction, on :func:`close_pools` and at interpreter exit.  Lifecycle:
``create`` (supervisor packs + ``SharedMemory(create=True)``) →
``attach`` (worker opens by name, then *unregisters* the segment from
its ``resource_tracker`` so a worker exit cannot reap a segment the
supervisor still owns) → ``unlink`` (supervisor only).

Workers run either engine off the same broadcast: the vectorized kernel
directly on the CSR views, or the scalar oracle on a per-attachment
``to_adjacency()`` rebuild (cached, so it happens once per segment per
worker, not per task).
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import pickle
import threading
import traceback
from collections import OrderedDict
from multiprocessing import resource_tracker, shared_memory
from queue import Empty
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..obs import get_obs
from .contact import Node
from .csr import CSRNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .optimal import SourceProfiles

__all__ = ["SharedCSRPool", "shared_pool", "close_pools"]

#: most shared-memory segments kept per pool (LRU beyond this).
_MAX_SEGMENTS = 4
#: most segments a single worker keeps attached.
_MAX_WORKER_ATTACHMENTS = 2
#: upper bound on sources per stolen chunk.
_MAX_CHUNK = 16

# "fork" keeps warm-path start-up at fork speed and avoids re-importing
# __main__ in children; platforms without it (Windows, macOS default
# since 3.8) fall back to spawn, which the module-level worker entry
# point supports equally.
_START_METHOD = "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _available_cores() -> int:
    """CPUs this process may actually run on (affinity/cgroup aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _unregister_attachment(shm: shared_memory.SharedMemory) -> None:
    """Detach a worker-side attachment from its resource tracker.

    Under spawn, attaching registers the segment with the *worker's own*
    tracker (fixed only in 3.13's ``track=False``), so a worker exit
    would unlink a segment the supervisor still owns and other workers
    still need.  Under fork the tracker process is shared with the
    supervisor and the duplicate registration is a set no-op, so this
    must *not* run there — it would erase the supervisor's entry.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _drop_attachment(state: List[Any]) -> None:
    """Close one worker attachment.  The zero-copy views must die before
    the segment can close (mmap refuses to unmap while buffer exports
    exist), so the CSR/adjacency slots are dropped first."""
    shm = state[0]
    del state[1:]
    try:
        shm.close()
    except BufferError:  # pragma: no cover - stray external view
        pass


def _execute_chunk(
    task: Dict[str, Any],
    attachments: "OrderedDict[str, List[Any]]",
    unregister_attachments: bool,
) -> List[Tuple[int, Any]]:
    """Run one chunk of sources against its broadcast segment.

    A separate function so every view-holding local dies on return —
    otherwise a lingering reference would block the segment teardown.
    """
    from .engine_vec import run_sources_raw
    from .optimal import _run_single_source

    name = task["shm"]
    state = attachments.get(name)
    if state is None:
        while len(attachments) >= _MAX_WORKER_ATTACHMENTS:
            _, old = attachments.popitem(last=False)
            _drop_attachment(old)
        shm = shared_memory.SharedMemory(name=name)
        if unregister_attachments:
            _unregister_attachment(shm)
        state = attachments[name] = [
            shm,
            CSRNetwork.from_buffer(shm.buf, keepalive=shm),
            None,
        ]
    else:
        attachments.move_to_end(name)
    csr: CSRNetwork = state[1]
    bounds = task["bounds"]
    max_rounds = task["max_rounds"]
    slack = task["slack"]
    collect = task["collect"]
    out: List[Tuple[int, Any]] = []
    if task["engine"] == "vec":
        # The whole chunk runs as one lockstep batch — per-round kernel
        # overhead is paid once per batch round, not once per source —
        # and ships back *raw* rank arrays (a handful of numpy buffers)
        # instead of materialised profile objects; pickling tens of
        # thousands of Python floats per chunk would cost more than the
        # DP itself.  The supervisor materialises via
        # :func:`~repro.core.engine_vec.profiles_from_raw`.
        out.extend(
            zip(
                task["sources"],
                run_sources_raw(
                    csr, task["sources"], bounds, max_rounds, slack, collect
                ),
            )
        )
    else:
        adjacency = state[2]
        if adjacency is None:
            adjacency = state[2] = csr.to_adjacency()
        for sid in task["sources"]:
            out.append(
                (
                    sid,
                    _run_single_source(
                        adjacency, csr.nodes[sid], bounds, max_rounds, slack,
                        collect,
                    ),
                )
            )
    return out


def _worker_main(
    tasks: "mp.queues.Queue[Optional[Dict[str, Any]]]",
    results: "mp.queues.Queue[Tuple[Any, str, Any]]",
    unregister_attachments: bool,
) -> None:
    """Worker loop: attach → compute a chunk of sources → ship profiles.

    Module-level so it pickles under the spawn start method.  Workers
    never publish to the supervisor's obs bundle; stats ride back on the
    :class:`SourceProfiles` objects and are folded in by the caller.
    """
    from ..obs import set_obs

    set_obs(None)
    attachments: "OrderedDict[str, List[Any]]" = OrderedDict()
    while True:
        task = tasks.get()
        if task is None:
            break
        try:
            out = _execute_chunk(task, attachments, unregister_attachments)
            results.put((task["id"], "ok", out))
        except BaseException:
            results.put((task.get("id"), "error", traceback.format_exc()))
    while attachments:
        _, state = attachments.popitem()
        _drop_attachment(state)


class SharedCSRPool:
    """A persistent worker pool fed through shared-memory CSR segments."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._ctx = mp.get_context(_START_METHOD)
        self._tasks: "mp.queues.Queue[Optional[Dict[str, Any]]]" = self._ctx.Queue()
        self._results: "mp.queues.Queue[Tuple[Any, str, Any]]" = self._ctx.Queue()
        self._procs: List[mp.process.BaseProcess] = []
        self._segments: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
        self._lock = threading.Lock()
        self._sequence = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def broken(self) -> bool:
        """True once the pool lost a worker or was closed."""
        with self._lock:
            return self._closed or any(
                not p.is_alive() for p in self._procs
            )

    def _ensure_workers(self, needed: Optional[int] = None) -> None:  # guarded-by: _lock
        """Spawn worker processes on demand, up to ``self.workers``.

        ``needed`` caps the spawn at the number of runnable chunks: a
        run that deals fewer chunks than the pool width must not wake
        extra processes — an idle cold worker that later steals a task
        re-faults its whole working set (hundreds of MB on big traces),
        while routing repeat runs to the same warm worker keeps its
        allocator and page tables hot.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        spawns = get_obs().metrics.counter("engine.pool.spawns")
        target = self.workers if needed is None else min(self.workers, needed)
        missing = target - len(self._procs)
        for _ in range(missing):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self._tasks, self._results, _START_METHOD == "spawn"),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
            spawns.inc()

    def broadcast(self, csr: CSRNetwork, digest: str) -> str:
        """Publish ``csr`` once per digest; returns the segment name.

        Counts a creation in ``engine.pool.broadcasts`` (with the byte
        size in ``.broadcast_bytes``) or a reuse in
        ``.broadcast_reused`` — the "network ships exactly once" ledger.
        """
        obs = get_obs()
        existing = self._segments.get(digest)
        if existing is not None:
            self._segments.move_to_end(digest)
            obs.metrics.counter("engine.pool.broadcast_reused").inc()
            return existing.name
        nbytes = csr.packed_nbytes()
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        try:
            csr.pack_into(shm.buf)
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        self._segments[digest] = shm
        obs.metrics.counter("engine.pool.broadcasts").inc()
        obs.metrics.counter("engine.pool.broadcast_bytes").inc(nbytes)
        while len(self._segments) > _MAX_SEGMENTS:
            _, old = self._segments.popitem(last=False)
            old.close()
            old.unlink()
        return shm.name

    def close(self) -> None:
        """Stop workers and unlink every shared segment."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:  # guarded-by: _lock
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):  # pragma: no cover
                break
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs.clear()
        self._tasks.close()
        self._results.close()
        for shm in self._segments.values():
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._segments.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        csr: CSRNetwork,
        digest: str,
        source_ids: List[int],
        hop_bounds: Tuple[int, ...],
        max_rounds: Optional[int],
        slack: float,
        collect_stats: bool,
        engine: str,
    ) -> Dict[Node, "SourceProfiles"]:
        """Compute per-source profiles for ``source_ids``; returns a
        node-keyed dict of :class:`~repro.core.optimal.SourceProfiles`.

        Sources are dealt out as bounded chunks through the shared task
        queue (work stealing): an idle worker takes the next chunk, so
        one expensive source delays at most ``chunk - 1`` peers.
        """
        with self._lock:
            name = self.broadcast(csr, digest)
            self._sequence += 1
            sequence = self._sequence
            if engine == "vec":
                # Lockstep batching amortises the fixed per-round kernel
                # cost over the whole chunk, so one big chunk per worker
                # beats many stealable slivers; imbalance costs at most
                # one batch tail, kernel amortisation wins back far more.
                # Never split below the machine's actual parallelism:
                # extra chunks on an oversubscribed box only shrink the
                # lockstep batches without adding concurrency.
                lanes = min(self.workers, _available_cores())
                chunk = max(1, -(-len(source_ids) // lanes))
            else:
                chunk = max(
                    1, min(_MAX_CHUNK, -(-len(source_ids) // (self.workers * 4)))
                )
            chunks = [
                source_ids[i : i + chunk]
                for i in range(0, len(source_ids), chunk)
            ]
            self._ensure_workers(len(chunks))
            task_bytes = get_obs().metrics.counter("engine.pool.task_bytes")
            for index, part in enumerate(chunks):
                task: Dict[str, Any] = {
                    "id": (sequence, index),
                    "shm": name,
                    "sources": part,
                    "bounds": hop_bounds,
                    "max_rounds": max_rounds,
                    "slack": slack,
                    "collect": collect_stats,
                    "engine": engine,
                }
                task_bytes.inc(len(pickle.dumps(task)))
                self._tasks.put(task)
            by_id: Dict[int, Any] = {}
            pending = len(chunks)
            while pending:
                try:
                    task_id, status, payload = self._results.get(timeout=1.0)
                except Empty:
                    if any(not p.is_alive() for p in self._procs):
                        self._close_locked()
                        raise RuntimeError(
                            "a profile pool worker died; pool closed "
                            "(results discarded)"
                        )
                    continue
                if status == "error":
                    self._close_locked()
                    raise RuntimeError(
                        f"profile pool worker failed:\n{payload}"
                    )
                if not (isinstance(task_id, tuple) and task_id[0] == sequence):
                    continue  # pragma: no cover - stray result of a dead run
                for sid, profiles in payload:
                    by_id[sid] = profiles
                pending -= 1
        if engine == "vec":
            from .engine_vec import profiles_from_raw

            materialised = profiles_from_raw(
                csr, [by_id[sid] for sid in source_ids], hop_bounds
            )
            return {
                csr.nodes[sid]: prof
                for sid, prof in zip(source_ids, materialised)
            }
        return {csr.nodes[sid]: by_id[sid] for sid in source_ids}


_POOLS: Dict[int, SharedCSRPool] = {}
_POOLS_LOCK = threading.Lock()


def shared_pool(workers: int) -> SharedCSRPool:
    """The persistent pool for ``workers`` processes (rebuilt if broken)."""
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None or pool.broken:
            if pool is not None:
                pool.close()
            pool = SharedCSRPool(workers)
            _POOLS[workers] = pool
        return pool


def close_pools() -> None:
    """Close every persistent pool and unlink their shared segments."""
    with _POOLS_LOCK:
        for pool in _POOLS.values():
            pool.close()
        _POOLS.clear()


# PID-guarded so forked workers (which inherit this module) never run
# the supervisor's cleanup against segments they do not own.
_OWNER_PID = os.getpid()


def _atexit_close() -> None:  # pragma: no cover - interpreter teardown
    if os.getpid() == _OWNER_PID:
        close_pools()


atexit.register(_atexit_close)
