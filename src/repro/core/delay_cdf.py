"""Exact empirical delay CDFs over sources, destinations and start times.

Paper Section 5.3.1: "We combine all the observations of a trace uniformly
among all sources, destinations, and for every starting time (in seconds)
... the value of the CDF for a given time t is equal to the probability to
successfully find a path within time t, when sources, destinations and
message generation time are chosen at random.  If no path exists, we
include an infinite value in the distribution."

Because the delivery function of a pair is piecewise of the form
``del(t) = max(t, EA_i)`` on ``(LD_{i-1}, LD_i]``, the probability that the
delay is below a budget d has a closed form per piece; the CDF is therefore
computed *exactly* (continuous-uniform start time over the observation
window), with no start-time sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .contact import Node
from .optimal import PathProfileSet
from .segments import SegmentTable, build_segment_table

__all__ = [
    "DelayCDF",
    "cdf_from_table",
    "delay_cdf",
    "delay_cdf_per_hop_bound",
    "delay_cdf_reference",
]


@dataclass(frozen=True)
class DelayCDF:
    """An empirical delay CDF evaluated on a delay grid.

    Attributes:
        grid: delay budgets (seconds), ascending.
        values: P[delay <= budget] for each grid point.
        success_at_infinity: P[any path exists] — the CDF's total finite
            mass; ``1 - success_at_infinity`` is the mass at +infinity.
        window: the (t0, t1) observation window of start times.
        num_pairs: how many ordered (source, destination) pairs aggregated.
    """

    grid: np.ndarray
    values: np.ndarray
    success_at_infinity: float
    window: Tuple[float, float]
    num_pairs: int

    def __post_init__(self) -> None:
        if len(self.grid) != len(self.values):
            raise ValueError("grid and values lengths differ")

    def __call__(self, delay: float) -> float:
        """CDF value at an arbitrary budget (step interpolation from below)."""
        idx = int(np.searchsorted(self.grid, delay, side="right")) - 1
        if idx < 0:
            return 0.0
        return float(self.values[idx])

    def quantile(self, q: float) -> float:
        """Smallest grid delay with CDF >= q; inf when never reached."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile level must be in [0, 1]")
        above = np.nonzero(self.values >= q)[0]
        if len(above) == 0:
            return float("inf")
        return float(self.grid[above[0]])


def _segment_arrays(
    profiles: PathProfileSet,
    max_hops: Optional[int],
    window: Tuple[float, float],
    pairs: Optional[Iterable[Tuple[Node, Node]]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Flatten all delivery-function pieces clipped to the window.

    Returns (piece start, piece end, arrival) arrays and the pair count.
    """
    t0, t1 = window
    seg_beg: List[float] = []
    seg_end: List[float] = []
    arrivals: List[float] = []
    if pairs is None:
        iterator = profiles.items(max_hops)
        num_pairs = 0
        for (_, _), func in iterator:
            num_pairs += 1
            for a, b, ea in func.segments():
                lo = a if a > t0 else t0
                hi = b if b < t1 else t1
                if hi > lo:
                    seg_beg.append(lo)
                    seg_end.append(hi)
                    arrivals.append(ea)
    else:
        pair_list = list(pairs)
        num_pairs = len(pair_list)
        for s, d in pair_list:
            func = profiles.profile(s, d, max_hops)
            for a, b, ea in func.segments():
                lo = a if a > t0 else t0
                hi = b if b < t1 else t1
                if hi > lo:
                    seg_beg.append(lo)
                    seg_end.append(hi)
                    arrivals.append(ea)
    return (
        np.asarray(seg_beg, dtype=float),
        np.asarray(seg_end, dtype=float),
        np.asarray(arrivals, dtype=float),
        num_pairs,
    )


def _validate_grid_window(
    profiles: PathProfileSet,
    grid: Sequence[float],
    window: Optional[Tuple[float, float]],
) -> Tuple[np.ndarray, Tuple[float, float]]:
    grid_arr = np.asarray(list(grid), dtype=float)
    if len(grid_arr) == 0:
        raise ValueError("empty delay grid")
    if np.any(np.diff(grid_arr) < 0):
        raise ValueError("delay grid must be ascending")
    if window is None:
        window = profiles.network.span
    t0, t1 = window
    if t1 <= t0:
        raise ValueError(f"degenerate observation window {window}")
    return grid_arr, (t0, t1)


def cdf_from_table(
    table: SegmentTable, bound: Optional[int], grid_arr: np.ndarray
) -> DelayCDF:
    """Evaluate one hop bound of a :class:`SegmentTable` on a delay grid."""
    t0, t1 = table.window
    total_mass = float(table.num_pairs) * (t1 - t0)
    if total_mass == 0:
        raise ValueError("no (source, destination) pairs to aggregate")
    values = table.measure(bound, grid_arr) / total_mass
    reachable = table.finite_measure(bound) / total_mass
    return DelayCDF(
        grid=grid_arr,
        values=values,
        success_at_infinity=reachable,
        window=(t0, t1),
        num_pairs=table.num_pairs,
    )


def delay_cdf(
    profiles: PathProfileSet,
    grid: Sequence[float],
    max_hops: Optional[int] = None,
    window: Optional[Tuple[float, float]] = None,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
) -> DelayCDF:
    """The empirical CDF of the optimal delivery delay.

    Evaluated by the vectorized single-pass engine
    (:mod:`repro.core.segments`); :func:`delay_cdf_reference` is the
    original per-budget loop, kept as the correctness oracle.

    Args:
        profiles: result of :func:`repro.core.optimal.compute_profiles`.
        grid: ascending delay budgets at which to evaluate the CDF.
        max_hops: hop bound (None = unbounded, the flooding optimum).
        window: start-time observation window; defaults to the trace span.
        pairs: restrict to these ordered (source, destination) pairs;
            default all ordered pairs over the computed sources.
    """
    grid_arr, window = _validate_grid_window(profiles, grid, window)
    table = build_segment_table(profiles, [max_hops], window, pairs)
    return cdf_from_table(table, max_hops, grid_arr)


def delay_cdf_reference(
    profiles: PathProfileSet,
    grid: Sequence[float],
    max_hops: Optional[int] = None,
    window: Optional[Tuple[float, float]] = None,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
) -> DelayCDF:
    """Reference implementation of :func:`delay_cdf` (same signature).

    Re-walks the profiles per hop bound and loops over the delay grid in
    Python — O(|segments| x |grid|).  Kept as the oracle the equivalence
    suite checks the vectorized engine against (<= 1e-12).
    """
    grid_arr, window = _validate_grid_window(profiles, grid, window)
    t0, t1 = window

    seg_beg, seg_end, arrivals, num_pairs = _segment_arrays(
        profiles, max_hops, window, pairs
    )
    total_mass = float(num_pairs) * (t1 - t0)
    if total_mass == 0:
        raise ValueError("no (source, destination) pairs to aggregate")

    values = np.empty(len(grid_arr), dtype=float)
    if len(seg_beg) == 0:
        values.fill(0.0)
        reachable = 0.0
    else:
        for i, budget in enumerate(grid_arr):
            # Within a piece, delay <= budget iff t >= arrival - budget.
            lo = np.maximum(seg_beg, arrivals - budget)
            values[i] = float(np.maximum(seg_end - lo, 0.0).sum())
        values /= total_mass
        reachable = float((seg_end - seg_beg).sum()) / total_mass
    return DelayCDF(
        grid=grid_arr,
        values=values,
        success_at_infinity=reachable,
        window=(t0, t1),
        num_pairs=num_pairs,
    )


def delay_cdf_per_hop_bound(
    profiles: PathProfileSet,
    grid: Sequence[float],
    hop_bounds: Sequence[Optional[int]],
    window: Optional[Tuple[float, float]] = None,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
) -> "Dict[Optional[int], DelayCDF]":
    """Delay CDFs for several hop bounds at once (paper Figures 9-11).

    All bounds share one traversal of the profiles (one
    :class:`SegmentTable`), so adding bounds costs only kernel time.
    """
    grid_arr, window = _validate_grid_window(profiles, grid, window)
    bounds = list(hop_bounds)
    table = build_segment_table(profiles, bounds, window, pairs)
    return {bound: cdf_from_table(table, bound, grid_arr) for bound in bounds}
