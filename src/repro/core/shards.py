"""Source-sharded profile computation with shard-level checkpointing.

The paper's Section 4.4 algorithm is *per-source separable*: the
``(LD, EA)`` frontier of one source never reads another source's state.
:func:`repro.core.optimal.compute_profiles` already exploits that for
in-process parallelism (``workers``); this module exploits it across
*failures and machines*: the source roster is partitioned into
deterministic contiguous shards, each shard is computed (and optionally
checkpointed through :func:`repro.core.cache.load_or_compute`) on its
own, and the shard results merge back into a single
:class:`~repro.core.optimal.PathProfileSet` whose downstream output is
**byte-identical** to the unsharded computation.

Why byte-identity holds, and is asserted rather than hoped for:

* shards partition ``network.nodes`` — the repr-sorted roster — into
  contiguous runs, so the union of shard rosters is the unsharded
  roster, in order;
* each per-source DP run is independent of which other sources share its
  invocation, so a shard computes exactly the ``SourceProfiles`` objects
  the monolithic run would;
* every consumer iterates ``PathProfileSet.sources`` (repr-sorted), so
  the merged set feeds :func:`~repro.core.segments.build_segment_table`
  the same segments in the same concatenation order — identical float
  summation order, bitwise-identical CDFs.

Checkpointing falls out of the existing content-addressed cache: a
shard's entry is keyed by :func:`~repro.core.cache.profile_cache_key`
with the shard's explicit source list (plus trace digest, hop bounds and
format version), so a crashed or timed-out job that re-runs recomputes
only the shards whose entries are missing — the ``profiles.cache.hit`` /
``.miss`` counters make resume behaviour observable and testable.

The worker-facing entry point :func:`warm_shard` computes exactly one
shard into a shared cache directory; the service's pool fans one
admitted job out into ``warm_shard`` tasks and finishes with a normal
(all-hits) CLI run that merges and formats.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import get_obs
from .contact import Node
from .optimal import (
    DEFAULT_HOP_BOUNDS,
    PathProfileSet,
    SourceProfiles,
    compute_profiles,
)
from .segments import SegmentTable
from .temporal_network import TemporalNetwork

PathLike = Union[str, Path]

__all__ = [
    "shard_sources",
    "compute_profiles_sharded",
    "merge_profile_sets",
    "merge_segment_tables",
    "warm_shard",
]


def shard_sources(
    sources: Sequence[Node], shards: int
) -> List[List[Node]]:
    """Partition sources into deterministic, contiguous, balanced shards.

    The roster is repr-sorted first (the order ``TemporalNetwork.nodes``
    and ``PathProfileSet.sources`` use), then cut into ``shards``
    contiguous runs whose sizes differ by at most one.  The effective
    shard count is clamped to ``len(sources)`` so no shard is empty; an
    empty roster yields no shards at all.

    Contiguity over the sorted roster is what makes sharded output
    byte-identical: concatenating the shards reproduces the exact source
    order of the monolithic computation.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    ordered = sorted(sources, key=repr)
    if not ordered:
        return []
    effective = min(shards, len(ordered))
    base, extra = divmod(len(ordered), effective)
    plan: List[List[Node]] = []
    start = 0
    for index in range(effective):
        size = base + (1 if index < extra else 0)
        plan.append(ordered[start : start + size])
        start += size
    return plan


def merge_profile_sets(
    network: TemporalNetwork,
    parts: Sequence[PathProfileSet],
    hop_bounds: Tuple[int, ...],
) -> PathProfileSet:
    """Union disjoint per-shard profile sets into one.

    The per-source DP is independent across sources, so merging is a
    plain dict union; overlapping shards would silently double-count
    pairs downstream, so they are rejected.
    """
    merged: Dict[Node, SourceProfiles] = {}
    for part in parts:
        for source in part.sources:
            if source in merged:
                raise ValueError(
                    f"shards overlap on source {source!r}; shards must "
                    "partition the roster"
                )
            merged[source] = part.source_profiles(source)
    return PathProfileSet(network, merged, hop_bounds)


def merge_segment_tables(tables: Sequence[SegmentTable]) -> SegmentTable:
    """Concatenate per-shard segment tables into one, order-preserving.

    All tables must share the window and the bound set.  Given tables
    built from contiguous shards of the sorted roster, in shard order,
    the concatenated arrays are element-for-element the arrays the
    monolithic :func:`~repro.core.segments.build_segment_table` builds —
    so every downstream measure is bitwise identical, not just close.
    """
    if not tables:
        raise ValueError("cannot merge zero segment tables")
    window = tables[0].window
    bounds = tables[0].bounds
    for table in tables[1:]:
        if table.window != window:
            raise ValueError(
                f"window mismatch: {table.window} != {window}"
            )
        if table.bounds != bounds:
            raise ValueError(
                f"bound set mismatch: {table.bounds} != {bounds}"
            )
    raw = {
        bound: tuple(
            np.concatenate([table.segments(bound)[i] for table in tables])
            for i in range(3)
        )
        for bound in bounds
    }
    num_pairs = sum(table.num_pairs for table in tables)
    return SegmentTable(window=window, num_pairs=num_pairs, raw=raw)


def compute_profiles_sharded(
    network: TemporalNetwork,
    shards: int,
    hop_bounds: Sequence[int] = DEFAULT_HOP_BOUNDS,
    sources: Optional[Sequence[Node]] = None,
    max_rounds: Optional[int] = None,
    slack: float = 0.0,
    workers: int = 1,
    cache_dir: Optional[PathLike] = None,
    max_bytes: Optional[int] = None,
    engine: str = "auto",
) -> PathProfileSet:
    """``compute_profiles`` in deterministic source shards, then merged.

    With ``cache_dir`` each shard goes through
    :func:`~repro.core.cache.load_or_compute`, so every completed shard
    is a durable, content-addressed checkpoint: re-running after a crash
    recomputes only the missing shards.  Without a cache directory the
    shards still run independently (useful for bounding peak memory of
    one invocation) but nothing persists.

    The merged result is byte-compatible with the unsharded call: same
    sources, same per-source profiles, same downstream iteration order.
    """
    bounds = tuple(sorted(set(int(k) for k in hop_bounds)))
    roster = list(network.nodes) if sources is None else list(sources)
    plan = shard_sources(roster, shards)
    obs = get_obs()
    completed = obs.metrics.counter("shards.completed")
    with obs.span(
        "shards.compute_profiles",
        shards=len(plan),
        sources=len(roster),
        cached=cache_dir is not None,
    ):
        parts: List[PathProfileSet] = []
        for shard in plan:
            if cache_dir is not None:
                from .cache import load_or_compute

                part = load_or_compute(
                    network,
                    cache_dir,
                    hop_bounds=bounds,
                    sources=shard,
                    max_rounds=max_rounds,
                    slack=slack,
                    workers=workers,
                    max_bytes=max_bytes,
                    engine=engine,
                )
            else:
                part = compute_profiles(
                    network,
                    hop_bounds=bounds,
                    sources=shard,
                    max_rounds=max_rounds,
                    slack=slack,
                    workers=workers,
                    engine=engine,
                )
            parts.append(part)
            completed.inc()
    return merge_profile_sets(network, parts, bounds)


def warm_shard(
    trace: PathLike,
    cache_dir: PathLike,
    max_hops: int,
    shard_index: int,
    shard_count: int,
    engine: str = "auto",
) -> int:
    """Compute one shard of a trace's profiles into a shared cache.

    The service's worker pool runs this for each shard of a fanned-out
    job; the final merge is then a plain CLI run over an all-hits cache.
    Returns the number of sources in the shard.  ``shard_index`` must
    address a shard of the *effective* plan (``shard_count`` clamped to
    the roster size, exactly as :func:`shard_sources` clamps).
    """
    from ..traces.format import read_contacts
    from .cache import load_or_compute

    network = read_contacts(trace)
    plan = shard_sources(network.nodes, shard_count)
    if not 0 <= shard_index < len(plan):
        raise ValueError(
            f"shard index {shard_index} outside the effective plan of "
            f"{len(plan)} shard(s)"
        )
    shard = plan[shard_index]
    load_or_compute(
        network,
        cache_dir,
        hop_bounds=range(1, max_hops + 1),
        sources=shard,
        engine=engine,
    )
    return len(shard)
