"""Persist computed path profiles to disk.

Computing all-pairs profiles of a long trace can take minutes; analyses
(CDFs, diameters, ablations) then reread the same profiles many times.
This module serialises a :class:`PathProfileSet` to a single compressed
``.npz`` file and restores it losslessly, including the per-hop-bound
snapshots and fixpoint round counts.

Every file embeds the content digest of the trace it was computed from
(:func:`trace_digest`) plus its contact count; :func:`load_profiles`
verifies both against the supplied network and fails loudly on any
mismatch, so a profiles file can never silently load against the wrong
trace and yield wrong diameters.

Node identifiers are stored through ``repr`` round-tripping for the two
supported kinds (ints and strings), which covers every trace this
library produces or reads.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from .contact import Node
from .delivery import DeliveryFunction
from .optimal import PathProfileSet, SourceProfiles
from .temporal_network import TemporalNetwork

PathLike = Union[str, Path]

#: Version 2 added the embedded trace digest + contact count.
_FORMAT_VERSION = 2


def trace_digest(network: TemporalNetwork) -> str:
    """Content digest of a trace: nodes, contacts and directedness.

    Times are hashed through ``float.hex`` (exact), so the digest is
    stable across processes and platforms but changes whenever any
    contact, endpoint or the roster changes.  Used to bind profiles
    files (and cache entries) to the exact trace they were computed on.
    """
    h = hashlib.sha256()
    h.update(b"repro.trace/1\n")
    h.update(b"directed\n" if network.directed else b"undirected\n")
    for node in network.nodes:
        h.update(_encode_node(node).encode("utf-8"))
        h.update(b"\n")
    for c in network.contacts:
        line = (
            f"{_encode_node(c.u)}|{_encode_node(c.v)}"
            f"|{float(c.t_beg).hex()}|{float(c.t_end).hex()}\n"
        )
        h.update(line.encode("utf-8"))
    return h.hexdigest()


def _encode_node(node: Node) -> str:
    if isinstance(node, bool) or not isinstance(node, (int, str)):
        raise TypeError(
            f"only int and str node ids can be serialised, got {type(node)}"
        )
    prefix = "i" if isinstance(node, int) else "s"
    return f"{prefix}:{node}"


def _decode_node(token: str) -> Node:
    kind, _, value = token.partition(":")
    return int(value) if kind == "i" else value


def profiles_digest(profiles: PathProfileSet) -> str:
    """Canonical content digest of everything :func:`save_profiles`
    persists: hop bounds, the source roster in order, per-source
    fixpoint rounds, and every final/snapshot delivery function with
    exact (``float.hex``) values in stored iteration order.

    Two profile sets digest equally iff their saved ``.npz`` files are
    content-identical — the archive *bytes* differ across runs (zip
    member timestamps), so engine-parity checks (scalar vs vec vs
    worker-pool) compare this digest instead of file hashes.
    """
    h = hashlib.sha256()
    h.update(b"repro.profiles/1\n")
    h.update(json.dumps(list(profiles.hop_bounds)).encode("utf-8"))
    h.update(b"\n")

    def feed(func: DeliveryFunction) -> None:
        for ld, ea in zip(func.lds, func.eas):
            h.update(f"{float(ld).hex()},{float(ea).hex()};".encode("utf-8"))
        h.update(b"\n")

    for source in profiles.sources:
        sp = profiles.source_profiles(source)
        h.update(f"src {_encode_node(source)} r{sp.rounds}\n".encode("utf-8"))
        for destination in sp.destinations():
            h.update(f"f {_encode_node(destination)} ".encode("utf-8"))
            feed(sp.profile(destination, None))
        for bound in profiles.hop_bounds:
            for destination, func in sp._snapshots.get(bound, {}).items():
                h.update(
                    f"b{bound} {_encode_node(destination)} ".encode("utf-8")
                )
                feed(func)
    return h.hexdigest()


def save_profiles(profiles: PathProfileSet, path: PathLike) -> None:
    """Write a profile set to a compressed ``.npz`` file."""
    arrays: Dict[str, np.ndarray] = {}
    sources: List[Dict[str, object]] = []
    index: Dict[str, object] = {
        "version": _FORMAT_VERSION,
        "hop_bounds": list(profiles.hop_bounds),
        "trace": {
            "digest": trace_digest(profiles.network),
            "contacts": profiles.network.num_contacts,
            "nodes": len(profiles.network),
        },
        "sources": sources,
    }
    for number, source in enumerate(profiles.sources):
        sp = profiles.source_profiles(source)
        final: List[List[str]] = []
        snapshots: Dict[str, List[List[str]]] = {}
        entry: Dict[str, object] = {
            "node": _encode_node(source),
            "rounds": sp.rounds,
            "final": final,
            "snapshots": snapshots,
        }
        for destination in sp.destinations():
            func = sp.profile(destination, None)
            key = f"s{number}_final_{len(final)}"
            arrays[key] = np.asarray([func.lds, func.eas], dtype=float)
            final.append([_encode_node(destination), key])
        for bound in profiles.hop_bounds:
            snap = sp._snapshots.get(bound, {})
            listed: List[List[str]] = []
            for destination, func in snap.items():
                key = f"s{number}_b{bound}_{len(listed)}"
                arrays[key] = np.asarray([func.lds, func.eas], dtype=float)
                listed.append([_encode_node(destination), key])
            snapshots[str(bound)] = listed
        sources.append(entry)
    arrays["__index__"] = np.frombuffer(
        json.dumps(index).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def _function_from_array(array: np.ndarray) -> DeliveryFunction:
    func = DeliveryFunction()
    func.lds = [float(x) for x in array[0]]
    func.eas = [float(x) for x in array[1]]
    return func


def load_profiles(path: PathLike, network: TemporalNetwork) -> PathProfileSet:
    """Restore a profile set saved by :func:`save_profiles`.

    The temporal network is supplied by the caller (profiles files do not
    embed the trace itself); the file's embedded trace digest and contact
    count must match it exactly, otherwise a ValueError is raised — a
    profiles file must never silently load against a different trace.
    """
    with np.load(path) as data:
        index = json.loads(bytes(data["__index__"]).decode("utf-8"))
        if index.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported profiles file version {index.get('version')}"
            )
        recorded = index["trace"]
        if recorded["contacts"] != network.num_contacts:
            raise ValueError(
                f"profiles file was computed from a different trace: it "
                f"records {recorded['contacts']} contacts, the supplied "
                f"network has {network.num_contacts}"
            )
        digest = trace_digest(network)
        if recorded["digest"] != digest:
            raise ValueError(
                "profiles file was computed from a different trace: "
                f"embedded digest {recorded['digest'][:12]}... does not "
                f"match the supplied network ({digest[:12]}...)"
            )
        hop_bounds = tuple(index["hop_bounds"])
        by_source: Dict[Node, SourceProfiles] = {}
        for entry in index["sources"]:
            source = _decode_node(entry["node"])
            if source not in network:
                raise KeyError(
                    f"profiles reference node {source!r} missing from the "
                    f"network"
                )
            final = {
                _decode_node(token): _function_from_array(data[key])
                for token, key in entry["final"]
            }
            snapshots = {
                int(bound): {
                    _decode_node(token): _function_from_array(data[key])
                    for token, key in listed
                }
                for bound, listed in entry["snapshots"].items()
            }
            by_source[source] = SourceProfiles(
                source=source,
                hop_bounds=hop_bounds,
                snapshots=snapshots,
                final=final,
                rounds=int(entry["rounds"]),
            )
    return PathProfileSet(network, by_source, hop_bounds)
