"""Explicit time-respecting paths (sequences of contacts).

The optimal-path computation works on (LD, EA) summaries, but tests,
witness reconstruction and the forwarding simulator need the concrete
object: a chronologically feasible sequence of contacts (paper Section 3.1.3
and Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from .contact import Contact, Node
from .pairs import PathPair


def is_valid_sequence(contacts: Sequence[Contact]) -> bool:
    """Paper Eq. (2): a contact sequence supports a time-respecting path
    iff every contact ends no earlier than the latest begin seen so far
    (equivalently, greedy scheduling ``t_i = max(t_{i-1}, t_beg_i)`` stays
    within every interval).
    """
    latest_beg = -float("inf")
    for contact in contacts:
        if contact.t_beg > latest_beg:
            latest_beg = contact.t_beg
        if contact.t_end < latest_beg:
            return False
    return True


def is_chained(contacts: Sequence[Contact]) -> bool:
    """Whether consecutive contacts share the intermediate device."""
    return all(
        contacts[i].v == contacts[i + 1].u for i in range(len(contacts) - 1)
    )


@dataclass(frozen=True)
class ContactPath:
    """A time-respecting multi-hop path through a temporal network.

    Raises ValueError at construction when the contact sequence is not
    chained through intermediate devices or not chronologically feasible.
    """

    contacts: Tuple[Contact, ...]

    def __post_init__(self) -> None:
        if not self.contacts:
            raise ValueError("a path needs at least one contact")
        if not is_chained(self.contacts):
            raise ValueError("consecutive contacts do not share a device")
        if not is_valid_sequence(self.contacts):
            raise ValueError("contact sequence is not time-respecting (Eq. 2)")

    @classmethod
    def of(cls, *contacts: Contact) -> "ContactPath":
        return cls(tuple(contacts))

    @property
    def source(self) -> Node:
        return self.contacts[0].u

    @property
    def destination(self) -> Node:
        return self.contacts[-1].v

    @property
    def num_contacts(self) -> int:
        return len(self.contacts)

    @property
    def num_relays(self) -> int:
        """Intermediate devices between source and destination."""
        return len(self.contacts) - 1

    @property
    def hops(self) -> Sequence[Node]:
        """The node sequence u_0, u_1, ..., u_n."""
        return [self.contacts[0].u] + [c.v for c in self.contacts]

    @property
    def last_departure(self) -> float:
        """LD: the minimum of contact end times (paper Section 4.2)."""
        return min(c.t_end for c in self.contacts)

    @property
    def earliest_arrival(self) -> float:
        """EA: the maximum of contact begin times (paper Section 4.2)."""
        return max(c.t_beg for c in self.contacts)

    @property
    def summary(self) -> PathPair:
        return PathPair(self.last_departure, self.earliest_arrival)

    def delivery_time(self, t: float) -> float:
        """Optimal delivery time along this path for a message created at t."""
        return self.summary.delivery_time(t)

    def schedule(self, t: float) -> "list[float]":
        """Greedy per-contact transmission times for a message created at t.

        Returns the non-decreasing times ``t_1 <= ... <= t_n`` with
        ``t_i in [t_beg_i; t_end_i]``, or raises ValueError if the message
        misses the path (``t > LD``).
        """
        if t > self.last_departure:
            raise ValueError(f"message created at {t} misses the path (LD="
                             f"{self.last_departure})")
        times = []
        now = t
        for contact in self.contacts:
            now = max(now, contact.t_beg)
            if now > contact.t_end:  # pragma: no cover - excluded by Eq. 2
                raise ValueError("infeasible schedule on a valid path")
            times.append(now)
        return times

    def concatenate(self, other: "ContactPath") -> "ContactPath":
        """Join two paths end-to-start (paper fact (iv) decides feasibility)."""
        if self.destination != other.source:
            raise ValueError(
                f"paths do not chain: {self.destination!r} != {other.source!r}"
            )
        return ContactPath(self.contacts + other.contacts)
