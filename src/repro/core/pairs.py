"""The (LD, EA) algebra summarising classes of time-respecting paths.

Paper Section 4.2 shows that everything one needs to know about a sequence
of contacts — for the purpose of optimal forwarding — is the pair

* ``LD`` (*last departure*): the latest time a message may leave the source
  and still traverse the sequence, ``LD = min_i t_end_i``;
* ``EA`` (*earliest arrival*): the earliest time the message can reach the
  end of the sequence, ``EA = max_i t_beg_i``.

Facts (i)-(iv) of the paper become a tiny algebra on these pairs, which this
module implements.  Note that ``EA > LD`` is allowed and meaningful: it is a
store-and-forward sequence (the message must leave before LD and is parked
at relays until EA).
"""

from __future__ import annotations

from typing import NamedTuple

from .contact import Contact


class PathPair(NamedTuple):
    """Summary (last departure, earliest arrival) of a contact sequence."""

    ld: float
    ea: float

    @property
    def is_contemporaneous(self) -> bool:
        """True when the whole sequence can be traversed at one instant.

        Paper fact (iii): if ``EA <= LD`` the path can start and arrive at
        any single time in ``[EA; LD]``.
        """
        return self.ea <= self.ld

    def delivery_time(self, t: float) -> float:
        """Optimal delivery time of a message created at time t.

        Paper Section 4.3: ``del(t) = max(t, EA)`` when ``t <= LD``, else
        infinite (the sequence can no longer be used).
        """
        if t > self.ld:
            return float("inf")
        return max(t, self.ea)

    def delay(self, t: float) -> float:
        """``del(t) - t``; zero when already connected, inf when unusable."""
        delivery = self.delivery_time(t)
        if delivery == float("inf"):
            return float("inf")
        return delivery - t


def pair_of_contact(contact: Contact) -> PathPair:
    """The (LD, EA) pair of a single-contact sequence: (t_end, t_beg)."""
    return PathPair(ld=contact.t_end, ea=contact.t_beg)


def can_concatenate(left: PathPair, right: PathPair) -> bool:
    """Paper fact (iv): concatenation is possible iff EA(left) <= LD(right)."""
    return left.ea <= right.ld


def concatenate(left: PathPair, right: PathPair) -> PathPair:
    """The pair of the concatenated sequence (paper Section 4.2).

    ``LD = min(LDs)`` and ``EA = max(EAs)``.  Raises ValueError when the
    concatenation is not time-respecting.
    """
    if not can_concatenate(left, right):
        raise ValueError(
            f"cannot concatenate: EA(left)={left.ea} > LD(right)={right.ld}"
        )
    return PathPair(ld=min(left.ld, right.ld), ea=max(left.ea, right.ea))


def extend_with_contact(pair: PathPair, contact: Contact) -> "PathPair | None":
    """Concatenate a path summary with one more contact on the right.

    Returns None when the contact ends before the path can arrive
    (``EA > t_end``), i.e. when fact (iv) fails.  This is the inner loop of
    the optimal-path computation, hence the allocation-light form.
    """
    if pair.ea > contact.t_end:
        return None
    ld = pair.ld if pair.ld < contact.t_end else contact.t_end
    ea = pair.ea if pair.ea > contact.t_beg else contact.t_beg
    return PathPair(ld, ea)


def dominates(a: PathPair, b: PathPair) -> bool:
    """Whether ``a`` weakly dominates ``b``: departs no earlier, arrives no later.

    Paper Section 4.3 calls ``b`` *strictly dominated* when additionally one
    inequality is strict; for frontier maintenance weak dominance (which
    also discards exact duplicates) is the useful notion.
    """
    return a.ld >= b.ld and a.ea <= b.ea


def strictly_dominates(a: PathPair, b: PathPair) -> bool:
    """Paper Section 4.3's strict dominance between path summaries."""
    return dominates(a, b) and (a.ld > b.ld or a.ea < b.ea)
