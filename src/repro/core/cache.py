"""Content-addressed cache of computed path profiles.

Every CLI or benchmark invocation used to recompute all-pairs profiles
from scratch even though :mod:`repro.core.storage` can persist them.
This module closes the loop: :func:`load_or_compute` is a drop-in
replacement for :func:`repro.core.optimal.compute_profiles` that keys a
profiles file on the *content* of the computation —

    (trace digest, hop bounds, slack, max_rounds, sources, file format)

— so a cache entry can only ever be reused for the identical question.
A hit costs one ``.npz`` read; a miss computes, then writes atomically
(temp file + ``os.replace``) so concurrent runs never observe a torn
entry.  Corrupt or stale entries are recomputed and overwritten, never
trusted: :func:`repro.core.storage.load_profiles` re-verifies the
embedded trace digest on every load.

Cache traffic is observable: counters ``profiles.cache.hit`` /
``.miss`` / ``.invalid`` / ``.evict`` and the ``cache.load_or_compute``
span land in the active :mod:`repro.obs` bundle.

Bounded mode: pass ``max_bytes`` to cap the directory's total size.
Hits refresh an entry's mtime, so eviction (oldest mtime first) is LRU.
Eviction uses ``unlink`` only — on POSIX an entry that another process
is concurrently reading stays readable through its open file descriptor
until the read completes, so eviction can never tear an in-progress
load.  The default (``max_bytes=None``) keeps the historical unbounded
behaviour.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Collection, Iterable, Optional, Union

from ..obs import get_obs
from .contact import Node
from .optimal import DEFAULT_HOP_BOUNDS, PathProfileSet, compute_profiles
from .storage import (
    _FORMAT_VERSION,
    _encode_node,
    load_profiles,
    save_profiles,
    trace_digest,
)
from .temporal_network import TemporalNetwork

PathLike = Union[str, Path]

__all__ = ["load_or_compute", "profile_cache_key", "cache_path", "evict_lru"]


def profile_cache_key(
    network: TemporalNetwork,
    hop_bounds: Iterable[int] = DEFAULT_HOP_BOUNDS,
    sources: Optional[Iterable[Node]] = None,
    max_rounds: Optional[int] = None,
    slack: float = 0.0,
) -> str:
    """The content key of one ``compute_profiles`` invocation.

    Two invocations share a key iff they are guaranteed to produce the
    same :class:`PathProfileSet`; ``workers`` is deliberately excluded
    (it changes scheduling, not results).
    """
    document = {
        "format": _FORMAT_VERSION,
        "trace": trace_digest(network),
        "contacts": network.num_contacts,
        "hop_bounds": sorted(set(int(k) for k in hop_bounds)),
        "sources": (
            None
            if sources is None
            else sorted(_encode_node(s) for s in sources)
        ),
        "max_rounds": max_rounds,
        "slack": float(slack).hex(),
    }
    payload = json.dumps(document, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def cache_path(cache_dir: PathLike, key: str) -> Path:
    """The file a cache key maps to inside ``cache_dir``."""
    return Path(cache_dir) / f"profiles-{key[:32]}.npz"


#: serialises the scan-then-unlink of in-process eviction passes.  Two
#: threads racing the same budget would each see the pre-eviction total
#: and together evict twice what the budget requires (and double-count
#: the evict metric).  Cross-*process* races remain benign by design —
#: vanished entries are skipped — but same-process threads can be exact.
_EVICT_LOCK = threading.Lock()


def evict_lru(
    directory: PathLike,
    pattern: str,
    max_bytes: int,
    keep: Collection[PathLike] = (),
    counter: str = "profiles.cache.evict",
) -> int:
    """Unlink oldest-mtime files matching ``pattern`` until the total is
    at most ``max_bytes``; returns the number of evictions.

    ``keep`` paths are never evicted (typically the entry just written
    or served).  Entries that vanish mid-scan — another process racing
    the same budget — are skipped, not errors.  Unlinking is safe
    against concurrent readers on POSIX: an open descriptor keeps the
    data alive until closed.  Each eviction increments ``counter`` on
    the active :mod:`repro.obs` bundle.
    """
    root = Path(directory)
    protected = {Path(p).resolve() for p in keep}
    with _EVICT_LOCK:
        entries = []
        total = 0
        for path in root.glob(pattern):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, stat.st_size, path))
            total += stat.st_size
        if total <= max_bytes:
            return 0
        evicted = 0
        evictions = get_obs().metrics.counter(counter)
        for _, size, path in sorted(entries):
            if total <= max_bytes:
                break
            if path.resolve() in protected:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
    evictions.inc(evicted)
    return evicted


def load_or_compute(
    network: TemporalNetwork,
    cache_dir: PathLike,
    hop_bounds: Iterable[int] = DEFAULT_HOP_BOUNDS,
    sources: Optional[Iterable[Node]] = None,
    max_rounds: Optional[int] = None,
    slack: float = 0.0,
    workers: int = 1,
    max_bytes: Optional[int] = None,
    engine: str = "auto",
) -> PathProfileSet:
    """``compute_profiles`` with a content-addressed disk cache.

    Args match :func:`repro.core.optimal.compute_profiles` plus
    ``cache_dir``, the cache root (created on demand), and ``max_bytes``,
    the LRU size budget for the directory (None = unbounded).
    ``sources`` and ``hop_bounds`` are materialised up front so they may
    be generators.  ``engine`` is deliberately *not* part of the cache
    key: every engine produces identical profiles (the vec/scalar parity
    contract), so cached artefacts are engine-independent.
    """
    hop_bounds = tuple(hop_bounds)
    sources = None if sources is None else list(sources)
    key = profile_cache_key(
        network,
        hop_bounds=hop_bounds,
        sources=sources,
        max_rounds=max_rounds,
        slack=slack,
    )
    path = cache_path(cache_dir, key)
    obs = get_obs()
    with obs.span(
        "cache.load_or_compute", key=key[:16], path=str(path)
    ) as span:
        if path.exists():
            try:
                profiles = load_profiles(path, network)
            except (ValueError, KeyError, OSError) as exc:
                # A torn write, a hash collision on the truncated file
                # name, or a format bump: recompute and overwrite.
                obs.metrics.counter("profiles.cache.invalid").inc()
                if obs.enabled:
                    span.set(outcome="invalid", error=repr(exc))
            else:
                obs.metrics.counter("profiles.cache.hit").inc()
                if obs.enabled:
                    span.set(outcome="hit")
                # Refresh recency so a bounded cache evicts LRU-first.
                try:
                    os.utime(path)
                except OSError:
                    pass
                return profiles
        else:
            if obs.enabled:
                span.set(outcome="miss")
        obs.metrics.counter("profiles.cache.miss").inc()
        profiles = compute_profiles(
            network,
            hop_bounds=hop_bounds,
            sources=sources,
            max_rounds=max_rounds,
            slack=slack,
            workers=workers,
            engine=engine,
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        # The temp name must keep the .npz suffix: np.savez appends one
        # to any other extension, breaking the final os.replace.
        tmp = path.with_name(f"tmp-{os.getpid()}-{path.name}")
        try:
            save_profiles(profiles, tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        if max_bytes is not None:
            evict_lru(path.parent, "profiles-*.npz", max_bytes, keep=(path,))
    return profiles
