"""Content-addressed cache of computed path profiles.

Every CLI or benchmark invocation used to recompute all-pairs profiles
from scratch even though :mod:`repro.core.storage` can persist them.
This module closes the loop: :func:`load_or_compute` is a drop-in
replacement for :func:`repro.core.optimal.compute_profiles` that keys a
profiles file on the *content* of the computation —

    (trace digest, hop bounds, slack, max_rounds, sources, file format)

— so a cache entry can only ever be reused for the identical question.
A hit costs one ``.npz`` read; a miss computes, then writes atomically
(temp file + ``os.replace``) so concurrent runs never observe a torn
entry.  Corrupt or stale entries are recomputed and overwritten, never
trusted: :func:`repro.core.storage.load_profiles` re-verifies the
embedded trace digest on every load.

Cache traffic is observable: counters ``profiles.cache.hit`` /
``.miss`` / ``.invalid`` and the ``cache.load_or_compute`` span land in
the active :mod:`repro.obs` bundle.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Optional, Union

from ..obs import get_obs
from .contact import Node
from .optimal import DEFAULT_HOP_BOUNDS, PathProfileSet, compute_profiles
from .storage import (
    _FORMAT_VERSION,
    _encode_node,
    load_profiles,
    save_profiles,
    trace_digest,
)
from .temporal_network import TemporalNetwork

PathLike = Union[str, Path]

__all__ = ["load_or_compute", "profile_cache_key", "cache_path"]


def profile_cache_key(
    network: TemporalNetwork,
    hop_bounds: Iterable[int] = DEFAULT_HOP_BOUNDS,
    sources: Optional[Iterable[Node]] = None,
    max_rounds: Optional[int] = None,
    slack: float = 0.0,
) -> str:
    """The content key of one ``compute_profiles`` invocation.

    Two invocations share a key iff they are guaranteed to produce the
    same :class:`PathProfileSet`; ``workers`` is deliberately excluded
    (it changes scheduling, not results).
    """
    document = {
        "format": _FORMAT_VERSION,
        "trace": trace_digest(network),
        "contacts": network.num_contacts,
        "hop_bounds": sorted(set(int(k) for k in hop_bounds)),
        "sources": (
            None
            if sources is None
            else sorted(_encode_node(s) for s in sources)
        ),
        "max_rounds": max_rounds,
        "slack": float(slack).hex(),
    }
    payload = json.dumps(document, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def cache_path(cache_dir: PathLike, key: str) -> Path:
    """The file a cache key maps to inside ``cache_dir``."""
    return Path(cache_dir) / f"profiles-{key[:32]}.npz"


def load_or_compute(
    network: TemporalNetwork,
    cache_dir: PathLike,
    hop_bounds: Iterable[int] = DEFAULT_HOP_BOUNDS,
    sources: Optional[Iterable[Node]] = None,
    max_rounds: Optional[int] = None,
    slack: float = 0.0,
    workers: int = 1,
) -> PathProfileSet:
    """``compute_profiles`` with a content-addressed disk cache.

    Args match :func:`repro.core.optimal.compute_profiles` plus
    ``cache_dir``, the cache root (created on demand).  ``sources`` and
    ``hop_bounds`` are materialised up front so they may be generators.
    """
    hop_bounds = tuple(hop_bounds)
    sources = None if sources is None else list(sources)
    key = profile_cache_key(
        network,
        hop_bounds=hop_bounds,
        sources=sources,
        max_rounds=max_rounds,
        slack=slack,
    )
    path = cache_path(cache_dir, key)
    obs = get_obs()
    with obs.span(
        "cache.load_or_compute", key=key[:16], path=str(path)
    ) as span:
        if path.exists():
            try:
                profiles = load_profiles(path, network)
            except (ValueError, KeyError, OSError) as exc:
                # A torn write, a hash collision on the truncated file
                # name, or a format bump: recompute and overwrite.
                obs.metrics.counter("profiles.cache.invalid").inc()
                if obs.enabled:
                    span.set(outcome="invalid", error=repr(exc))
            else:
                obs.metrics.counter("profiles.cache.hit").inc()
                if obs.enabled:
                    span.set(outcome="hit")
                return profiles
        else:
            if obs.enabled:
                span.set(outcome="miss")
        obs.metrics.counter("profiles.cache.miss").inc()
        profiles = compute_profiles(
            network,
            hop_bounds=hop_bounds,
            sources=sources,
            max_rounds=max_rounds,
            slack=slack,
            workers=workers,
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        # The temp name must keep the .npz suffix: np.savez appends one
        # to any other extension, breaking the final os.replace.
        tmp = path.with_name(f"tmp-{os.getpid()}-{path.name}")
        try:
            save_profiles(profiles, tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
    return profiles
