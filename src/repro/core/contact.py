"""Contact records: the atomic events of an opportunistic mobile network.

A *contact* is a time interval during which two devices can exchange data
(paper, Section 4.2: "An edge from device u to device v, with label
[t_beg; t_end], represents a contact, where u sees v during this time
interval").  Contacts are the only input the rest of the library needs: a
temporal network is a multiset of contacts over a node set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

Node = Hashable


@dataclass(frozen=True)
class Contact:
    """A contact between two devices over a closed time interval.

    Ordering is lexicographic on ``(t_beg, t_end, repr(u), repr(v))`` so
    that sorting a contact list yields chronological order of contact
    starts (the order trace files conventionally use) and stays total
    even when integer and string device ids are mixed, as in traces with
    external Bluetooth devices.

    Attributes:
        t_beg: time the contact starts (seconds, or abstract time units).
        t_end: time the contact ends; must satisfy ``t_end >= t_beg``.
        u: the device that records the sighting.
        v: the device being seen.
    """

    t_beg: float
    t_end: float
    u: Node
    v: Node

    def __post_init__(self) -> None:
        if not (math.isfinite(self.t_beg) and math.isfinite(self.t_end)):
            raise ValueError("contact endpoints must be finite")
        if self.t_end < self.t_beg:
            raise ValueError(
                f"contact ends before it begins: [{self.t_beg}; {self.t_end}]"
            )
        if self.u == self.v:
            raise ValueError(f"self-contact on node {self.u!r}")

    def _sort_key(self) -> "tuple[float, float, str, str]":
        return (self.t_beg, self.t_end, repr(self.u), repr(self.v))

    def __lt__(self, other: "Contact") -> bool:
        if not isinstance(other, Contact):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "Contact") -> bool:
        if not isinstance(other, Contact):
            return NotImplemented
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "Contact") -> bool:
        if not isinstance(other, Contact):
            return NotImplemented
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "Contact") -> bool:
        if not isinstance(other, Contact):
            return NotImplemented
        return self._sort_key() >= other._sort_key()

    @property
    def duration(self) -> float:
        """Length of the contact interval."""
        return self.t_end - self.t_beg

    @property
    def nodes(self) -> "tuple[Node, Node]":
        """The two endpoints, in recorded order."""
        return (self.u, self.v)

    def reversed(self) -> "Contact":
        """The same interval seen from the other endpoint."""
        return Contact(self.t_beg, self.t_end, self.v, self.u)

    def overlaps(self, other: "Contact") -> bool:
        """Whether the two contact intervals intersect in time."""
        return self.t_beg <= other.t_end and other.t_beg <= self.t_end

    def active_at(self, t: float) -> bool:
        """Whether the contact is in progress at instant ``t``.

        Contact intervals are closed: a contact is usable at both its
        begin and end instants (paper Section 4.2 labels edges with
        ``[t_beg; t_end]``).
        """
        return self.t_beg <= t <= self.t_end

    def within(self, t_min: float, t_max: float) -> bool:
        """Whether the whole contact lies inside the closed ``[t_min; t_max]``.

        Windowing keeps a contact only when *all* of it is observable —
        a contact straddling the window edge would report a truncated
        duration (use :meth:`clipped` to truncate instead of drop).
        """
        return self.t_beg >= t_min and self.t_end <= t_max

    def within_window(self, t0: float, t1: float) -> bool:
        """Whether the whole contact lies inside the half-open ``[t0, t1)``.

        Observation windows across the codebase are half-open (see
        ``TemporalNetwork.contacts_beginning_in``: ``t0 == t1`` is
        empty), while contact intervals themselves are closed.  A
        contact touching ``t1`` therefore extends to an instant the
        window does not observe and is excluded; the closed containment
        test :meth:`within` is for interval-vs-interval questions, not
        windowing.
        """
        return self.t_beg >= t0 and self.t_end < t1

    def shifted(self, offset: float) -> "Contact":
        """A copy translated in time by ``offset``."""
        return Contact(self.t_beg + offset, self.t_end + offset, self.u, self.v)

    def clipped(self, t_min: float, t_max: float) -> "Contact | None":
        """The contact restricted to ``[t_min; t_max]``, or None if disjoint."""
        beg = max(self.t_beg, t_min)
        end = min(self.t_end, t_max)
        if end < beg:
            return None
        return Contact(beg, end, self.u, self.v)


def merge_intervals(contacts: "list[Contact]") -> "list[Contact]":
    """Merge overlapping or touching contacts of the *same* ordered pair.

    Scanning hardware frequently reports one physical encounter as several
    abutting intervals; analysis of contact durations (paper Figure 7) wants
    them merged.  Input may be unsorted; output is sorted by start time.

    Raises ValueError if the contacts do not all share the same (u, v).
    """
    if not contacts:
        return []
    pair = (contacts[0].u, contacts[0].v)
    if any((c.u, c.v) != pair for c in contacts):
        raise ValueError("merge_intervals requires contacts of a single pair")
    merged: list[Contact] = []
    for contact in sorted(contacts):
        if merged and contact.t_beg <= merged[-1].t_end:
            last = merged[-1]
            if contact.t_end > last.t_end:
                merged[-1] = Contact(last.t_beg, contact.t_end, last.u, last.v)
        else:
            merged.append(contact)
    return merged
