"""Pinned float equality: the one sanctioned home of ``==`` on floats.

Exact IEEE-754 equality between floats is a bug when either side went
through arithmetic, and entirely sound when both sides are *pinned* —
copied, parsed or defaulted, never computed.  The delay pipeline relies
on pinned comparisons in a few places (a user-supplied quantile level of
exactly ``0.0``, a probability knob left at its default), and reprolint's
REP002 bans float-literal equality everywhere in ``core/`` and
``analysis/`` *except* through these helpers, which make the intent
auditable at the call site.

If a value may have been computed, do not reach for this module — compare
with an explicit tolerance instead (``math.isclose`` or a domain bound).
"""

from __future__ import annotations


def pinned_equal(value: float, pin: float) -> bool:
    """Exact equality against a pinned (never-computed) reference value."""
    return value == pin


def is_pinned_zero(value: float) -> bool:
    """Exact test for the ``0.0`` sentinel (covers ``-0.0`` as well)."""
    return value == 0.0


def is_pinned_one(value: float) -> bool:
    """Exact test for the ``1.0`` sentinel."""
    return value == 1.0
