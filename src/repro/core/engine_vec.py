"""Vectorized frontier engine over the flat CSR arrays.

This is :func:`repro.core.optimal._run_single_source` with the round
loop rewritten as batched numpy kernels — and batched across *sources*
as well as candidates.  The per-source DPs are independent, so a whole
chunk of sources runs in lockstep: round k of every source is generated
by the same handful of ``searchsorted`` / ``repeat`` calls and merged
by one sort + segmented-cummin pass.  The fixed per-round kernel cost
is then paid ``max_k rounds`` times instead of ``sum_k rounds`` times,
which is where the bulk of the speedup over the scalar loop comes from.

Why the output is *identical* (not just equivalent) to the scalar DP at
``slack == 0``: the scalar loop's frontier after round k is
``F_k = Pareto(F_{k-1} ∪ C_k)`` where ``C_k`` is the round's candidate
set — insertion *order* cannot matter because a point dominated at any
moment stays dominated (insertions only shrink the admissible region),
and a surviving point survives every interleaving.  The scalar loop's
delta queue for round k+1 is exactly ``F_k \\ F_{k-1}`` (a transient
insertion that is displaced within its round never survives the next
round's up-front filter), the round counter advances iff that set is
non-empty, and a destination lands in the ``changed`` snapshot set iff
it gained a surviving point.  All three are order-free set equations,
which is what this module computes directly.  The scalar loop's *local*
suffix-min prune only skips candidates weakly dominated by another
candidate of the same batch — the global merge drops them identically.
Batching sources changes nothing: each source's points live in a
disjoint virtual-destination range, so the merged rounds never interact.

With ``slack > 0`` acceptance depends on the frontier state at insert
time, i.e. on insertion order; the vectorized engine therefore refuses
slack and the dispatcher (:func:`repro.core.optimal.compute_profiles`)
routes approximate runs to the scalar oracle.

Exactness discipline: the whole DP runs on int64 *ranks* into the CSR's
``time_table`` (every LD/EA any engine can produce is a verbatim
contact time, and min/max commute with the table's monotone order), so
floats are never combined arithmetically and every emitted value is a
float64 copied from the table — results round-trip ``tolist()``
bit-identically to the scalar engine's Python floats.

Key packing: a frontier point is one int64
``vdest << (1 + 2·rank_bits) | ld_rank << (1 + rank_bits) |
ea_rank << 1 | fresh`` where ``vdest = slot · N + dest`` interleaves
the source slot — a single ``np.sort`` then yields (source, dest, LD,
EA, fresh) order, per-destination segments are key ranges, and the
Pareto keep mask is one reversed ``minimum.accumulate``.  The whole
batch frontier lives in one flat sorted key array; each round splices
the re-merged touched destinations back in with a two-way merge.
Batches whose packed key would overflow 63 bits split recursively;
a single source that still overflows (≳2^31 distinct contact times ×
nodes) is refused, and the dispatcher's ``auto`` mode never selects
vec for such networks.

:class:`~repro.core.optimal.ProfileStats` divergence (observability
only, never part of the result): the scalar engine counts transient
insertions and same-round displacements, which are artefacts of its
processing order.  This engine reports order-free semantics instead —
``insertions_per_round[k-1]`` counts the *surviving* round-k points
(``|F_k \\ F_{k-1}|``) and ``displaced_per_round`` is all zeros.
``candidates_scanned`` / ``suffix_min_prunes`` are order-independent in
both engines and match exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_obs
from .contact import Node
from .csr import CSRNetwork
from .delivery import DeliveryFunction
from .floats import is_pinned_zero
from .optimal import ProfileStats, SourceProfiles

__all__ = [
    "run_single_source_vec",
    "run_sources_vec",
    "run_sources_raw",
    "profiles_from_raw",
]

_EMPTY_I = np.empty(0, dtype=np.int64)

#: soft cap on the virtual-destination space (slots × nodes) of one
#: lockstep batch; larger requests split recursively.  Bounds the two
#: O(slots × nodes) staircase-tail arrays to a few dozen MB.
_MAX_VIRTUAL = 1 << 22


def _ragged_arange(starts: np.ndarray, counts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` for all i.

    Returns ``(rep, idx)`` where ``idx`` is the concatenation and
    ``rep[j]`` is the i that produced ``idx[j]``.
    """
    rep = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    if rep.size == 0:
        return rep, _EMPTY_I
    stops = np.cumsum(counts)
    offsets = stops - counts
    idx = np.arange(int(stops[-1]), dtype=np.int64) - offsets[rep] + starts[rep]
    return rep, idx


def _sorted_unique(sorted_arr: np.ndarray) -> np.ndarray:
    """Unique values of an already-sorted array (no re-sort)."""
    if sorted_arr.size == 0:
        return sorted_arr
    sel = np.empty(sorted_arr.size, dtype=bool)
    sel[0] = True
    np.not_equal(sorted_arr[1:], sorted_arr[:-1], out=sel[1:])
    return sorted_arr[sel]


#: compact per-source result: rank arrays plus bookkeeping, cheap to
#: pickle (a handful of numpy buffers instead of thousands of Python
#: floats) — the pool's wire format.  Keys: ``source`` (physical id),
#: ``rounds``, ``stats``, ``final`` and ``snaps[bound]`` both as
#: ``(dests, counts, ld_ranks, ea_ranks)`` with dests in id order.
RawProfile = Dict[str, Any]

_POINTS = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def run_single_source_vec(
    csr: CSRNetwork,
    source: Node,
    hop_bounds: Tuple[int, ...],
    max_rounds: Optional[int],
    slack: float,
    collect_stats: bool = False,
) -> SourceProfiles:
    """Per-source DP on the CSR arrays; a lockstep batch of one."""
    return run_sources_vec(
        csr,
        [csr.node_index[source]],
        hop_bounds,
        max_rounds,
        slack,
        collect_stats,
    )[0]


def run_sources_vec(
    csr: CSRNetwork,
    source_ids: Sequence[int],
    hop_bounds: Tuple[int, ...],
    max_rounds: Optional[int],
    slack: float,
    collect_stats: bool = False,
) -> List[SourceProfiles]:
    """Run the frontier DP for a batch of sources in lockstep.

    Returns one :class:`SourceProfiles` per entry of ``source_ids`` (in
    order), each exactly equal to the scalar engine's output for that
    source (``slack == 0`` only).
    """
    return profiles_from_raw(
        csr,
        run_sources_raw(
            csr, source_ids, hop_bounds, max_rounds, slack, collect_stats
        ),
        hop_bounds,
    )


def profiles_from_raw(
    csr: CSRNetwork,
    raws: List[RawProfile],
    hop_bounds: Tuple[int, ...],
) -> List[SourceProfiles]:
    """Materialise :class:`SourceProfiles` from compact rank payloads.

    This is the only place the vectorized pipeline touches Python
    floats: every LD/EA is a float64 copied verbatim from the CSR's
    ``time_table``, bit-identical to the scalar engine's values.  In
    the worker pool the supervisor calls this on payloads shipped back
    from workers; in-process it runs right after the DP.
    """
    nodes = csr.nodes
    time_table = csr.time_table

    def functions(points: _POINTS) -> Dict[Node, DeliveryFunction]:
        dests, counts, ld_ranks, ea_ranks = points
        lds = time_table[ld_ranks].tolist()
        eas = time_table[ea_ranks].tolist()
        out: Dict[Node, DeliveryFunction] = {}
        pos = 0
        # Direct-slot construction (list slices are fresh lists the
        # function can own) — ``_function_from_lists`` would copy each
        # pair of lists a second time, and with tens of thousands of
        # destinations per batch that copy shows up in profiles.
        new = DeliveryFunction.__new__
        for dest, count in zip(dests.tolist(), counts.tolist()):
            stop = pos + count
            func = new(DeliveryFunction)
            func.lds = lds[pos:stop]
            func.eas = eas[pos:stop]
            out[nodes[dest]] = func
            pos = stop
        return out

    profiles: List[SourceProfiles] = []
    for raw in raws:
        snapshots: Dict[int, Dict[Node, DeliveryFunction]] = {
            bound: {} for bound in hop_bounds
        }
        for bound, points in raw["snaps"].items():
            snapshots[bound] = functions(points)
        profiles.append(
            SourceProfiles(
                nodes[raw["source"]],
                hop_bounds,
                snapshots,
                functions(raw["final"]),
                raw["rounds"],
                raw["stats"],
            )
        )
    return profiles


def run_sources_raw(
    csr: CSRNetwork,
    source_ids: Sequence[int],
    hop_bounds: Tuple[int, ...],
    max_rounds: Optional[int],
    slack: float,
    collect_stats: bool = False,
) -> List[RawProfile]:
    """The lockstep batch DP, returning compact rank payloads (see
    :data:`RawProfile`); :func:`profiles_from_raw` materialises them."""
    if not is_pinned_zero(slack):
        raise ValueError(
            "the vectorized engine is exact-only (slack pruning is "
            "insertion-order dependent); use engine='scalar' with slack"
        )
    num_sources = len(source_ids)
    if num_sources == 0:
        return []
    num_nodes = max(1, len(csr.nodes))
    bits = csr.rank_bits
    if 1 + 2 * bits + max(0, num_nodes - 1).bit_length() > 63:
        raise ValueError(
            "network too large for packed rank keys; use engine='scalar'"
        )
    # Split batches whose virtual-destination space would overflow the
    # 63-bit key or the tail-array cap.
    while num_sources > 1 and (
        1 + 2 * bits + (num_sources * num_nodes - 1).bit_length() > 63
        or num_sources * num_nodes > _MAX_VIRTUAL
    ):
        half = num_sources // 2
        return run_sources_raw(
            csr, source_ids[:half], hop_bounds, max_rounds, slack, collect_stats
        ) + run_sources_raw(
            csr, source_ids[half:], hop_bounds, max_rounds, slack, collect_stats
        )

    edge_offsets = csr.edge_offsets
    contact_offsets = csr.contact_offsets
    edge_dst = csr.edge_dst
    ends_rank = csr.ends_rank
    begs_rank = csr.begs_rank
    sufmin_rank = csr.sufmin_rank
    t2e = csr.table_to_end_rank
    last_end_rank = csr.edge_last_end_rank
    end_keys = csr.end_keys
    num_uniq = np.int64(csr.uniq_ends.size + 1)
    stair_pos = csr.stair_pos
    stair_sufnext = csr.stair_sufnext
    pos_to_stair = csr.pos_to_stair
    first_lut = csr.first_end_lut

    num_virtual = num_sources * num_nodes
    shift_ea = np.int64(1)
    shift_ld = np.int64(1 + bits)
    shift_dest = np.int64(1 + 2 * bits)
    mask_rank = np.int64((1 << bits) - 1)

    src_phys = np.asarray(source_ids, dtype=np.int64)
    batch_hist = get_obs().metrics.histogram("engine.vec.batch_size")

    #: the entire batch frontier as one sorted array of packed keys
    #: (fresh bit clear); virtual destination v's points occupy the key
    #: range [v << shift_dest, (v + 1) << shift_dest).
    f_keys = _EMPTY_I

    snapshot_rounds = sorted(hop_bounds)
    snap_raw: List[Dict[int, _POINTS]] = [{} for _ in range(num_sources)]
    snap_idx = [0] * num_sources
    #: virtual destinations that gained a surviving point since their
    #: slot's last snapshot (idempotent boolean scatter, never a python
    #: set — per-point bookkeeping would dominate the batched kernels).
    changed_mask = np.zeros(num_virtual, dtype=bool)
    rounds_run = np.ones(num_sources, dtype=np.int64)
    stats: Optional[List[ProfileStats]] = (
        [ProfileStats() for _ in range(num_sources)] if collect_stats else None
    )
    stat_scanned = np.zeros(num_sources, dtype=np.int64)
    stat_pruned = np.zeros(num_sources, dtype=np.int64)

    def merge_round(
        cand_dest: np.ndarray, cand_ld: np.ndarray, cand_ea: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fold one round's candidates into the frontier; returns the
        surviving *new* points (vdest, ld_rank, ea_rank) in (vdest, LD)
        order — exactly ``F_k \\ F_{k-1}`` of every source at once."""
        nonlocal f_keys
        if cand_dest.size == 0:
            return _EMPTY_I, _EMPTY_I, _EMPTY_I
        cand_keys = (
            (cand_dest << shift_dest)
            | (cand_ld << shift_ld)
            | (cand_ea << shift_ea)
            | np.int64(1)
        )
        touch_mask = np.zeros(num_virtual, dtype=bool)
        touch_mask[cand_dest] = True
        touched = np.flatnonzero(touch_mask)
        # Touched destinations' current points, by key-range slicing.
        lows = np.searchsorted(f_keys, touched << shift_dest)
        highs = np.searchsorted(f_keys, (touched + 1) << shift_dest)
        _, old_idx = _ragged_arange(lows, highs - lows)
        allk = np.sort(np.concatenate((cand_keys, f_keys[old_idx])))
        n = allk.size
        # (vdest, LD) group boundaries and the EA suffix-min; composite
        # (vdest << bits | rank) keys are strictly larger for later
        # destinations, so one global cummin respects the segments.
        group_key = allk >> shift_ld
        ea_key = ((allk >> shift_dest) << np.int64(bits)) | (
            (allk >> shift_ea) & mask_rank
        )
        # Padded suffix-min of the (vdest, EA) composite: a point is
        # kept iff its composite beats the minimum over the strictly-
        # larger-LD suffix of its destination (cross-dest composites are
        # strictly larger and the pad means "no such point", so both
        # fall out of one comparison with no segment bookkeeping).
        sufpad = np.empty(n + 1, dtype=np.int64)
        sufpad[n] = np.iinfo(np.int64).max
        np.minimum.accumulate(ea_key[::-1], out=sufpad[:n][::-1])
        first_of_group = np.empty(n, dtype=bool)
        first_of_group[0] = True
        np.not_equal(group_key[1:], group_key[:-1], out=first_of_group[1:])
        starts_idx = np.flatnonzero(first_of_group)
        group_stops = np.append(starts_idx[1:], n)
        # Only a group's first row (its min-EA point for that (vdest,
        # LD)) can survive, so the dominance test runs on the group
        # list, not all n rows: keep the group iff its EA beats the
        # suffix-min past the group's end.
        keep_idx = starts_idx[ea_key[starts_idx] < sufpad[group_stops]]
        kept = allk[keep_idx]
        # Splice the re-merged touched segments back into the frontier.
        untouched = np.ones(f_keys.size, dtype=bool)
        untouched[old_idx] = False
        remaining = f_keys[untouched]
        kept_clean = kept & ~np.int64(1)
        pos = np.searchsorted(remaining, kept_clean)
        merged = np.empty(remaining.size + kept_clean.size, dtype=np.int64)
        at = pos + np.arange(kept_clean.size, dtype=np.int64)
        fill = np.ones(merged.size, dtype=bool)
        fill[at] = False
        merged[at] = kept_clean
        merged[fill] = remaining
        f_keys = merged
        # Where an old point and a fresh candidate coincide exactly the
        # old one sorts first (fresh is the low bit) and is kept —
        # matching the scalar insert, which rejects an equal candidate
        # — so surviving fresh rows are genuinely *new* points.
        new_keys = kept[(kept & np.int64(1)) == 1]
        new_d = new_keys >> shift_dest
        changed_mask[new_d] = True
        return (
            new_d,
            (new_keys >> shift_ld) & mask_rank,
            (new_keys >> shift_ea) & mask_rank,
        )

    def gather_points(
        ids_arr: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-destination point counts and the rank columns of the
        given virtual destinations' frontier segments, aligned to
        ``ids_arr`` — pure gathers, no Python objects."""
        lows = np.searchsorted(f_keys, ids_arr << shift_dest)
        highs = np.searchsorted(f_keys, (ids_arr + 1) << shift_dest)
        _, idx = _ragged_arange(lows, highs - lows)
        seg = f_keys[idx]
        return (
            highs - lows,
            (seg >> shift_ld) & mask_rank,
            (seg >> shift_ea) & mask_rank,
        )

    def take_snapshots(slots: List[int]) -> None:
        """Record rank-space copies for every given slot's due hop
        bounds in one batched gather.  Destinations go in id (=
        per-source repr) order — matching the scalar engine's
        canonicalised snapshot order, so persisted output is
        engine-independent."""
        due: List[Tuple[int, int, np.ndarray]] = []
        for slot in slots:
            after_round = int(rounds_run[slot])
            idx = snap_idx[slot]
            while idx < len(snapshot_rounds) and snapshot_rounds[idx] <= after_round:
                bound = snapshot_rounds[idx]
                if bound == after_round:
                    base = slot * num_nodes
                    vids = np.flatnonzero(changed_mask[base : base + num_nodes])
                    vids += base
                    changed_mask[base : base + num_nodes] = False
                    due.append((slot, bound, vids))
                idx += 1
            snap_idx[slot] = idx
        if not due:
            return
        counts, ld_ranks, ea_ranks = gather_points(
            np.concatenate([d[2] for d in due])
        )
        dpos = ppos = 0
        for slot, bound, vids in due:
            dstop = dpos + vids.size
            cslice = counts[dpos:dstop]
            pstop = ppos + int(cslice.sum())
            snap_raw[slot][bound] = (
                vids - slot * num_nodes,
                cslice,
                ld_ranks[ppos:pstop],
                ea_ranks[ppos:pstop],
            )
            dpos, ppos = dstop, pstop

    # ------------------------------------------------------------------
    # Round 1: every contact on each source's own edges is a candidate.
    # Contacts of one node's edges are contiguous in the flat arrays.
    # ------------------------------------------------------------------
    e_starts = edge_offsets[src_phys]
    e_counts = edge_offsets[src_phys + 1] - e_starts
    slot_of_edge, edges0 = _ragged_arange(e_starts, e_counts)
    c_starts = contact_offsets[edges0]
    c_counts = contact_offsets[edges0 + 1] - c_starts
    edge_row, j0 = _ragged_arange(c_starts, c_counts)
    if collect_stats:
        stat_scanned += np.bincount(
            slot_of_edge, weights=c_counts, minlength=num_sources
        ).astype(np.int64)
    if j0.size:
        cand_dest = (
            slot_of_edge[edge_row] * np.int64(num_nodes)
            + edge_dst[edges0[edge_row]]
        )
        ext_node, ext_ld, ext_ea = merge_round(
            cand_dest, ends_rank[j0], begs_rank[j0]
        )
    else:
        ext_node, ext_ld, ext_ea = _EMPTY_I, _EMPTY_I, _EMPTY_I

    if stats is not None:
        round1 = np.bincount(
            ext_node // num_nodes, minlength=num_sources
        ).astype(np.int64)
        for slot in range(num_sources):
            stats[slot].insertions_per_round.append(int(round1[slot]))

    take_snapshots(list(range(num_sources)))

    limit = np.int64(max_rounds) if max_rounds is not None else None
    while ext_node.size:
        ext_block = ext_node // num_nodes
        if limit is not None:
            # Per-source round cap: drop rows of sources at the limit
            # (their DP is over; identical to the scalar while-guard).
            under = rounds_run[ext_block] < limit
            if not under.all():
                ext_node = ext_node[under]
                if ext_node.size == 0:
                    break
                ext_ld = ext_ld[under]
                ext_ea = ext_ea[under]
                ext_block = ext_block[under]
        if stats is not None:
            # No transient insertions exist in the batched engine, so no
            # queue entry can be displaced before its extension turn.
            for slot in _sorted_unique(ext_block).tolist():
                stats[slot].displaced_per_round.append(0)
        # --- expansion: every (entry, edge) pair of the delta set -----
        phys = ext_node - ext_block * np.int64(num_nodes)
        starts = edge_offsets[phys]
        entry_of, edges = _ragged_arange(starts, edge_offsets[phys + 1] - starts)
        blk = ext_block[entry_of]
        ok = edge_dst[edges] != src_phys[blk]
        ea_x = ext_ea[entry_of]
        ok &= ea_x <= last_end_rank[edges]
        edges = edges[ok]
        entry_of = entry_of[ok]
        ea_x = ea_x[ok]
        blk = blk[ok]
        ld_x = ext_ld[entry_of]
        dest_x = blk * np.int64(num_nodes) + edge_dst[edges]
        # --- per-pair contact window [EA, LD): two gathers against the
        # precomputed first-contact table (or the searchsorted fallback
        # on traces too large for the dense table).
        edge_base = edges * num_uniq
        if first_lut is not None:
            first = first_lut[edge_base + t2e[ea_x]]
            covered = first_lut[edge_base + t2e[ld_x]]
        else:
            first = np.searchsorted(end_keys, edge_base + t2e[ea_x])
            covered = np.searchsorted(end_keys, edge_base + t2e[ld_x])
        # A point can have EA > LD (arrive after the last departure),
        # making the window empty with ``first`` past ``covered``.
        covered = np.maximum(covered, first)
        contact_stop = contact_offsets[edges + 1]
        if collect_stats:
            scan_tail = covered < contact_stop
            stat_scanned += np.bincount(
                blk, weights=covered - first, minlength=num_sources
            ).astype(np.int64)
            stat_scanned += np.bincount(
                blk[scan_tail], minlength=num_sources
            ).astype(np.int64)
            stat_pruned += np.bincount(
                blk[scan_tail],
                weights=contact_stop[scan_tail] - covered[scan_tail] - 1,
                minlength=num_sources,
            ).astype(np.int64)
        # --- covered-run collapse: one candidate per surviving run ----
        has_tail = covered < contact_stop
        tail_covered = covered[has_tail]
        cand_a_dest = dest_x[has_tail]
        cand_a_ld = ld_x[has_tail]
        cand_a_ea = np.maximum(ea_x[has_tail], sufmin_rank[tail_covered])
        # --- contacts ending inside [EA, LD): one candidate each, but
        # only staircase contacts whose min-later-beg exceeds the
        # pair's EA — every other window contact is weakly dominated by
        # a later candidate of the same pair (the scalar suffix-min
        # prune, precomputed), so it could never survive the merge.
        pair_of, sidx = _ragged_arange(
            pos_to_stair[first], pos_to_stair[covered] - pos_to_stair[first]
        )
        keep_b = stair_sufnext[sidx] > ea_x[pair_of]
        sidx = sidx[keep_b]
        pair_of = pair_of[keep_b]
        j = stair_pos[sidx]
        cand_b_dest = dest_x[pair_of]
        cand_b_ld = ends_rank[j]
        cand_b_ea = np.maximum(begs_rank[j], ea_x[pair_of])
        total = cand_a_dest.size + cand_b_dest.size
        batch_hist.observe(total)
        if total == 0:
            break
        ext_node, ext_ld, ext_ea = merge_round(
            np.concatenate((cand_a_dest, cand_b_dest)),
            np.concatenate((cand_a_ld, cand_b_ld)),
            np.concatenate((cand_a_ea, cand_b_ea)),
        )
        if ext_node.size:
            # Sources with surviving new points advance a round (and
            # snapshot if due); the rest are at their fixpoint.
            adv = _sorted_unique(ext_node // num_nodes)
            rounds_run[adv] += 1
            if stats is not None:
                per_slot = np.bincount(
                    ext_node // num_nodes, minlength=num_sources
                )
                for slot in adv.tolist():
                    stats[slot].insertions_per_round.append(
                        int(per_slot[slot])
                    )
            take_snapshots(adv.tolist())

    out: List[RawProfile] = []
    uniq_vd = _sorted_unique(f_keys >> shift_dest)
    counts, ld_ranks, ea_ranks = gather_points(uniq_vd)
    blocks_of_vd = uniq_vd // num_nodes
    slot_lo = np.searchsorted(blocks_of_vd, np.arange(num_sources))
    slot_hi = np.searchsorted(blocks_of_vd, np.arange(num_sources) + 1)
    point_bounds = np.zeros(uniq_vd.size + 1, dtype=np.int64)
    np.cumsum(counts, out=point_bounds[1:])
    for slot in range(num_sources):
        lo, hi = int(slot_lo[slot]), int(slot_hi[slot])
        plo, phi = int(point_bounds[lo]), int(point_bounds[hi])
        final: _POINTS = (
            uniq_vd[lo:hi] - slot * num_nodes,
            counts[lo:hi],
            ld_ranks[plo:phi],
            ea_ranks[plo:phi],
        )
        slot_stats: Optional[ProfileStats] = None
        if stats is not None:
            slot_stats = stats[slot]
            slot_stats.rounds = int(rounds_run[slot])
            slot_stats.candidates_scanned = int(stat_scanned[slot])
            slot_stats.suffix_min_prunes = int(stat_pruned[slot])
            slot_stats.frontier_points = phi - plo
            slot_stats.destinations = hi - lo
        out.append(
            {
                "source": int(src_phys[slot]),
                "rounds": int(rounds_run[slot]),
                "stats": slot_stats,
                "final": final,
                "snaps": snap_raw[slot],
            }
        )
    return out
