"""Single-pass segment collection and a vectorized delay-CDF kernel.

The paper's empirical pipeline (Section 5.3.1, Figures 9-12) evaluates
per-hop-bound delay CDFs over all (source, destination) pairs and all
start times.  The straightforward implementation walks every pair once
*per hop bound* and then loops over the delay grid in Python — O(bounds
x pairs) snapshot walks plus O(|segments| x |grid|) arithmetic.  This
module replaces both loops:

* :func:`build_segment_table` makes ONE traversal over the per-source
  profiles, resolving every destination under *all* requested hop bounds
  at once (:meth:`SourceProfiles.bound_profiles`) and collecting the
  window-clipped ``(seg_beg, seg_end, arrival)`` pieces per bound.

* Each bound's pieces feed a numpy kernel.  A piece contributes
  ``max(0, seg_end - max(seg_beg, arrival - d))`` start-time measure at
  delay budget ``d`` — a ramp that starts at ``d0 = arrival - seg_end``,
  grows with slope 1, and saturates at ``d1 = arrival - seg_beg`` with
  value ``seg_end - seg_beg``.  Because the delay grid is ascending,
  every ramp start/end is binned into the grid with one ``searchsorted``
  call, and prefix sums of the per-bin counts and weights answer every
  budget at once:

      total(d) = sum_{d1 <= d} len  +  |active| * d - sum_{active} d0,

  i.e. O(S log G + G) for S segments and G grid points instead of
  O(S x G).

The legacy per-budget loop survives as
:func:`repro.core.delay_cdf.delay_cdf_reference` and anchors the
equivalence tests in ``tests/core/test_engine.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_obs
from .contact import Node
from .optimal import PathProfileSet

__all__ = ["SegmentTable", "build_segment_table"]

BoundKey = Optional[int]


class _BoundKernel:
    """Ramp-decomposition evaluation structure for one bound's segments."""

    __slots__ = ("num_segments", "finite_measure", "_lengths", "_lo", "_hi")

    def __init__(self, beg: np.ndarray, end: np.ndarray, arrival: np.ndarray) -> None:
        self._lengths = end - beg
        self._lo = arrival - end
        self._hi = arrival - beg
        self.num_segments = int(len(beg))
        self.finite_measure = float(self._lengths.sum())

    def measure(self, grid: np.ndarray) -> np.ndarray:
        """Total start-time measure with delay <= budget, per grid budget.

        ``grid`` must be ascending.  Each ramp boundary is binned into the
        grid (``searchsorted``); cumulative per-bin counts/weights then
        give, at every budget, the saturated length, the number of active
        ramps and the sum of their start offsets.
        """
        if self.num_segments == 0:
            return np.zeros(len(grid), dtype=float)
        bins = len(grid) + 1
        lo_bin = np.searchsorted(grid, self._lo, side="left")
        hi_bin = np.searchsorted(grid, self._hi, side="left")

        def cum(idx: np.ndarray, weights: Optional[np.ndarray]) -> np.ndarray:
            return np.cumsum(np.bincount(idx, weights, minlength=bins)[:-1])

        started = cum(lo_bin, None)
        finished = cum(hi_bin, None)
        saturated = cum(hi_bin, self._lengths)
        active_start_sum = cum(lo_bin, self._lo) - cum(hi_bin, self._lo)
        return saturated + grid * (started - finished) - active_start_sum


class SegmentTable:
    """Window-clipped delivery segments for several hop bounds at once.

    Built by :func:`build_segment_table`.  Holds, per hop bound, the flat
    ``(seg_beg, seg_end, arrival)`` arrays over all aggregated pairs and
    a lazily constructed :class:`_BoundKernel` that answers whole delay
    grids in one vectorized pass.
    """

    def __init__(
        self,
        window: Tuple[float, float],
        num_pairs: int,
        raw: Dict[BoundKey, Tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        self.window = window
        self.num_pairs = num_pairs
        self._raw = raw
        self._kernels: Dict[BoundKey, _BoundKernel] = {}

    @property
    def bounds(self) -> List[BoundKey]:
        return list(self._raw)

    def segments(self, bound: BoundKey) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The clipped (seg_beg, seg_end, arrival) arrays of one bound."""
        return self._raw[bound]

    def num_segments(self, bound: BoundKey) -> int:
        return len(self._raw[bound][0])

    def _kernel(self, bound: BoundKey) -> _BoundKernel:
        kernel = self._kernels.get(bound)
        if kernel is None:
            kernel = self._kernels[bound] = _BoundKernel(*self._raw[bound])
        return kernel

    def measure(self, bound: BoundKey, grid: np.ndarray) -> np.ndarray:
        """Start-time measure with delay <= budget, per (ascending) budget."""
        obs = get_obs()
        if not obs.enabled:
            return self._kernel(bound).measure(grid)
        with obs.timer("engine.cdf_kernel"):
            values = self._kernel(bound).measure(grid)
        obs.metrics.counter("engine.grid_evaluations").inc(len(grid))
        return values

    def finite_measure(self, bound: BoundKey) -> float:
        """Total measure of start times with *any* finite delivery."""
        return self._kernel(bound).finite_measure


def _group_pairs_by_source(
    pairs: Iterable[Tuple[Node, Node]],
) -> Tuple[Dict[Node, List[Node]], int]:
    by_source: Dict[Node, List[Node]] = {}
    count = 0
    for s, d in pairs:
        if s == d:
            raise ValueError("source and destination must differ")
        by_source.setdefault(s, []).append(d)
        count += 1
    return by_source, count


def build_segment_table(
    profiles: PathProfileSet,
    bounds: Sequence[BoundKey],
    window: Optional[Tuple[float, float]] = None,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
) -> SegmentTable:
    """Collect clipped delivery segments for all ``bounds`` in one pass.

    Args:
        profiles: result of :func:`repro.core.optimal.compute_profiles`.
        bounds: hop bounds to collect (``None`` = unbounded flooding).
        window: start-time observation window; defaults to the trace span.
        pairs: restrict to these ordered (source, destination) pairs;
            default all ordered pairs over the computed sources.
    """
    if window is None:
        window = profiles.network.span
    t0, t1 = window
    query = list(dict.fromkeys(bounds))  # dedupe, preserve order
    obs = get_obs()
    with obs.span(
        "engine.segment_table", bounds=len(query)
    ) as span, obs.timer("engine.segment_table"):
        if pairs is None:
            by_source = {
                source: [d for d in profiles.network.nodes if d != source]
                for source in profiles.sources
            }
            num_pairs = sum(len(dests) for dests in by_source.values())
        else:
            by_source, num_pairs = _group_pairs_by_source(pairs)

        # A frontier (LD_1..LD_n, EA_1..EA_n) contributes the pieces
        # (prev LD, LD_i, EA_i] with prev starting at -inf, so seg_end is
        # the LD array, seg_beg its shift, and arrival the EA array.  Each
        # distinct DeliveryFunction is converted to numpy once (the same
        # object commonly backs several bounds) and each bound assembles
        # its pieces by concatenation — no per-segment Python work.
        converted: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        acc: Dict[BoundKey, Tuple[List[np.ndarray], List[np.ndarray], List[int]]] = {
            bound: ([], [], []) for bound in query
        }
        for source, destinations in by_source.items():
            sp = profiles.source_profiles(source)
            for _dest, funcs in sp.bound_profiles(destinations, query):
                for bound, func in zip(query, funcs):
                    lds = func.lds
                    if not lds:
                        continue
                    key = id(func)
                    arrays = converted.get(key)
                    if arrays is None:
                        arrays = converted[key] = (
                            np.asarray(lds, dtype=float),
                            np.asarray(func.eas, dtype=float),
                        )
                    ends, arrs, lens = acc[bound]
                    ends.append(arrays[0])
                    arrs.append(arrays[1])
                    lens.append(len(lds))

        raw = {
            bound: _assemble_bound(ends, arrs, lens, t0, t1)
            for bound, (ends, arrs, lens) in acc.items()
        }
        if obs.enabled:
            total = sum(len(beg) for beg, _, _ in raw.values())
            span.set(segments=total, pairs=num_pairs)
            obs.metrics.counter("engine.segments_collected").inc(total)
    return SegmentTable(window=(t0, t1), num_pairs=num_pairs, raw=raw)


def _assemble_bound(
    ends: List[np.ndarray],
    arrs: List[np.ndarray],
    lens: List[int],
    t0: float,
    t1: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate one bound's per-function pieces and clip to the window."""
    if not ends:
        return (np.empty(0), np.empty(0), np.empty(0))
    end = np.concatenate(ends)
    arr = np.concatenate(arrs)
    beg = np.empty_like(end)
    beg[1:] = end[:-1]
    # The first piece of every function begins at -inf (clipped to t0).
    lens_arr = np.asarray(lens, dtype=np.intp)
    offsets = np.zeros_like(lens_arr)
    np.cumsum(lens_arr[:-1], out=offsets[1:])
    beg[offsets] = -np.inf
    np.maximum(beg, t0, out=beg)
    end = np.minimum(end, t1)
    keep = end > beg
    if not keep.all():
        beg, end, arr = beg[keep], end[keep], arr[keep]
    return beg, end, arr
