"""The temporal-network container: a node set plus a contact multiset.

This is the general model of paper Section 4: "a graph where edges are all
labeled with a time interval, and there may be multiple edges between two
nodes".  The container is immutable by convention — transforms (contact
removal, windowing, scanning) build new networks — and lazily maintains the
per-edge sorted indexes that the optimal-path computation needs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .contact import Contact, Node


class EdgeContacts:
    """Time-sorted view of the contacts of one directed edge (u -> v).

    Contacts are sorted by *end* time, which is the order the frontier
    dynamic programming queries them in: extending a path with earliest
    arrival ``EA`` can only use contacts with ``t_end >= EA`` (paper
    fact (iv): concatenation requires ``EA(e) <= LD(e') = t_end``).

    Attributes:
        ends: contact end times, ascending.
        begs: matching begin times (not necessarily sorted if contacts of
            the pair overlap).
        suffix_min_beg: ``suffix_min_beg[i] = min(begs[i:])``; the earliest
            possible arrival over all contacts ending at or after a point.
    """

    __slots__ = ("ends", "begs", "suffix_min_beg")

    def __init__(self, contacts: Sequence[Contact]) -> None:
        by_end = sorted(contacts, key=lambda c: (c.t_end, c.t_beg))
        self.ends: List[float] = [c.t_end for c in by_end]
        self.begs: List[float] = [c.t_beg for c in by_end]
        self.suffix_min_beg: List[float] = list(self.begs)
        for i in range(len(self.suffix_min_beg) - 2, -1, -1):
            later = self.suffix_min_beg[i + 1]
            if later < self.suffix_min_beg[i]:
                self.suffix_min_beg[i] = later

    def __len__(self) -> int:
        return len(self.ends)

    def first_ending_at_or_after(self, t: float) -> int:
        """Index of the first contact with ``t_end >= t``."""
        return bisect_left(self.ends, t)


class TemporalNetwork:
    """A static node set with a time-labelled contact multiset.

    Args:
        contacts: the contact events.  Kept in start-time order internally.
        nodes: optional explicit node set; defaults to the union of contact
            endpoints.  Isolated nodes matter for success-rate denominators
            (a device that never meets anyone still counts as a potential
            destination), so data-set builders pass the full roster.
        directed: if False (the default, matching the traces in the paper),
            a contact lets data flow both ways and each contact backs both
            directed edges (u, v) and (v, u).
    """

    def __init__(
        self,
        contacts: Iterable[Contact],
        nodes: Optional[Iterable[Node]] = None,
        directed: bool = False,
    ) -> None:
        self._contacts: List[Contact] = sorted(contacts)
        node_set = set() if nodes is None else set(nodes)
        for contact in self._contacts:
            node_set.add(contact.u)
            node_set.add(contact.v)
        self._nodes: List[Node] = sorted(node_set, key=repr)
        self._node_set = node_set
        self.directed = directed
        self._edge_index: Optional[Dict[Tuple[Node, Node], List[Contact]]] = None
        self._edge_contacts: Dict[Tuple[Node, Node], EdgeContacts] = {}
        self._out_neighbors: Optional[Dict[Node, List[Node]]] = None
        self._beg_times: Optional[List[float]] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def contacts(self) -> Sequence[Contact]:
        """All contacts, sorted by start time."""
        return self._contacts

    @property
    def nodes(self) -> Sequence[Node]:
        """All nodes, in a deterministic order."""
        return self._nodes

    def __contains__(self, node: Node) -> bool:
        return node in self._node_set

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def num_contacts(self) -> int:
        return len(self._contacts)

    @property
    def span(self) -> Tuple[float, float]:
        """(earliest contact begin, latest contact end); (0, 0) if empty."""
        if not self._contacts:
            return (0.0, 0.0)
        t_min = self._contacts[0].t_beg
        t_max = max(c.t_end for c in self._contacts)
        return (t_min, t_max)

    def degenerate_reason(self) -> Optional[str]:
        """Why window-averaged statistics are undefined here, or None.

        An empty contact set (e.g. after ``remove_random(p=1.0)`` or an
        aggressive ``time_window``) collapses :attr:`span` to
        ``(0.0, 0.0)``; a trace whose contacts all sit at one instant
        collapses it to a point.  Either way the observation window has
        zero measure, so delay-CDF and diameter denominators are
        meaningless — callers (CLI, service admission) must turn this
        into a structured error instead of producing garbage.
        """
        if not self._contacts:
            return "trace has no contacts"
        t0, t1 = self.span
        if t1 <= t0:
            return (
                f"trace span [{t0:g}; {t1:g}] has zero length; no "
                "observation window"
            )
        return None

    @property
    def duration(self) -> float:
        t_min, t_max = self.span
        return t_max - t_min

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"TemporalNetwork({len(self)} nodes, {self.num_contacts} contacts, "
            f"{kind}, span={self.span})"
        )

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------

    def _build_edge_index(self) -> Dict[Tuple[Node, Node], List[Contact]]:
        if self._edge_index is None:
            index: Dict[Tuple[Node, Node], List[Contact]] = {}
            for contact in self._contacts:
                index.setdefault((contact.u, contact.v), []).append(contact)
                if not self.directed:
                    index.setdefault((contact.v, contact.u), []).append(
                        contact.reversed()
                    )
            self._edge_index = index
        return self._edge_index

    def edge_contacts(self, u: Node, v: Node) -> EdgeContacts:
        """Sorted contact view of the directed edge (u -> v)."""
        key = (u, v)
        view = self._edge_contacts.get(key)
        if view is None:
            view = EdgeContacts(self._build_edge_index().get(key, []))
            self._edge_contacts[key] = view
        return view

    def out_neighbors(self, u: Node) -> Sequence[Node]:
        """Nodes that u has at least one contact towards."""
        if self._out_neighbors is None:
            neighbors: Dict[Node, Set[Node]] = {}
            for (src, dst) in self._build_edge_index():
                neighbors.setdefault(src, set()).add(dst)
            self._out_neighbors = {
                node: sorted(nbrs, key=repr) for node, nbrs in neighbors.items()
            }
        return self._out_neighbors.get(u, [])

    def contacts_of_pair(self, u: Node, v: Node) -> Sequence[Contact]:
        """Contacts of the directed edge (u -> v), sorted by start time."""
        return sorted(self._build_edge_index().get((u, v), []))

    def contacts_of_node(self, u: Node) -> List[Contact]:
        """All contacts involving node u (either endpoint), by start time."""
        return [c for c in self._contacts if u in (c.u, c.v)]

    def contacts_active_at(self, t: float) -> Iterator[Contact]:
        """Contacts whose interval contains time t."""
        return (c for c in self._contacts if c.active_at(t))

    def contacts_beginning_in(self, t0: float, t1: float) -> Sequence[Contact]:
        """Contacts with ``t0 <= t_beg < t1`` (contacts are begin-sorted).

        The interval is half-open, so ``t0 == t1`` is empty — consistent
        with chaining consecutive windows without double-counting.
        """
        if self._beg_times is None:
            self._beg_times = [c.t_beg for c in self._contacts]
        lo = bisect_left(self._beg_times, t0)
        hi = bisect_left(self._beg_times, t1)
        return self._contacts[lo:max(lo, hi)]

    # ------------------------------------------------------------------
    # Derived networks
    # ------------------------------------------------------------------

    def with_contacts(self, contacts: Iterable[Contact]) -> "TemporalNetwork":
        """A new network with the same roster/direction but new contacts."""
        return TemporalNetwork(contacts, nodes=self._node_set, directed=self.directed)

    def event_times(self) -> List[float]:
        """All distinct contact begin/end times, ascending.

        These are the only instants where any delivery function can change,
        which makes them the canonical probe points for exhaustive
        validation against flooding.
        """
        times = set()
        for contact in self._contacts:
            times.add(contact.t_beg)
            times.add(contact.t_end)
        return sorted(times)
