"""Core temporal-network machinery: the paper's primary contribution.

Data model (contacts, temporal networks), the (LD, EA) path algebra,
Pareto-frontier delivery functions, the all-starting-times optimal-path
computation, exact delay CDFs and the (1 - eps)-diameter.
"""

from .cache import cache_path, load_or_compute, profile_cache_key
from .contact import Contact, Node, merge_intervals
from .csr import CSRNetwork, csr_for, network_key
from .engine_pool import close_pools
from .delay_cdf import (
    DelayCDF,
    delay_cdf,
    delay_cdf_per_hop_bound,
    delay_cdf_reference,
)
from .delivery import DeliveryFunction
from .diameter import DiameterResult, diameter, diameter_vs_delay, success_curves
from .journeys import (
    Journey,
    fastest_duration,
    fastest_journey,
    foremost_journey,
    journey_summary,
    shortest_journey,
)
from .optimal import ENGINES, PathProfileSet, SourceProfiles, compute_profiles
from .pairs import (
    PathPair,
    can_concatenate,
    concatenate,
    dominates,
    extend_with_contact,
    pair_of_contact,
    strictly_dominates,
)
from .paths import ContactPath, is_chained, is_valid_sequence
from .segments import SegmentTable, build_segment_table
from .storage import load_profiles, profiles_digest, save_profiles, trace_digest
from .temporal_network import EdgeContacts, TemporalNetwork
from .transmission import (
    SampledSuccess,
    sampled_diameter,
    sampled_start_times,
    sampled_success_curves,
)

__all__ = [
    "CSRNetwork",
    "Contact",
    "ContactPath",
    "DelayCDF",
    "ENGINES",
    "DeliveryFunction",
    "DiameterResult",
    "EdgeContacts",
    "Journey",
    "Node",
    "PathPair",
    "PathProfileSet",
    "SampledSuccess",
    "SegmentTable",
    "SourceProfiles",
    "TemporalNetwork",
    "build_segment_table",
    "cache_path",
    "can_concatenate",
    "compute_profiles",
    "concatenate",
    "delay_cdf",
    "delay_cdf_per_hop_bound",
    "delay_cdf_reference",
    "diameter",
    "diameter_vs_delay",
    "dominates",
    "extend_with_contact",
    "fastest_duration",
    "fastest_journey",
    "foremost_journey",
    "is_chained",
    "is_valid_sequence",
    "close_pools",
    "csr_for",
    "journey_summary",
    "load_or_compute",
    "load_profiles",
    "merge_intervals",
    "network_key",
    "pair_of_contact",
    "profile_cache_key",
    "profiles_digest",
    "sampled_diameter",
    "sampled_start_times",
    "sampled_success_curves",
    "save_profiles",
    "shortest_journey",
    "strictly_dominates",
    "success_curves",
    "trace_digest",
]
