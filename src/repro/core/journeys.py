"""The classic journey taxonomy on temporal networks.

Bui-Xuan, Ferreira and Jarry (IJFCS 2003) — reference [1] of the paper —
distinguish three optimal *journeys* (time-respecting paths) between two
nodes of a temporal network:

* the **foremost** journey: arrives earliest, given a start time;
* the **shortest** journey: uses the fewest hops, regardless of timing;
* the **fastest** journey: minimises time spent in the network
  (arrival − departure), over all departure times.

The paper's frontier machinery subsumes all three: given the Pareto list
of (LD, EA) pairs of a source-destination pair,

* foremost at start t  = ``del(t)``  (evaluate the delivery function);
* fastest duration     = ``min over pairs of max(0, EA − LD)`` — each
  frontier pair is exactly one delay-optimal departure opportunity;
* shortest hop count   = the smallest recorded hop bound whose profile
  is non-empty.

This module exposes those as a small, documented API with witness paths
reconstructed through generalized Dijkstra.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from .contact import Node
from .delivery import DeliveryFunction
from .optimal import PathProfileSet
from .paths import ContactPath
from .temporal_network import TemporalNetwork

INFINITY = float("inf")


def _earliest_arrival_path(*args: Any, **kwargs: Any) -> Any:
    # Imported lazily: baselines depends on core, so a module-level import
    # here would be circular.
    from ..baselines.dijkstra import earliest_arrival_path

    return earliest_arrival_path(*args, **kwargs)


@dataclass(frozen=True)
class Journey:
    """One optimal journey with its witness path."""

    kind: str
    departure: float
    arrival: float
    path: Optional[ContactPath]

    @property
    def duration(self) -> float:
        return self.arrival - self.departure

    @property
    def hops(self) -> Optional[int]:
        return self.path.num_contacts if self.path is not None else None


def foremost_journey(
    net: TemporalNetwork,
    source: Node,
    destination: Node,
    start_time: float,
    max_hops: Optional[int] = None,
) -> Optional[Journey]:
    """The earliest-arrival journey for a message created at start_time."""
    path = _earliest_arrival_path(net, source, destination, start_time, max_hops)
    if path is None:
        return None
    arrival = path.schedule(start_time)[-1]
    return Journey("foremost", departure=start_time, arrival=arrival, path=path)


def shortest_journey(
    net: TemporalNetwork,
    source: Node,
    destination: Node,
    start_time: float = -INFINITY,
) -> Optional[Journey]:
    """The minimum-hop journey available at or after ``start_time``.

    Found by raising the hop bound until a delivery exists; the witness
    achieves the minimum hop count (and, within it, the earliest
    arrival).
    """
    effective_start = start_time if start_time != -INFINITY else (
        net.span[0] - 1.0
    )
    for hops in range(1, max(len(net), 2)):
        path = _earliest_arrival_path(
            net, source, destination, effective_start, max_hops=hops
        )
        if path is not None and path.num_contacts <= hops:
            arrival = path.schedule(effective_start)[-1]
            return Journey(
                "shortest", departure=effective_start, arrival=arrival, path=path
            )
    return None


def fastest_duration(profile: DeliveryFunction) -> float:
    """Minimum journey duration over all departure times.

    Each frontier pair (LD, EA) is one delay-optimal departure
    opportunity: departing at ``min(LD, EA)`` yields the duration
    ``max(0, EA − LD)`` (zero when the pair is contemporaneous).
    Returns inf for an unreachable pair.
    """
    best = INFINITY
    for ld, ea in zip(profile.lds, profile.eas):
        duration = ea - ld
        if duration < 0.0:
            duration = 0.0
        if duration < best:
            best = duration
    return best


def fastest_journey(
    net: TemporalNetwork,
    profiles: PathProfileSet,
    source: Node,
    destination: Node,
) -> Optional[Journey]:
    """The minimum-duration journey over all departure times.

    Picks the frontier pair with the smallest ``max(0, EA − LD)`` and
    reconstructs a witness departing at its optimal instant.
    """
    profile = profiles.profile(source, destination, None)
    if not profile:
        return None
    best_pair: Optional[Tuple[float, float]] = None
    best_duration = INFINITY
    for ld, ea in zip(profile.lds, profile.eas):
        duration = max(0.0, ea - ld)
        if duration < best_duration:
            best_duration = duration
            best_pair = (ld, ea)
    ld, ea = best_pair
    departure = min(ld, ea)
    path = _earliest_arrival_path(net, source, destination, departure)
    if path is None:  # pragma: no cover - frontier guarantees existence
        return None
    arrival = path.schedule(departure)[-1]
    return Journey("fastest", departure=departure, arrival=arrival, path=path)


def journey_summary(
    net: TemporalNetwork,
    profiles: PathProfileSet,
    source: Node,
    destination: Node,
    start_time: float,
) -> "dict":
    """All three classic journeys of one pair, ready for display."""
    return {
        "foremost": foremost_journey(net, source, destination, start_time),
        "shortest": shortest_journey(net, source, destination, start_time),
        "fastest": fastest_journey(net, profiles, source, destination),
    }
