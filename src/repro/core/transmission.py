"""Positive per-hop transmission delays (extension of paper Section 4.2).

The paper's path machinery assumes contacts are crossed instantaneously
and remarks: "It is possible to include a positive transmission delay in
all these definitions, we expect that the diameter will be smaller in
that case."  A positive delay breaks the two-parameter (LD, EA) algebra —
the delivery function of a k-hop sequence becomes
``max(t + k*delta, EA')``, whose slope depends on the hop count — so this
module implements the extension by *start-time sampling* over flooding
(exact at each sampled start time) rather than through the frontier
machinery.  It is meant for moderate traces and for the ablation
benchmark that verifies the paper's expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.flooding import flood
from .contact import Node
from .temporal_network import TemporalNetwork

INFINITY = float("inf")


def sampled_start_times(
    net: TemporalNetwork, num_samples: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform start times over the trace span."""
    if num_samples < 1:
        raise ValueError("need at least one sample")
    t0, t1 = net.span
    if t1 <= t0:
        raise ValueError("degenerate trace span")
    return np.sort(rng.uniform(t0, t1, size=num_samples))


@dataclass(frozen=True)
class SampledSuccess:
    """P[delay <= budget] estimated over sampled (source, start) points."""

    grid: np.ndarray
    values: np.ndarray
    num_samples: int

    def __call__(self, budget: float) -> float:
        idx = int(np.searchsorted(self.grid, budget, side="right")) - 1
        return float(self.values[idx]) if idx >= 0 else 0.0


def sampled_success_curves(
    net: TemporalNetwork,
    grid: Sequence[float],
    hop_bounds: Sequence[int],
    start_times: Sequence[float],
    transmission_delay: float = 0.0,
    sources: Optional[Sequence[Node]] = None,
) -> "Dict[Optional[int], SampledSuccess]":
    """Success curves per hop bound (plus None = flooding), by sampling.

    For each (source, start time), one flooding pass per hop bound gives
    every destination's delay; delays are pooled uniformly over sources,
    destinations and sampled start times, mirroring the paper's empirical
    CDF but with sampled rather than exhaustive start times.
    """
    grid_arr = np.asarray(list(grid), dtype=float)
    chosen = list(net.nodes) if sources is None else list(sources)
    bounds: List[Optional[int]] = list(hop_bounds) + [None]
    delays: Dict[Optional[int], List[float]] = {b: [] for b in bounds}
    for source in chosen:
        for t in start_times:
            for bound in bounds:
                arrival = flood(net, source, float(t), bound, transmission_delay)
                for destination in net.nodes:
                    if destination == source:
                        continue
                    reached = arrival.get(destination, INFINITY)
                    delays[bound].append(reached - float(t))
    curves = {}
    for bound in bounds:
        sample = np.asarray(delays[bound], dtype=float)
        values = np.asarray(
            [(sample <= budget).mean() for budget in grid_arr]
        )
        curves[bound] = SampledSuccess(grid_arr, values, len(sample))
    return curves


def sampled_diameter(
    net: TemporalNetwork,
    grid: Sequence[float],
    hop_bounds: Sequence[int],
    start_times: Sequence[float],
    transmission_delay: float = 0.0,
    eps: float = 0.01,
    sources: Optional[Sequence[Node]] = None,
) -> "Tuple[Optional[int], Dict[Optional[int], SampledSuccess]]":
    """The (1 - eps)-diameter under a per-hop transmission delay.

    Returns (diameter, curves); diameter is None when no recorded hop
    bound reaches (1 - eps) of flooding everywhere on the grid.
    """
    if not 0.0 < eps < 1.0:
        raise ValueError("eps must be in (0, 1)")
    curves = sampled_success_curves(
        net, grid, hop_bounds, start_times, transmission_delay, sources
    )
    optimum = curves[None].values
    for bound in sorted(b for b in curves if b is not None):
        if np.all(curves[bound].values >= (1.0 - eps) * optimum - 1e-12):
            return bound, curves
    return None, curves
