"""The reprolint command line: ``python -m repro.lint <paths>``.

Exit codes: 0 clean, 1 findings, 2 usage or lint errors (unreadable or
syntactically invalid input).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import HYGIENE_CODE, LintError, lint_paths
from .registry import get_rules
from .reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "reprolint: domain-invariant static analysis for the repro "
            "package (interval discipline, determinism, obs hot-loop "
            "contract, annotations)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "lint files with N worker processes (default: 1; output is "
            "byte-identical for any N)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = [
        f"{HYGIENE_CODE}  suppression-hygiene  every '# reprolint: disable' "
        "must carry a '-- <justification>' and name known codes (engine "
        "built-in, not selectable)"
    ]
    for rule in get_rules():
        lines.append(f"{rule.code}  {rule.name}  {rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    try:
        findings, files_checked = lint_paths(args.paths, select, jobs=args.jobs)
    except (LintError, KeyError) as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings, files_checked))
    return 1 if findings else 0
