"""Rule protocol and registry.

A rule is a class with a ``REPxxx`` code, a human summary, a package
scope, and a ``check`` method over one parsed file.  Rules register
themselves with :func:`register` at import time; the engine and the CLI
only ever talk to the registry, so adding a rule is: write the class in
:mod:`repro.lint.rules`, decorate it, done.

Scoping: the domain rules encode conventions of the ``repro`` package
itself (interval discipline, obs hot-loop contract, ...), so they apply
only to files whose path shows they live under ``src/repro`` — the
engine resolves that to a package-relative module path like
``core/optimal.py`` and rules declare prefix scopes against it.  Files
outside the package (tests, benchmarks) still get the universal
suppression-hygiene checks the engine performs itself.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from .findings import Finding

#: bumped whenever a rule is added or removed, or a finding's meaning
#: changes; surfaced in the ``repro.lint/1`` JSON report so downstream
#: consumers (dashboards, the artifact validator) can detect drift
#: between reports produced by different checkouts.  Version history:
#: 1 = REP001–REP005, 2 = + the concurrency rules REP006–REP008.
REGISTRY_VERSION = 2


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one file."""

    #: path as given to the engine; reproduced verbatim in findings.
    path: str
    #: package-relative posix path under ``src/repro`` (``core/optimal.py``),
    #: or None when the file is outside the repro package.
    module: Optional[str]
    source: str
    tree: ast.Module


class Rule(ABC):
    """Base class for reprolint rules."""

    #: unique ``REPxxx`` identifier, used in reports and suppressions.
    code: ClassVar[str]
    #: short kebab-case name for ``--list-rules``.
    name: ClassVar[str]
    #: one-line description of the convention the rule enforces.
    summary: ClassVar[str]
    #: package-relative prefixes the rule applies to; None = whole package.
    packages: ClassVar[Optional[Tuple[str, ...]]] = None
    #: package-relative files exempt because they *implement* the sanctioned
    #: helpers the rule points everyone else at.
    exempt: ClassVar[Tuple[str, ...]] = ()

    def applies(self, ctx: FileContext) -> bool:
        if ctx.module is None:
            return False
        if ctx.module in self.exempt:
            return False
        if self.packages is None:
            return True
        return any(ctx.module.startswith(prefix) for prefix in self.packages)

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (already scope-filtered)."""

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    code = rule_cls.code
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def rule_codes() -> List[str]:
    return sorted(_REGISTRY)


def get_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate registered rules, optionally restricted to ``select``."""
    if select is None:
        return [_REGISTRY[code]() for code in sorted(_REGISTRY)]
    chosen = list(select)
    unknown = [code for code in chosen if code not in _REGISTRY]
    if unknown:
        raise KeyError(f"unknown rule codes: {', '.join(sorted(unknown))}")
    return [_REGISTRY[code]() for code in sorted(set(chosen))]


def is_known_code(code: str) -> bool:
    return code in _REGISTRY
