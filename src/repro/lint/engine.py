"""The reprolint engine: file walking, suppressions, rule dispatch.

Suppression syntax (line-scoped, never file-wide)::

    frontier = eas[lo]  # reprolint: disable=REP002 -- exact frontier identity

The ``-- <reason>`` justification is mandatory: a disable without one is
itself a finding (REP000), so every suppression in the tree documents
why the convention does not apply.  Unknown codes in a disable list are
REP000 findings too.  There is deliberately no file-wide disable.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from . import rules as _rules  # noqa: F401  (imports register the rules)
from .findings import Finding
from .registry import FileContext, Rule, get_rules, is_known_code

#: code of the engine's own suppression-hygiene checks.
HYGIENE_CODE = "REP000"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s*(?P<reason>\S.*))?$"
)


class LintError(Exception):
    """A file could not be linted at all (unreadable or unparseable)."""


@dataclass(frozen=True)
class Suppression:
    """One ``# reprolint: disable=...`` comment.

    ``target_line`` is where the suppression takes effect: the comment's
    own line for a trailing comment, or the next non-blank non-comment
    line for a standalone comment (so a justification too long for one
    line can sit above the code it covers).
    """

    line: int
    col: int
    codes: Tuple[str, ...]
    justified: bool
    target_line: int


def _is_comment_or_blank(line: str) -> bool:
    stripped = line.strip()
    return not stripped or stripped.startswith("#")


def module_path(path: "str | Path") -> Optional[str]:
    """Package-relative posix path under ``src/repro``, else None.

    ``/root/repo/src/repro/core/optimal.py`` -> ``core/optimal.py``; the
    pretend paths fixture tests pass to :func:`lint_source` resolve the
    same way, so rules scope identically for real and synthetic input.
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            rest = parts[i + 2 :]
            return "/".join(rest) if rest else None
    return None


def parse_suppressions(source: str) -> List[Suppression]:
    """All reprolint disable comments of a source text, by line."""
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return suppressions
    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes = tuple(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        line = token.start[0]
        target = line
        own_line = lines[line - 1] if line - 1 < len(lines) else ""
        if own_line[: token.start[1]].strip() == "":
            # Standalone comment: effective on the next code line.
            target = line + 1
            while target <= len(lines) and _is_comment_or_blank(lines[target - 1]):
                target += 1
        suppressions.append(
            Suppression(
                line=line,
                col=token.start[1],
                codes=codes,
                justified=match.group("reason") is not None,
                target_line=target,
            )
        )
    return suppressions


def _hygiene_findings(path: str, suppressions: Sequence[Suppression]) -> List[Finding]:
    findings: List[Finding] = []
    for sup in suppressions:
        if not sup.justified:
            findings.append(
                Finding(
                    path=path,
                    line=sup.line,
                    col=sup.col,
                    code=HYGIENE_CODE,
                    message=(
                        "suppression lacks a justification; write "
                        "'# reprolint: disable=REPxxx -- <why the rule "
                        "does not apply here>'"
                    ),
                )
            )
        for code in sup.codes:
            if code != HYGIENE_CODE and not is_known_code(code):
                findings.append(
                    Finding(
                        path=path,
                        line=sup.line,
                        col=sup.col,
                        code=HYGIENE_CODE,
                        message=f"unknown rule code {code!r} in suppression",
                    )
                )
    return findings


def _apply_suppressions(
    findings: Iterable[Finding], suppressions: Sequence[Suppression]
) -> List[Finding]:
    by_line: Dict[int, Set[str]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.line, set()).update(sup.codes)
        by_line.setdefault(sup.target_line, set()).update(sup.codes)
    kept: List[Finding] = []
    for finding in findings:
        if finding.code == HYGIENE_CODE:
            # Hygiene findings are about the suppression comments
            # themselves and cannot be suppressed away.
            kept.append(finding)
            continue
        if finding.code in by_line.get(finding.line, ()):
            continue
        kept.append(finding)
    return kept


def lint_source(
    source: str,
    path: str,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source text as if it lived at ``path``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc.msg} (line {exc.lineno})") from exc
    ctx = FileContext(
        path=path, module=module_path(path), source=source, tree=tree
    )
    try:
        rules = get_rules(select)
    except KeyError as exc:
        raise LintError(str(exc.args[0])) from exc
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies(ctx):
            raw.extend(rule.check(ctx))
    suppressions = parse_suppressions(source)
    findings = _apply_suppressions(raw, suppressions)
    findings.extend(_hygiene_findings(path, suppressions))
    return sorted(findings)


def lint_file(path: "str | Path", select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"{file_path}: cannot read: {exc}") from exc
    return lint_source(source, str(file_path), select)


def iter_python_files(paths: Iterable["str | Path"]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: Dict[Path, None] = {}
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            for file_path in sorted(root.rglob("*.py")):
                if any(part.startswith(".") for part in file_path.parts):
                    continue
                seen.setdefault(file_path, None)
        elif root.suffix == ".py":
            seen.setdefault(root, None)
        elif not root.exists():
            raise LintError(f"{root}: no such file or directory")
    return sorted(seen)


def _lint_one_file(
    item: "Tuple[str, Optional[Tuple[str, ...]]]",
) -> List[Finding]:
    """Process-pool worker: lint one file (module level, so it pickles)."""
    path, select = item
    return lint_file(path, select)


def lint_paths(
    paths: Iterable["str | Path"],
    select: Optional[Iterable[str]] = None,
    jobs: int = 1,
) -> Tuple[List[Finding], int]:
    """Lint files and directories; returns (findings, files checked).

    ``jobs > 1`` fans the (sorted) file list out over a process pool.
    Output is deterministic regardless of ``jobs``: every file is linted
    independently and the merged findings are sorted the same way, so a
    parallel run is byte-identical to a serial one.
    """
    if jobs < 1:
        raise LintError(f"jobs must be >= 1, got {jobs}")
    files = iter_python_files(paths)
    findings: List[Finding] = []
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        items = [
            (str(file_path), None if select is None else tuple(select))
            for file_path in files
        ]
        with ProcessPoolExecutor(max_workers=min(jobs, len(files))) as pool:
            for result in pool.map(_lint_one_file, items, chunksize=4):
                findings.extend(result)
    else:
        for file_path in files:
            findings.extend(lint_file(file_path, select))
    return sorted(findings), len(files)
