"""Shared lock-usage model for the concurrency rules (REP006-REP008).

The three concurrency rules all need the same facts about a file: which
attributes are locks, which code runs while holding which locks, and
what the ``# guarded-by: <lock>`` comments declare.  This module builds
that model once per file so the rules stay small:

* **lock discovery** — ``self.X = threading.Lock()`` (or ``RLock`` /
  ``Condition``) marks ``X`` as a class lock; so does any
  ``with self.X:`` statement.  Module-level ``NAME = threading.Lock()``
  assignments are module locks, usable from plain functions.
* **guard declarations** — a comment containing ``guarded-by: <lock>``
  binds to the field assigned on its line (trailing form) or on the next
  code line (standalone form).  On a ``def`` line it declares a *method
  guard*: callers must hold the lock, and the body is analysed as if the
  lock were held throughout.
* **flow tracking** — every method body is walked with the set of
  currently-held locks (lexical ``with`` nesting plus the method guard),
  recording field accesses, ``self.method()`` calls, lock acquisitions
  (with what was already held), and every call made under a lock.

The model is deliberately lexical: a closure built under a lock but run
later is treated as lock-held code.  That over-approximation has not
produced a false positive in this tree, and the justified-suppression
machinery covers any future one.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .registry import FileContext

#: callables whose result is a lock object we track.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

#: callables whose result synchronises itself (safe to touch unlocked);
#: fields holding one are excluded from REP006 guard *inference*
#: (explicit declarations still apply).
_SELF_SYNCED_FACTORIES = frozenset(
    {
        "Event",
        "Queue",
        "SimpleQueue",
        "LifoQueue",
        "PriorityQueue",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
    }
)

_GUARD_RE = re.compile(r"guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


@dataclass(frozen=True)
class GuardComment:
    """One ``# ... guarded-by: <lock>`` comment, pre-binding."""

    line: int
    col: int
    lock: str
    target_line: int


@dataclass(frozen=True)
class FieldAccess:
    """One read/write of ``self.<field>`` inside a method body."""

    field: str
    method: str
    line: int
    col: int
    held: FrozenSet[str]
    is_store: bool


@dataclass(frozen=True)
class LockAcquisition:
    """One ``with <lock>:`` entry, with the locks already held."""

    lock: str
    method: Optional[str]
    line: int
    col: int
    held_before: FrozenSet[str]


@dataclass(frozen=True)
class SelfCall:
    """One ``self.<method>(...)`` call, with the locks held at the site."""

    callee: str
    method: str
    line: int
    col: int
    held: FrozenSet[str]


@dataclass
class ClassModel:
    """Everything the concurrency rules need to know about one class."""

    name: str
    node: ast.ClassDef
    locks: Dict[str, str] = field(default_factory=dict)  # attr -> factory kind
    field_guards: Dict[str, str] = field(default_factory=dict)
    method_guards: Dict[str, str] = field(default_factory=dict)
    guard_errors: List[Tuple[int, int, str]] = field(default_factory=list)
    accesses: List[FieldAccess] = field(default_factory=list)
    acquisitions: List[LockAcquisition] = field(default_factory=list)
    self_calls: List[SelfCall] = field(default_factory=list)
    calls_under_lock: List[Tuple[ast.Call, FrozenSet[str]]] = field(
        default_factory=list
    )
    methods: Set[str] = field(default_factory=set)
    #: fields holding self-synchronised primitives (Event, Queue, ...).
    self_synced: Set[str] = field(default_factory=set)


@dataclass
class ModuleModel:
    """The per-file model: module locks plus one model per class."""

    module_locks: Set[str] = field(default_factory=set)
    classes: List[ClassModel] = field(default_factory=list)
    #: acquisitions and lock-held calls in module-level functions.
    acquisitions: List[LockAcquisition] = field(default_factory=list)
    calls_under_lock: List[Tuple[ast.Call, FrozenSet[str]]] = field(
        default_factory=list
    )


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_lock_factory(node: ast.expr) -> Optional[str]:
    """The factory kind ("Lock"/"RLock"/"Condition") of a call, or None."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name is None:
        return None
    last = name.rsplit(".", 1)[-1]
    return last if last in _LOCK_FACTORIES else None


def _is_comment_or_blank(line: str) -> bool:
    stripped = line.strip()
    return not stripped or stripped.startswith("#")


def parse_guard_comments(source: str) -> List[GuardComment]:
    """Every guarded-by comment of a source text, with its target line.

    Targeting mirrors the engine's suppression comments: a trailing
    comment covers its own line, a standalone comment the next code
    line.
    """
    comments: List[GuardComment] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        return comments
    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _GUARD_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        target = line
        own_line = lines[line - 1] if line - 1 < len(lines) else ""
        if own_line[: token.start[1]].strip() == "":
            target = line + 1
            while target <= len(lines) and _is_comment_or_blank(
                lines[target - 1]
            ):
                target += 1
        comments.append(
            GuardComment(
                line=line,
                col=token.start[1],
                lock=match.group(1),
                target_line=target,
            )
        )
    return comments


class _MethodWalker(ast.NodeVisitor):
    """Walk one method (or module function) body tracking held locks."""

    def __init__(
        self,
        model: ClassModel | ModuleModel,
        method: Optional[str],
        self_name: Optional[str],
        class_locks: Dict[str, str],
        module_locks: Set[str],
        initial_held: FrozenSet[str],
    ) -> None:
        self.model = model
        self.method = method
        self.self_name = self_name
        self.class_locks = class_locks
        self.module_locks = module_locks
        self.held: Tuple[str, ...] = tuple(sorted(initial_held))

    def _lock_of(self, expr: ast.expr) -> Optional[str]:
        """The tracked lock a with-item acquires, or None."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and self.self_name is not None
            and expr.value.id == self.self_name
            and expr.attr in self.class_locks
        ):
            return expr.attr
        if isinstance(expr, ast.Name) and expr.id in self.module_locks:
            return expr.id
        return None

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        outer = self.held
        acquired: List[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
            lock = self._lock_of(item.context_expr)
            if lock is not None:
                self.model.acquisitions.append(
                    LockAcquisition(
                        lock=lock,
                        method=self.method,
                        line=item.context_expr.lineno,
                        col=item.context_expr.col_offset,
                        held_before=frozenset(self.held),
                    )
                )
                acquired.append(lock)
                self.held = tuple(sorted(set(self.held) | {lock}))
        for stmt in node.body:
            self.visit(stmt)
        del acquired
        self.held = outer

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and self.self_name is not None
            and node.value.id == self.self_name
            and isinstance(self.model, ClassModel)
            and node.attr not in self.class_locks
        ):
            self.model.accesses.append(
                FieldAccess(
                    field=node.attr,
                    method=self.method or "<module>",
                    line=node.lineno,
                    col=node.col_offset,
                    held=frozenset(self.held),
                    is_store=isinstance(node.ctx, (ast.Store, ast.Del)),
                )
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            self.model.calls_under_lock.append((node, frozenset(self.held)))
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and self.self_name is not None
            and node.func.value.id == self.self_name
            and isinstance(self.model, ClassModel)
            and self.method is not None
        ):
            self.model.self_calls.append(
                SelfCall(
                    callee=node.func.attr,
                    method=self.method,
                    line=node.lineno,
                    col=node.col_offset,
                    held=frozenset(self.held),
                )
            )
        self.generic_visit(node)

    # Nested defs/lambdas run later but capture self; treat their bodies
    # as part of the enclosing method (lexical held set), per the module
    # docstring's over-approximation.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for stmt in node.body:
            self.visit(stmt)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        for stmt in node.body:
            self.visit(stmt)


def _self_name(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> Optional[str]:
    for decorator in func.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "staticmethod":
            return None
    if not func.args.args:
        return None
    return func.args.args[0].arg


def _factory_kind(node: ast.expr) -> Optional[str]:
    """The factory name of a call to any tracked primitive, or None."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name is None:
        return None
    last = name.rsplit(".", 1)[-1]
    if last in _LOCK_FACTORIES or last in _SELF_SYNCED_FACTORIES:
        return last
    return None


def _collect_class_locks(
    node: ast.ClassDef,
) -> Tuple[Dict[str, str], Set[str]]:
    """Attr names that hold lock / self-synchronised objects in a class."""
    locks: Dict[str, str] = {}
    synced: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            kind = _factory_kind(sub.value)
            if kind is not None:
                for target in sub.targets:
                    if isinstance(target, ast.Attribute) and isinstance(
                        target.value, ast.Name
                    ):
                        if kind in _LOCK_FACTORIES:
                            locks[target.attr] = kind
                        else:
                            synced.add(target.attr)
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                expr = item.context_expr
                if isinstance(expr, ast.Attribute) and isinstance(
                    expr.value, ast.Name
                ):
                    locks.setdefault(expr.attr, "Lock")
    return locks, synced


def _bind_guards(
    model: ClassModel,
    comments: Sequence[GuardComment],
    module_locks: Set[str],
) -> None:
    """Attach guard comments to the fields and methods they target."""
    span = (model.node.lineno, max(model.node.lineno, model.node.end_lineno or 0))
    methods_by_line: Dict[int, str] = {}
    assigns: List[Tuple[int, int, Set[str]]] = []
    for stmt in model.node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods_by_line[stmt.lineno] = stmt.name
            self_name = _self_name(stmt)
            for sub in ast.walk(stmt):
                fields: Set[str] = set()
                if isinstance(sub, ast.Assign):
                    targets = sub.targets
                elif isinstance(sub, ast.AnnAssign):
                    targets = [sub.target]
                else:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        fields.add(target.attr)
                if fields:
                    assigns.append(
                        (sub.lineno, sub.end_lineno or sub.lineno, fields)
                    )
    for comment in comments:
        if not span[0] <= comment.target_line <= span[1]:
            continue
        if comment.lock not in model.locks and comment.lock not in module_locks:
            model.guard_errors.append(
                (
                    comment.line,
                    comment.col,
                    f"guarded-by names unknown lock {comment.lock!r} "
                    f"(class {model.name} has "
                    f"{sorted(model.locks) or 'no locks'})",
                )
            )
            continue
        method = methods_by_line.get(comment.target_line)
        if method is not None:
            model.method_guards[method] = comment.lock
            continue
        bound = False
        for lo, hi, fields in assigns:
            if lo <= comment.target_line <= hi:
                for name in fields:
                    model.field_guards[name] = comment.lock
                bound = True
                break
        if not bound:
            model.guard_errors.append(
                (
                    comment.line,
                    comment.col,
                    "guarded-by comment does not target a field assignment "
                    "or a method definition",
                )
            )


def build_module_model(ctx: FileContext) -> ModuleModel:
    """Build the lock model of one parsed file."""
    model = ModuleModel()
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign):
            if _is_lock_factory(stmt.value) is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        model.module_locks.add(target.id)
    comments = parse_guard_comments(ctx.source)

    def walk_function(
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        owner: ClassModel | ModuleModel,
        class_locks: Dict[str, str],
        initial_held: FrozenSet[str],
        self_name: Optional[str],
    ) -> None:
        walker = _MethodWalker(
            model=owner,
            method=func.name,
            self_name=self_name,
            class_locks=class_locks,
            module_locks=model.module_locks,
            initial_held=initial_held,
        )
        for stmt in func.body:
            walker.visit(stmt)

    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.ClassDef):
            cls = ClassModel(name=stmt.name, node=stmt)
            cls.locks, cls.self_synced = _collect_class_locks(stmt)
            _bind_guards(cls, comments, model.module_locks)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods.add(item.name)
            for item in stmt.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                guard = cls.method_guards.get(item.name)
                walk_function(
                    item,
                    cls,
                    cls.locks,
                    frozenset() if guard is None else frozenset({guard}),
                    _self_name(item),
                )
            model.classes.append(cls)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walk_function(stmt, model, {}, frozenset(), None)
    return model
