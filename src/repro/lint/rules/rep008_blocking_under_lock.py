"""REP008: no blocking call while a lock is held.

A held lock turns one slow operation into a convoy: every other thread
that needs the lock queues behind the syscall.  Under the service's
ThreadingHTTPServer that is the difference between one slow request and
a stalled server.  While any tracked lock (class attribute or module
level) is held, this rule bans:

* process work — ``subprocess.*``, ``os.system``;
* network I/O — ``socket.*``, ``urllib.*``, ``*.urlopen``, and socket
  method calls (``connect``/``accept``/``recv``/``recvfrom``/``sendall``);
* sleeping and unbounded waits — ``time.sleep``, ``*.join()`` with no
  arguments (thread/process join; ``sep.join(parts)`` always has one),
  ``*.get()`` with no positional args unless ``block=False`` or a
  non-None ``timeout`` is given (the blocking queue protocol), and
  ``*.wait()`` with no timeout;
* file I/O — builtin ``open`` and the Path read/write helpers
  (``read_text``/``read_bytes``/``write_text``/``write_bytes``).

Cheap metadata syscalls (``stat``, ``unlink``, ``os.replace``) and raw
stream ``write``/``flush`` are deliberately allowed: the result store
renames and the log emitter serialise exactly those under a lock on
purpose.  Anything else needs a justified suppression.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional, Tuple

from ..findings import Finding
from ..locks import build_module_model, dotted_name
from ..registry import FileContext, Rule, register

_BLOCKING_PREFIXES = ("subprocess.", "socket.", "urllib.")
_BLOCKING_EXACT = frozenset({"time.sleep", "os.system", "open"})
_BLOCKING_ATTRS = frozenset(
    {
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
        "urlopen",
        "connect",
        "accept",
        "recv",
        "recvfrom",
        "sendall",
    }
)


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_none(expr: Optional[ast.expr]) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is None


def _is_false(expr: Optional[ast.expr]) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is False


def _blocking_reason(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is not None:
        if name in _BLOCKING_EXACT:
            return f"{name}()"
        if name.startswith(_BLOCKING_PREFIXES):
            return f"{name}()"
    if not isinstance(call.func, ast.Attribute):
        return None
    attr = call.func.attr
    if attr in _BLOCKING_ATTRS:
        return f".{attr}()"
    if attr == "join" and not call.args and _keyword(call, "timeout") is None:
        return ".join() (thread/process join blocks until exit)"
    if attr == "get" and not call.args:
        timeout = _keyword(call, "timeout")
        if _is_false(_keyword(call, "block")):
            return None
        if timeout is None or _is_none(timeout):
            return ".get() with no timeout (blocking queue get)"
    if attr == "wait" and not call.args:
        timeout = _keyword(call, "timeout")
        if timeout is None or _is_none(timeout):
            return ".wait() with no timeout"
    return None


@register
class BlockingUnderLock(Rule):
    code = "REP008"
    name = "blocking-under-lock"
    summary = (
        "no subprocess/network/sleep/join/unbounded-get/file-I/O calls "
        "while holding a lock"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        model = build_module_model(ctx)
        sites: list[Tuple[ast.Call, FrozenSet[str]]] = list(
            model.calls_under_lock
        )
        for cls in model.classes:
            sites.extend(cls.calls_under_lock)
        for call, held in sites:
            reason = _blocking_reason(call)
            if reason is None:
                continue
            locks = ", ".join(sorted(held))
            yield Finding(
                path=ctx.path,
                line=call.lineno,
                col=call.col_offset,
                code=self.code,
                message=(
                    f"blocking call {reason} while holding {locks}; move "
                    "the slow work outside the critical section"
                ),
            )
