"""REP003: metrics instrument lookups must be hoisted out of loops.

The :mod:`repro.obs.metrics` design contract: accessor calls like
``registry.counter("name", **labels)`` build a key tuple and hash it, so
hot paths look instruments up *once* and call ``inc()``/``observe()`` on
the held reference inside the loop.  PR 2's profile-metrics fold-in
violated this (``metrics.counter("optimal.frontier_insertions", hop=hop)``
inside the per-source loop — one dict lookup and key build per source per
hop); this rule makes the convention mechanical for ``core/``,
``baselines/``, ``forwarding/`` and ``service/`` (whose request loop and
pool supervisor run hot under load).

Detection: a call ``<anything>.counter/gauge/histogram/timer("literal
name", ...)`` lexically inside a ``for``/``while`` *body*.  Loop headers
(the iterable / the condition) run once per loop entry and per test
respectively and are not flagged; neither are comprehensions, whose
element expressions cannot hold a hoisted reference at all.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..findings import Finding
from ..registry import FileContext, Rule, register

_ACCESSORS = frozenset({"counter", "gauge", "histogram", "timer"})


class _LoopBodyVisitor(ast.NodeVisitor):
    """Collect instrument-accessor calls inside for/while bodies."""

    def __init__(self) -> None:
        self.depth = 0
        self.calls: List[ast.Call] = []

    def _visit_loop_body(self, body: List[ast.stmt], orelse: List[ast.stmt]) -> None:
        self.depth += 1
        for stmt in body:
            self.visit(stmt)
        self.depth -= 1
        # else: runs once, after the loop.
        for stmt in orelse:
            self.visit(stmt)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.target)
        self.visit(node.iter)
        self._visit_loop_body(node.body, node.orelse)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self.visit(node.target)
        self.visit(node.iter)
        self._visit_loop_body(node.body, node.orelse)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._visit_loop_body(node.body, node.orelse)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.depth > 0
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _ACCESSORS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            self.calls.append(node)
        self.generic_visit(node)


@register
class HotLoopInstrumentLookup(Rule):
    code = "REP003"
    name = "hot-loop-instrument-lookup"
    summary = (
        "no registry.counter/gauge/histogram/timer lookups inside for/while "
        "bodies in core/, baselines/, forwarding/, service/ — hoist the "
        "reference"
    )
    packages = ("core/", "baselines/", "forwarding/", "service/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        visitor = _LoopBodyVisitor()
        visitor.visit(ctx.tree)
        for call in visitor.calls:
            assert isinstance(call.func, ast.Attribute)
            yield self.finding(
                ctx,
                call,
                f"instrument lookup .{call.func.attr}(...) inside a loop "
                "body; hoist the instrument reference before the loop and "
                "mutate it inside (obs/metrics.py no-op-mode contract)",
            )
