"""REP001: contact-interval membership tests belong in core/contact.py.

The paper's journey semantics hinge on which interval conventions are
closed and which are half-open (the seed's ``contacts_beginning_in``
treated its window as closed at both ends and double-counted boundary
contacts — exactly an inline ``t_beg <= t1`` membership test).  Raw
``<=``/``>=`` comparisons against ``.t_beg``/``.t_end`` scattered through
the tree make those conventions impossible to audit, so they are only
allowed inside ``core/contact.py``, whose helpers (``Contact.active_at``,
``Contact.within``, ``Contact.overlaps``, ``Contact.clipped``) everyone
else must call.

Strict ``<``/``>`` comparisons are deliberately not flagged: ordering
contacts is fine; it is *boundary-including membership* that encodes an
interval convention.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register

_ENDPOINT_ATTRS = frozenset({"t_beg", "t_end"})


@register
class IntervalDiscipline(Rule):
    code = "REP001"
    name = "interval-discipline"
    summary = (
        "no raw <=/>= membership tests on contact endpoints outside "
        "core/contact.py's helpers"
    )
    packages = None  # the whole repro package
    exempt = ("core/contact.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.LtE, ast.GtE)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(operand, ast.Attribute)
                and operand.attr in _ENDPOINT_ATTRS
                for operand in operands
            ):
                yield self.finding(
                    ctx,
                    node,
                    "raw <=/>= membership test on a contact endpoint; use "
                    "Contact.active_at/within/overlaps/clipped (core/contact.py) "
                    "so the half-open vs closed convention lives in one place",
                )
