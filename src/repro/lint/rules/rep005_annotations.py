"""REP005: public functions in core/ carry complete type annotations.

``mypy --strict`` enforces this globally in CI, but only for trees where
mypy runs; this rule keeps the core package self-policing from the test
suite alone (the container running tier-1 need not have mypy).  A
function is *public* when its name has no leading underscore and, for
methods, the enclosing class is public too; ``__init__`` of a public
class counts as public.  Complete means: every parameter except
``self``/``cls`` (first parameter of a non-static method) is annotated,
including ``*args``/``**kwargs``, and the return type is spelled —
``-> None`` included.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from ..findings import Finding
from ..registry import FileContext, Rule, register

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_staticmethod(node: _FunctionNode) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod"
        for dec in node.decorator_list
    )


def _missing_annotations(node: _FunctionNode, is_method: bool) -> List[str]:
    missing: List[str] = []
    positional = list(node.args.posonlyargs) + list(node.args.args)
    if is_method and not _is_staticmethod(node) and positional:
        positional = positional[1:]  # self / cls
    for arg in positional + list(node.args.kwonlyargs):
        if arg.annotation is None:
            missing.append(arg.arg)
    if node.args.vararg is not None and node.args.vararg.annotation is None:
        missing.append("*" + node.args.vararg.arg)
    if node.args.kwarg is not None and node.args.kwarg.annotation is None:
        missing.append("**" + node.args.kwarg.arg)
    return missing


@register
class PublicAnnotations(Rule):
    code = "REP005"
    name = "public-annotations"
    summary = "public functions in core/ must have complete type annotations"
    packages = ("core/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._walk_body(ctx, ctx.tree.body, class_name=None)

    def _walk_body(
        self,
        ctx: FileContext,
        body: List[ast.stmt],
        class_name: "str | None",
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                yield from self._walk_body(ctx, stmt.body, class_name=stmt.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, stmt, class_name)
                # Nested defs are implementation details; not descended.

    def _check_function(
        self,
        ctx: FileContext,
        node: _FunctionNode,
        class_name: "str | None",
    ) -> Iterator[Finding]:
        if class_name is not None and class_name.startswith("_"):
            return
        if node.name.startswith("_") and node.name != "__init__":
            return
        if node.name == "__init__" and class_name is None:
            return
        qualified = node.name if class_name is None else f"{class_name}.{node.name}"
        missing = _missing_annotations(node, is_method=class_name is not None)
        if missing:
            yield self.finding(
                ctx,
                node,
                f"public function {qualified!r} has unannotated "
                f"parameter(s): {', '.join(missing)}",
            )
        if node.returns is None:
            yield self.finding(
                ctx,
                node,
                f"public function {qualified!r} is missing a return "
                "annotation (-> None counts)",
            )
