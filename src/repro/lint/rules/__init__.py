"""The domain rules reprolint ships.

Each module defines and registers one rule; importing this package (which
the engine does) populates the registry.  The codes:

* REP001 — interval discipline: no raw ``<=``/``>=`` membership tests on
  contact endpoint attributes outside ``core/contact.py``.
* REP002 — no float-literal ``==``/``!=`` in ``core/`` and ``analysis/``
  outside the pinned-equality helpers in ``core/floats.py``.
* REP003 — obs hot-loop discipline: no instrument lookups inside loop
  bodies in ``core/``, ``baselines/``, ``forwarding/``.
* REP004 — determinism: no wall clocks or global RNG state in ``core/``,
  ``random_temporal/``, ``mobility/``.
* REP005 — public functions in ``core/`` carry complete annotations.
* REP006 — guarded-by discipline: lock-guarded fields (declared via
  ``# guarded-by: <lock>`` or inferred from dominant locked access) are
  only touched with the lock held.
* REP007 — lock ordering: the per-class acquisition graph has no cycles
  and no plain-Lock re-entry.
* REP008 — no blocking call (subprocess/network/sleep/join/unbounded
  get/file I/O) while holding a lock.

REP000 (suppression hygiene) is implemented by the engine itself and is
not a registrable rule.
"""

from __future__ import annotations

from . import (  # noqa: F401  (import for the registration side effect)
    rep001_intervals,
    rep002_float_equality,
    rep003_hot_loops,
    rep004_determinism,
    rep005_annotations,
    rep006_guarded_fields,
    rep007_lock_order,
    rep008_blocking_under_lock,
)
