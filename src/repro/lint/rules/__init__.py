"""The domain rules reprolint ships.

Each module defines and registers one rule; importing this package (which
the engine does) populates the registry.  The codes:

* REP001 — interval discipline: no raw ``<=``/``>=`` membership tests on
  contact endpoint attributes outside ``core/contact.py``.
* REP002 — no float-literal ``==``/``!=`` in ``core/`` and ``analysis/``
  outside the pinned-equality helpers in ``core/floats.py``.
* REP003 — obs hot-loop discipline: no instrument lookups inside loop
  bodies in ``core/``, ``baselines/``, ``forwarding/``.
* REP004 — determinism: no wall clocks or global RNG state in ``core/``,
  ``random_temporal/``, ``mobility/``.
* REP005 — public functions in ``core/`` carry complete annotations.

REP000 (suppression hygiene) is implemented by the engine itself and is
not a registrable rule.
"""

from __future__ import annotations

from . import (  # noqa: F401  (import for the registration side effect)
    rep001_intervals,
    rep002_float_equality,
    rep003_hot_loops,
    rep004_determinism,
    rep005_annotations,
)
