"""REP007: lock acquisition order must be acyclic.

Deadlocks need two ingredients: more than one lock, and two code paths
that take them in opposite orders.  This rule builds, per class, the
"acquires B while holding A" graph — from direct ``with`` nesting and
transitively through same-class helper calls (``self.m()`` under a lock
adds edges to every lock ``m`` may take) — and reports:

* **cycles** (``_a -> _b`` on one path, ``_b -> _a`` on another): the
  classic ABBA deadlock, latent until two threads race;
* **re-entry** (``with self._lock:`` reached, directly or via a helper,
  while ``_lock`` is already held) when the lock was created as a plain
  ``threading.Lock``: a plain lock self-deadlocks on re-entry.  Locks
  created as ``RLock`` are exempt from re-entry findings.

The static graph is the compile-time twin of the runtime lock-order
graph :mod:`repro.obs.lockwatch` observes under real traffic.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from ..findings import Finding
from ..locks import ClassModel, build_module_model
from ..registry import FileContext, Rule, register


def _transitive_acquired(cls: ClassModel) -> Dict[str, Set[str]]:
    """Locks each method may acquire, following same-class calls."""
    acquired: Dict[str, Set[str]] = {name: set() for name in cls.methods}
    for acq in cls.acquisitions:
        if acq.method is not None:
            acquired.setdefault(acq.method, set()).add(acq.lock)
    calls: Dict[str, Set[str]] = {}
    for call in cls.self_calls:
        if call.callee in cls.methods:
            calls.setdefault(call.method, set()).add(call.callee)
    changed = True
    while changed:
        changed = False
        for method, callees in calls.items():
            bucket = acquired.setdefault(method, set())
            before = len(bucket)
            for callee in callees:
                bucket |= acquired.get(callee, set())
            changed = changed or len(bucket) != before
    return acquired


def _edges(
    cls: ClassModel, acquired: Dict[str, Set[str]]
) -> Dict[Tuple[str, str], Tuple[int, int, str]]:
    """held -> acquired edges, each with an example (line, col, via)."""
    edges: Dict[Tuple[str, str], Tuple[int, int, str]] = {}
    for acq in cls.acquisitions:
        for held in acq.held_before:
            edges.setdefault(
                (held, acq.lock), (acq.line, acq.col, "with statement")
            )
    for call in cls.self_calls:
        if call.callee not in cls.methods:
            continue
        for held in call.held:
            for lock in acquired.get(call.callee, ()):  # noqa: B007
                edges.setdefault(
                    (held, lock),
                    (call.line, call.col, f"call to self.{call.callee}()"),
                )
    return edges


def _find_cycle(
    start: str, graph: Dict[str, Set[str]]
) -> "List[str] | None":
    """A lock cycle through ``start``, as [start, ..., start], or None."""
    stack: List[Tuple[str, List[str]]] = [(start, [start])]
    seen: Set[str] = set()
    while stack:
        node, path = stack.pop()
        for succ in sorted(graph.get(node, ())):
            if succ == start:
                return path + [start]
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, path + [succ]))
    return None


@register
class LockOrder(Rule):
    code = "REP007"
    name = "lock-order"
    summary = (
        "per-class lock-acquisition graph (with statements + helper "
        "calls) must have no cycles and no plain-Lock re-entry"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        model = build_module_model(ctx)
        for cls in model.classes:
            acquired = _transitive_acquired(cls)
            edges = _edges(cls, acquired)
            graph: Dict[str, Set[str]] = {}
            for (held, lock), site in sorted(edges.items()):
                if held == lock:
                    if cls.locks.get(lock) == "RLock":
                        continue
                    line, col, via = site
                    yield Finding(
                        path=ctx.path,
                        line=line,
                        col=col,
                        code=self.code,
                        message=(
                            f"{cls.name}: {lock!r} re-acquired while held "
                            f"(via {via}); a plain Lock self-deadlocks here "
                            "-- restructure or use RLock"
                        ),
                    )
                    continue
                graph.setdefault(held, set()).add(lock)
            reported: Set[FrozenSet[str]] = set()
            for lock in sorted(graph):
                cycle = _find_cycle(lock, graph)
                if cycle is None:
                    continue
                key = frozenset(cycle)
                if key in reported:
                    continue
                reported.add(key)
                first_hop = edges[(cycle[0], cycle[1])]
                yield Finding(
                    path=ctx.path,
                    line=first_hop[0],
                    col=first_hop[1],
                    code=self.code,
                    message=(
                        f"{cls.name}: lock-order cycle "
                        f"{' -> '.join(cycle)}; two threads taking these "
                        "in opposite orders deadlock"
                    ),
                )
