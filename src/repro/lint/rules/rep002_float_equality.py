"""REP002: no float-literal equality in core/ and analysis/.

Delay values, CDF levels and frontier coordinates are floats that flow
through arithmetic; comparing them to a float literal with ``==``/``!=``
is either a bug (rounding drift) or an intentional *pinned* equality
against a sentinel that arithmetic never touched.  The second case must
be spelled through :func:`repro.core.floats.pinned_equal` (or its
companions), which documents the intent and is the rule's one exempt
module.

Only comparisons against float *literals* are flagged: variable-to-
variable float equality cannot be recognised syntactically, and the
frontier DP legitimately pins equality between untouched coordinates.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, Rule, register


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    # A negated literal (-1.0) parses as UnaryOp(USub, Constant).
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


@register
class FloatLiteralEquality(Rule):
    code = "REP002"
    name = "float-literal-equality"
    summary = (
        "no ==/!= against float literals in core/ and analysis/ outside "
        "the pinned-equality helpers (core/floats.py)"
    )
    packages = ("core/", "analysis/")
    exempt = ("core/floats.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_float_literal(operand) for operand in operands):
                yield self.finding(
                    ctx,
                    node,
                    "==/!= against a float literal; if the equality is "
                    "intentional (an untouched sentinel), spell it with "
                    "repro.core.floats.pinned_equal / is_pinned_zero",
                )
