"""REP006: guarded fields are only touched with their lock held.

The service layer keeps its shared state (the single-flight job table,
the worker pool's pending deque, the metrics dicts) correct through one
convention: every field that belongs to a lock is read and written under
that lock, full stop.  A field becomes *guarded* in one of two ways:

* **declared** — a ``# guarded-by: <lock>`` comment on the assignment
  that initialises it (or on a ``def`` line, making the whole method a
  helper that must be called with the lock held — the body is then
  analysed as if the lock were held throughout);
* **inferred** — no declaration, but the access pattern is unambiguous:
  at least two accesses under exactly one lock and at least 75 % of all
  accesses under it.  The stray unlocked access in such a class is far
  more likely a bug than a design.

Violations: touching a guarded field without the lock, calling a
method-guarded helper without the lock, and malformed declarations
(unknown lock name, comment bound to nothing).  ``__init__``/``__new__``
are exempt — the object is not yet shared while it is being built.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..findings import Finding
from ..locks import ClassModel, build_module_model
from ..registry import FileContext, Rule, register

#: methods where the object cannot be shared yet (unpickling included:
#: ``__setstate__`` populates a fresh object before anyone holds it).
_CONSTRUCTION = frozenset({"__init__", "__new__", "__setstate__"})

#: inference thresholds: a field is inferred guarded by lock L when it is
#: accessed under L at least _MIN_LOCKED times and those accesses make up
#: at least _DOMINANCE of all accesses outside construction.
_MIN_LOCKED = 2
_DOMINANCE = 0.75


def _inferred_guards(cls: ClassModel) -> Dict[str, str]:
    """Fields whose accesses are dominated by a single lock."""
    per_field: Dict[str, List[Tuple[str, ...]]] = {}
    for access in cls.accesses:
        if access.method in _CONSTRUCTION:
            continue
        per_field.setdefault(access.field, []).append(tuple(sorted(access.held)))
    guards: Dict[str, str] = {}
    for name, held_sets in per_field.items():
        if name in cls.field_guards or name in cls.self_synced:
            continue
        counts: Dict[str, int] = {}
        for held in held_sets:
            for lock in held:
                counts[lock] = counts.get(lock, 0) + 1
        if not counts:
            continue
        best = max(counts, key=lambda lock: (counts[lock], lock))
        covered = counts[best]
        if covered >= _MIN_LOCKED and covered >= _DOMINANCE * len(held_sets):
            guards[name] = best
    return guards


@register
class GuardedFields(Rule):
    code = "REP006"
    name = "guarded-fields"
    summary = (
        "fields declared (# guarded-by: <lock>) or inferred lock-guarded "
        "must only be accessed with that lock held"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        model = build_module_model(ctx)
        for cls in model.classes:
            for line, col, message in cls.guard_errors:
                yield Finding(
                    path=ctx.path,
                    line=line,
                    col=col,
                    code=self.code,
                    message=message,
                )
            inferred = _inferred_guards(cls)
            for access in cls.accesses:
                if access.method in _CONSTRUCTION:
                    continue
                declared = cls.field_guards.get(access.field)
                lock = declared or inferred.get(access.field)
                if lock is None or lock in access.held:
                    continue
                origin = "declared" if declared else "inferred"
                verb = "written" if access.is_store else "read"
                yield Finding(
                    path=ctx.path,
                    line=access.line,
                    col=access.col,
                    code=self.code,
                    message=(
                        f"{cls.name}.{access.field} is guarded by "
                        f"{lock!r} ({origin}) but {verb} in "
                        f"{access.method}() without it"
                    ),
                )
            for call in cls.self_calls:
                lock = cls.method_guards.get(call.callee)
                if lock is None or lock in call.held:
                    continue
                if call.method in _CONSTRUCTION:
                    continue
                yield Finding(
                    path=ctx.path,
                    line=call.line,
                    col=call.col,
                    code=self.code,
                    message=(
                        f"{cls.name}.{call.callee}() requires {lock!r} "
                        f"(guarded-by on its def) but is called from "
                        f"{call.method}() without it"
                    ),
                )
