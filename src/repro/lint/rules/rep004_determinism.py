"""REP004: core computations must be deterministic and clock-free.

The §3 phase-transition claims are Monte-Carlo estimates over the
random-temporal generators; they are reproducible only because every
sampling path threads an explicitly seeded ``np.random.Generator``.
Wall-clock reads and global RNG state would silently break that (and the
content-addressed profile cache, which assumes identical inputs produce
identical outputs), so in ``core/``, ``random_temporal/``, ``mobility/``
and ``service/`` (whose job keys and result store inherit the cache's
contract; deadlines there use the monotonic clock) this rule bans:

* wall clocks — ``time.time()``, ``time.time_ns()``, ``datetime.now()``
  and friends (clocks belong to :mod:`repro.obs`);
* the module-level ``random`` API (``random.random()``, ``random.seed()``,
  ...) — instantiating a seeded ``random.Random(seed)`` is fine;
* the global-state ``np.random`` API (``np.random.normal()``,
  ``np.random.seed()``, ...) and *unseeded* ``np.random.default_rng()`` —
  ``default_rng(seed)`` and the capitalised constructors
  (``Generator``, ``SeedSequence``, ``PCG64``, ...) are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..findings import Finding
from ..registry import FileContext, Rule, register

_WALL_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


def _dotted_name(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register
class Determinism(Rule):
    code = "REP004"
    name = "determinism"
    summary = (
        "no wall clocks, module-level random, or global np.random state in "
        "core/, random_temporal/, mobility/, service/"
    )
    packages = ("core/", "random_temporal/", "mobility/", "service/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name is None:
                continue
            if name in _WALL_CLOCKS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read {name}() in deterministic code; "
                    "clocks belong to repro.obs",
                )
                continue
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1][:1].islower()
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() uses the module-level global RNG; thread an "
                    "explicitly seeded random.Random or np.random.Generator",
                )
                continue
            if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
                attr = parts[2]
                if attr == "default_rng":
                    if not node.args:
                        yield self.finding(
                            ctx,
                            node,
                            "np.random.default_rng() without a seed is "
                            "non-deterministic; pass an explicit seed "
                            "(or seed sequence)",
                        )
                elif attr[:1].islower():
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() draws from numpy's global RNG state; use "
                        "a seeded np.random.default_rng(...) Generator",
                    )
