"""The unit of reprolint output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Ordering is (path, line, col, code) so sorted findings read in file
    order, which both reporters rely on.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The conventional ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> "dict[str, object]":
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
