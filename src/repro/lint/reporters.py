"""Reporters: render findings as human text or machine JSON."""

from __future__ import annotations

import json
from typing import Dict, Sequence

from .findings import Finding
from .registry import REGISTRY_VERSION, rule_codes

JSON_SCHEMA = "repro.lint/1"

#: the engine's suppression-hygiene code; listed in the registry block
#: alongside the registered rules (it is always active).  Kept here as a
#: literal rather than imported from the engine to avoid a module cycle.
_HYGIENE_CODE = "REP000"


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """GCC-style ``path:line:col: CODE message`` lines plus a summary."""
    lines = [finding.render() for finding in findings]
    noun = "file" if files_checked == 1 else "files"
    if findings:
        counts = count_by_code(findings)
        breakdown = ", ".join(f"{code} x{n}" for code, n in sorted(counts.items()))
        lines.append(
            f"{len(findings)} finding(s) in {files_checked} {noun} ({breakdown})"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """A stable JSON document (schema ``repro.lint/1``).

    The ``registry`` block records which rule set produced the report:
    the registry version plus the sorted active codes.  Consumers can
    compare reports across checkouts and tell "this file became clean"
    from "this rule did not exist yet".
    """
    document = {
        "schema": JSON_SCHEMA,
        "registry": {
            "version": REGISTRY_VERSION,
            "rules": [_HYGIENE_CODE] + rule_codes(),
        },
        "files_checked": files_checked,
        "counts": count_by_code(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def count_by_code(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return counts
