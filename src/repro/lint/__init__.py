"""reprolint: repo-specific static analysis for the repro package.

The type system cannot see the conventions the paper reproduction rests
on — half-open interval semantics, determinism of the random-temporal
generators, the obs layer's "no-op mode costs nothing" discipline.  This
package turns them into an AST-based gate: a rule registry (REP001..),
line suppressions with mandatory justifications, text/JSON reporters and
a CLI (``python -m repro.lint <paths>``).

Programmatic use::

    from repro.lint import lint_paths, lint_source

    findings, files = lint_paths(["src"])          # real trees
    findings = lint_source(code, "src/repro/core/x.py")  # fixtures
"""

from __future__ import annotations

from .engine import (
    HYGIENE_CODE,
    LintError,
    Suppression,
    lint_file,
    lint_paths,
    lint_source,
    module_path,
    parse_suppressions,
)
from .findings import Finding
from .registry import (
    REGISTRY_VERSION,
    FileContext,
    Rule,
    get_rules,
    register,
    rule_codes,
)
from .reporters import render_json, render_text

__all__ = [
    "HYGIENE_CODE",
    "REGISTRY_VERSION",
    "FileContext",
    "Finding",
    "LintError",
    "Rule",
    "Suppression",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_path",
    "parse_suppressions",
    "register",
    "render_json",
    "render_text",
    "rule_codes",
]
