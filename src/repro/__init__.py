"""repro: a reproduction of "The Diameter of Opportunistic Mobile Networks".

A. Chaintreau, A. Mtibaa, L. Massoulié, C. Diot — ACM CoNEXT 2007.

The package computes, exactly and for all starting times at once, the
delay-optimal multi-hop paths made available by opportunistic contacts in
a mobility trace, and from them the network's (1 - eps)-diameter: the
number of relay hops after which extra relays stop improving delivery, at
every time scale.  It also contains the paper's random-temporal-network
analysis (phase transition for constrained paths), synthetic stand-ins for
the four mobility data sets the paper measured, baseline algorithms, and
an opportunistic-forwarding simulator demonstrating the design implication
(hop caps at the diameter are almost free).

Quickstart::

    import numpy as np
    from repro import core, traces

    net = traces.datasets.infocom05(seed=1)
    profiles = core.compute_profiles(net, hop_bounds=(1, 2, 3, 4, 5, 6))
    grid = np.geomspace(120, 7 * 86400, 50)
    result = core.diameter(profiles, grid, eps=0.01)
    print("99%-diameter:", result.value, "hops")
"""

from . import analysis, baselines, core, forwarding, mobility, obs, random_temporal, traces
from .core import (
    Contact,
    ContactPath,
    DeliveryFunction,
    TemporalNetwork,
    compute_profiles,
    delay_cdf,
    diameter,
)

__version__ = "1.0.0"

__all__ = [
    "Contact",
    "ContactPath",
    "DeliveryFunction",
    "TemporalNetwork",
    "analysis",
    "baselines",
    "compute_profiles",
    "core",
    "delay_cdf",
    "diameter",
    "forwarding",
    "mobility",
    "obs",
    "random_temporal",
    "traces",
]
