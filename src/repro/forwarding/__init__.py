"""Opportunistic forwarding: simulator plus classic algorithms."""

from .algorithms import DirectDelivery, Epidemic, SprayAndWait, TwoHopRelay
from .simulator import (
    Copy,
    DeliveryReport,
    ForwardingAlgorithm,
    Message,
    WorkloadResult,
    simulate_forwarding,
    simulate_workload,
)

__all__ = [
    "Copy",
    "DeliveryReport",
    "DirectDelivery",
    "Epidemic",
    "ForwardingAlgorithm",
    "Message",
    "SprayAndWait",
    "TwoHopRelay",
    "WorkloadResult",
    "simulate_forwarding",
    "simulate_workload",
]
