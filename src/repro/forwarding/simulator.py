"""Event-driven opportunistic forwarding simulator.

The paper's punchline for system designers: "messages can be discarded
after a few number of hops without occurring more than a marginal
performance cost" (Section 7).  This simulator makes that checkable: it
replays a contact trace, lets a forwarding algorithm decide at every
transfer opportunity whether to hand over a copy, and reports delivery
delay, hop count and copy cost.

The engine is chronological and exact under the long-contact semantics:
every (holder, contact) pair becomes a transfer opportunity at
``max(time copy received, contact begin)`` provided that is within the
contact; opportunities are processed through a global time-ordered queue,
so chains across overlapping contacts occur naturally.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from ..core.contact import Contact, Node
from ..core.temporal_network import TemporalNetwork
from ..obs import get_obs

INFINITY = float("inf")


@dataclass(frozen=True)
class Message:
    """A unicast message to be forwarded opportunistically."""

    source: Node
    destination: Node
    created_at: float

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("source and destination must differ")


@dataclass
class Copy:
    """One node's copy of the message."""

    node: Node
    received_at: float
    hops: int
    #: algorithm-owned payload (e.g. spray tokens)
    tokens: int = 0


class ForwardingAlgorithm(Protocol):
    """Decision logic consulted at every transfer opportunity."""

    def initial_tokens(self, message: Message) -> int:
        """Tokens granted to the source copy (0 if unused)."""
        ...

    def should_transfer(
        self, message: Message, giver: Copy, receiver: Node, time: float
    ) -> bool:
        """Whether the giver hands a copy to the receiver now."""
        ...

    def split_tokens(self, giver: Copy) -> Tuple[int, int]:
        """(tokens kept, tokens given) when a transfer happens."""
        ...


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of forwarding one message under one algorithm."""

    message: Message
    delivered: bool
    delivery_time: float
    hops: Optional[int]
    copies: int
    transmissions: int

    @property
    def delay(self) -> float:
        if not self.delivered:
            return INFINITY
        return self.delivery_time - self.message.created_at


class _NodeContacts:
    """Per-node contact opportunities sorted by begin time."""

    def __init__(self, net: TemporalNetwork) -> None:
        self._by_node: Dict[Node, List[Tuple[float, float, Node]]] = {
            node: [] for node in net.nodes
        }
        for c in net.contacts:
            self._by_node[c.u].append((c.t_beg, c.t_end, c.v))
            if not net.directed:
                self._by_node[c.v].append((c.t_beg, c.t_end, c.u))
        self._ends: Dict[Node, List[float]] = {}
        for node, entries in self._by_node.items():
            entries.sort(key=lambda e: (e[1], e[0]))  # by end time
            self._ends[node] = [e[1] for e in entries]

    def usable_after(self, node: Node, t: float) -> List[Tuple[float, float, Node]]:
        """Contacts of ``node`` still usable at or after time t."""
        idx = bisect_left(self._ends[node], t)
        return self._by_node[node][idx:]


def simulate_forwarding(
    net: TemporalNetwork,
    message: Message,
    algorithm: ForwardingAlgorithm,
    horizon: Optional[float] = None,
) -> DeliveryReport:
    """Forward one message through the trace under the given algorithm."""
    if message.source not in net:
        raise KeyError(f"unknown source {message.source!r}")
    if message.destination not in net:
        raise KeyError(f"unknown destination {message.destination!r}")
    deadline = horizon if horizon is not None else INFINITY
    contacts = _NodeContacts(net)
    copies: Dict[Node, Copy] = {
        message.source: Copy(
            node=message.source,
            received_at=message.created_at,
            hops=0,
            tokens=algorithm.initial_tokens(message),
        )
    }
    transmissions = 0
    counter = 0
    obs = get_obs()
    track = obs.enabled
    popped = 0
    stale = 0
    duplicates = 0
    declined = 0

    def flush_metrics(delivered: bool) -> None:
        metrics = obs.metrics
        metrics.counter("forwarding.messages").inc()
        metrics.counter("forwarding.opportunities").inc(popped)
        metrics.counter("forwarding.stale_skips").inc(stale)
        metrics.counter("forwarding.duplicate_skips").inc(duplicates)
        metrics.counter("forwarding.declined").inc(declined)
        metrics.counter("forwarding.transmissions").inc(transmissions)
        if delivered:
            metrics.counter("forwarding.delivered").inc()

    heap: List[Tuple[float, int, Node, Node, float]] = []

    def enqueue(node: Node, from_time: float) -> None:
        nonlocal counter
        for t_beg, t_end, peer in contacts.usable_after(node, from_time):
            opportunity = from_time if from_time > t_beg else t_beg
            if opportunity > deadline:
                continue
            heap.append((opportunity, counter, node, peer, t_end))
            counter += 1
    # (heapify once after the bulk insert of the source's opportunities)
    enqueue(message.source, message.created_at)
    heapq.heapify(heap)

    while heap:
        time, _, giver_node, receiver, t_end = heapq.heappop(heap)
        if time > deadline:
            break
        if track:
            popped += 1
        giver = copies.get(giver_node)
        if giver is None or giver.received_at > t_end:
            if track:
                stale += 1
            continue  # stale opportunity
        if receiver in copies:
            if track:
                duplicates += 1
            continue
        if not algorithm.should_transfer(message, giver, receiver, time):
            if track:
                declined += 1
            continue
        kept, given = algorithm.split_tokens(giver)
        giver.tokens = kept
        copies[receiver] = Copy(
            node=receiver, received_at=time, hops=giver.hops + 1, tokens=given
        )
        transmissions += 1
        if receiver == message.destination:
            if track:
                flush_metrics(delivered=True)
            return DeliveryReport(
                message=message,
                delivered=True,
                delivery_time=time,
                hops=giver.hops + 1,
                copies=len(copies),
                transmissions=transmissions,
            )
        for t_beg2, t_end2, peer2 in contacts.usable_after(receiver, time):
            opportunity = time if time > t_beg2 else t_beg2
            if opportunity <= deadline:
                heapq.heappush(
                    heap, (opportunity, counter, receiver, peer2, t_end2)
                )
                counter += 1

    if track:
        flush_metrics(delivered=False)
    return DeliveryReport(
        message=message,
        delivered=False,
        delivery_time=INFINITY,
        hops=None,
        copies=len(copies),
        transmissions=transmissions,
    )


@dataclass(frozen=True)
class WorkloadResult:
    """Aggregate metrics over a batch of messages."""

    reports: Tuple[DeliveryReport, ...]

    @property
    def success_rate(self) -> float:
        if not self.reports:
            return 0.0
        return sum(1 for r in self.reports if r.delivered) / len(self.reports)

    def mean_delay(self) -> float:
        """Mean delay over *delivered* messages (nan when none)."""
        delays = [r.delay for r in self.reports if r.delivered]
        if not delays:
            return float("nan")
        return sum(delays) / len(delays)

    def mean_copies(self) -> float:
        if not self.reports:
            return float("nan")
        return sum(r.copies for r in self.reports) / len(self.reports)

    def mean_hops(self) -> float:
        hops = [r.hops for r in self.reports if r.delivered]
        if not hops:
            return float("nan")
        return sum(hops) / len(hops)


def simulate_workload(
    net: TemporalNetwork,
    messages: "List[Message]",
    algorithm: ForwardingAlgorithm,
    horizon: Optional[float] = None,
) -> WorkloadResult:
    """Forward a batch of messages and aggregate the outcomes."""
    obs = get_obs()
    with obs.span(
        "forwarding.simulate_workload",
        messages=len(messages),
        algorithm=type(algorithm).__name__,
    ) as span:
        result = WorkloadResult(
            tuple(
                simulate_forwarding(net, message, algorithm, horizon)
                for message in messages
            )
        )
        if obs.enabled:
            span.set(success_rate=result.success_rate)
    return result
