"""Forwarding algorithms for the opportunistic simulator.

These are the classic strategies the paper's introduction motivates
("Most of the forwarding algorithms proposed ... includes for each packet
a time-out and a maximum number of hops" — Section 2).  The hop-capped
epidemic variant is the one the diameter result speaks to directly: with
the cap at the network diameter its delivery is within eps of uncapped
flooding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.contact import Node
from .simulator import Copy, Message

INFINITY = float("inf")


@dataclass(frozen=True)
class Epidemic:
    """Flooding, optionally capped by hop count and/or message age.

    ``max_hops=None`` and ``timeout=None`` give pure flooding: the
    delay-optimal but most expensive strategy, and the reference the
    paper's diameter definition compares against.
    """

    max_hops: Optional[int] = None
    timeout: Optional[float] = None

    def initial_tokens(self, message: Message) -> int:
        return 0

    def should_transfer(
        self, message: Message, giver: Copy, receiver: Node, time: float
    ) -> bool:
        if self.max_hops is not None and giver.hops >= self.max_hops:
            return False
        if self.timeout is not None and time - message.created_at > self.timeout:
            return False
        return True

    def split_tokens(self, giver: Copy) -> Tuple[int, int]:
        return (giver.tokens, 0)


@dataclass(frozen=True)
class DirectDelivery:
    """The source keeps the message until it meets the destination:
    1-hop forwarding, the cheapest possible strategy."""

    def initial_tokens(self, message: Message) -> int:
        return 0

    def should_transfer(
        self, message: Message, giver: Copy, receiver: Node, time: float
    ) -> bool:
        return receiver == message.destination

    def split_tokens(self, giver: Copy) -> Tuple[int, int]:
        return (giver.tokens, 0)


@dataclass(frozen=True)
class TwoHopRelay:
    """Grossglauser-Tse two-hop relaying: the source hands copies to any
    node it meets; relays hand over only to the destination."""

    def initial_tokens(self, message: Message) -> int:
        return 0

    def should_transfer(
        self, message: Message, giver: Copy, receiver: Node, time: float
    ) -> bool:
        if receiver == message.destination:
            return True
        return giver.hops == 0

    def split_tokens(self, giver: Copy) -> Tuple[int, int]:
        return (giver.tokens, 0)


@dataclass(frozen=True)
class SprayAndWait:
    """Binary spray-and-wait with L initial copies.

    A holder with more than one token gives half away on any contact; a
    holder with a single token waits for the destination.  Bounds the copy
    cost at L while keeping multi-hop reach.
    """

    copies: int = 8

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise ValueError("need at least one copy token")

    def initial_tokens(self, message: Message) -> int:
        return self.copies

    def should_transfer(
        self, message: Message, giver: Copy, receiver: Node, time: float
    ) -> bool:
        if receiver == message.destination:
            return True
        return giver.tokens > 1

    def split_tokens(self, giver: Copy) -> Tuple[int, int]:
        if giver.tokens <= 1:
            return (giver.tokens, 0)
        given = giver.tokens // 2
        return (giver.tokens - given, given)
