"""Command-line front end: ``python -m repro`` or the ``repro`` script.

Subcommands:

* ``generate`` — synthesise one of the four data sets to a trace file;
* ``summarize`` — print the Table 1 row of a trace file;
* ``diameter`` — compute the (1 - eps)-diameter of a trace file;
* ``delay-cdf`` — print the delay CDF per hop bound for a trace file;
* ``theory`` — print the Section 3 constants for a contact rate.

Observability: the global ``--metrics PATH``, ``--trace PATH`` and
``--manifest PATH`` flags (before the subcommand) activate the
:mod:`repro.obs` layer for the whole invocation and write, respectively,
the metrics snapshot (JSON), the span trace (JSONL) and the run manifest
(JSON) after the command finishes::

    repro --metrics m.json --trace spans.jsonl --manifest run.json \
        diameter trace.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

import numpy as np

from .analysis.grids import format_duration, paper_delay_grid
from .analysis.tables import render_table
from .core.cache import load_or_compute
from .core.delay_cdf import delay_cdf
from .core.diameter import diameter
from .core.optimal import ENGINES, PathProfileSet, compute_profiles
from .core.temporal_network import TemporalNetwork
from .random_temporal import theory
from .traces import datasets
from .traces.format import read_contacts, write_contacts
from .traces.stats import summarize


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("trace", help="contact-trace file (u v t_beg t_end lines)")


def positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1 (workers, pool sizes)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def log_level(text: str) -> str:
    """argparse type for ``--log-level`` (validated like positive_int)."""
    from .obs.log import coerce_level

    try:
        return coerce_level(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def add_log_level_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--log-level`` flag (default: ``$REPRO_LOG`` or info)."""
    parser.add_argument(
        "--log-level",
        type=log_level,
        default=None,
        metavar="LEVEL",
        help="structured-log threshold: debug, info, warning or error "
             "(default: $REPRO_LOG, else info)",
    )


def configure_logging_from(args: argparse.Namespace) -> str:
    """Apply ``--log-level`` / ``REPRO_LOG`` to the structured loggers."""
    from .obs.log import configure, level_from_env

    level = getattr(args, "log_level", None)
    if level is None:
        level = level_from_env()
    return configure(level=level)


def _cmd_generate(args: argparse.Namespace) -> int:
    net = datasets.build(args.dataset, seed=args.seed, scale=args.scale)
    write_contacts(net, args.output, header=f"synthetic {args.dataset}")
    print(f"wrote {net.num_contacts} contacts / {len(net)} devices to {args.output}")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    net = read_contacts(args.trace)
    row = summarize(net, name=args.trace).as_row()
    print(
        render_table(
            ["trace", "days", "granularity", "devices", "contacts", "rate/dev/h"],
            [row],
        )
    )
    return 0


def _grid(args: argparse.Namespace) -> np.ndarray:
    return paper_delay_grid(points=args.grid_points)


def _profiles(
    net: TemporalNetwork,
    bounds: Tuple[int, ...],
    args: argparse.Namespace,
) -> PathProfileSet:
    """compute_profiles honouring --cache-dir / --workers / --shards /
    --engine."""
    shards = int(getattr(args, "shards", 1) or 1)
    engine = getattr(args, "engine", "auto") or "auto"
    if shards > 1:
        from .core.shards import compute_profiles_sharded

        # Sharded output is byte-identical to the unsharded path (the
        # shards partition the sorted roster); with --cache-dir each
        # shard is a durable checkpoint a re-run resumes from.
        return compute_profiles_sharded(
            net,
            shards=shards,
            hop_bounds=bounds,
            workers=args.workers,
            cache_dir=getattr(args, "cache_dir", None) or None,
            engine=engine,
        )
    if getattr(args, "cache_dir", None):
        return load_or_compute(
            net,
            args.cache_dir,
            hop_bounds=bounds,
            workers=args.workers,
            engine=engine,
        )
    return compute_profiles(
        net, hop_bounds=bounds, workers=args.workers, engine=engine
    )


def _require_analyzable(net: TemporalNetwork, args: argparse.Namespace) -> bool:
    """Reject empty/zero-span traces with a structured error (exit 2).

    An over-aggressive ablation (``remove_random(p=1.0)``, a tight
    ``time_window``) used to flow into the engine and either crash with
    a bare traceback or yield nonsense CDFs over a zero-measure window.
    """
    reason = net.degenerate_reason()
    if reason is None:
        return True
    from .obs.log import get_logger

    get_logger("repro.cli").error(
        "cli.trace.degenerate",
        command=args.command,
        trace=args.trace,
        reason=reason,
    )
    return False


def _cmd_diameter(args: argparse.Namespace) -> int:
    net = read_contacts(args.trace)
    if not _require_analyzable(net, args):
        return 2
    bounds = tuple(range(1, args.max_hops + 1))
    profiles = _profiles(net, bounds, args)
    result = diameter(profiles, _grid(args), eps=args.eps)
    if result.value is None:
        # --max-hops undershot the diameter, but the fixpoint round count
        # of the unbounded computation bounds every optimal path's hop
        # count, so extending the recorded bounds to it is guaranteed to
        # pin the true value — no need to fail and ask for a bigger cap.
        fixpoint = profiles.max_rounds_run
        if fixpoint > args.max_hops:
            print(
                f"diameter > {args.max_hops} hops; extending hop bounds to "
                f"the flooding fixpoint ({fixpoint} rounds)"
            )
            profiles = _profiles(net, tuple(range(1, fixpoint + 1)), args)
            result = diameter(profiles, _grid(args), eps=args.eps)
    if result.value is None:
        from .obs.log import get_logger

        get_logger("repro.cli").error(
            "cli.diameter.no-convergence", trace=args.trace
        )
        return 1
    print(f"({1 - args.eps:.0%})-diameter: {result.value} hops")
    return 0


def _cmd_delay_cdf(args: argparse.Namespace) -> int:
    net = read_contacts(args.trace)
    if not _require_analyzable(net, args):
        return 2
    bounds = tuple(range(1, args.max_hops + 1))
    profiles = _profiles(net, bounds, args)
    grid = _grid(args)
    columns = {}
    for bound in list(bounds) + [None]:
        cdf = delay_cdf(profiles, grid, max_hops=bound)
        label = "inf" if bound is None else str(bound)
        columns[f"k={label}"] = [f"{v:.4f}" for v in cdf.values]
    rows = [
        [format_duration(g)] + [columns[name][i] for name in columns]
        for i, g in enumerate(grid)
    ]
    print(render_table(["delay"] + list(columns), rows))
    return 0


def _cmd_journeys(args: argparse.Namespace) -> int:
    from .core.journeys import journey_summary
    from .traces.format import _parse_node

    net = read_contacts(args.trace)
    source = _parse_node(args.source)
    destination = _parse_node(args.destination)
    profiles = compute_profiles(net, hop_bounds=(1, 2), sources=[source])
    summary = journey_summary(net, profiles, source, destination, args.at)
    rows = []
    for kind, journey in summary.items():
        if journey is None:
            rows.append([kind, "-", "-", "-", "unreachable"])
        else:
            rows.append(
                [
                    kind,
                    format_duration(journey.departure),
                    format_duration(journey.arrival),
                    format_duration(journey.duration),
                    journey.hops,
                ]
            )
    print(
        render_table(
            ["journey", "departure", "arrival", "duration", "hops"],
            rows,
            title=f"{source!r} -> {destination!r} (message at t={args.at})",
        )
    )
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    rows = []
    for case in ("short", "long"):
        try:
            tau = theory.critical_tau(args.rate, case)
            hops = theory.expected_hop_constant(args.rate, case)
            rows.append([case, f"{tau:.4f}", f"{hops:.4f}"])
        except ValueError as exc:
            rows.append([case, "-", str(exc)])
    print(
        render_table(
            ["case", "critical tau (delay / ln N)", "hops / ln N"],
            rows,
            title=f"lambda = {args.rate}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Diameter of opportunistic mobile networks (CoNEXT'07) toolkit",
    )
    # Observability outputs.  dest names avoid the subcommands' positional
    # ``trace`` argument (the contact-trace file).
    parser.add_argument(
        "--metrics",
        dest="metrics_out",
        metavar="PATH",
        help="write a metrics snapshot (JSON) after the command",
    )
    parser.add_argument(
        "--trace",
        dest="span_trace_out",
        metavar="PATH",
        help="write the span trace (JSON Lines) after the command",
    )
    parser.add_argument(
        "--manifest",
        dest="manifest_out",
        metavar="PATH",
        help="write the run manifest (JSON) after the command",
    )
    add_log_level_argument(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesise a data set")
    gen.add_argument("dataset", choices=sorted(datasets.BUILDERS))
    gen.add_argument("output")
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.set_defaults(func=_cmd_generate)

    summ = sub.add_parser("summarize", help="Table 1 row of a trace")
    _add_trace_argument(summ)
    summ.set_defaults(func=_cmd_summarize)

    def _add_compute_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=positive_int, default=1,
            help="processes for the per-source profile computation (>= 1)",
        )
        p.add_argument(
            "--cache-dir", metavar="DIR",
            help="content-addressed profile cache directory (reuses "
                 "profiles across invocations on the same trace)",
        )
        p.add_argument(
            "--shards", type=positive_int, default=1,
            help="partition the sources into this many deterministic "
                 "shards (>= 1); output is byte-identical to --shards 1, "
                 "and with --cache-dir each shard checkpoints so a "
                 "crashed run resumes from completed shards",
        )
        p.add_argument(
            "--engine", choices=ENGINES, default="auto",
            help="profile DP implementation: the scalar oracle, the "
                 "vectorized CSR kernel (exact-only, identical output), "
                 "or auto selection by trace size (default)",
        )

    diam = sub.add_parser("diameter", help="(1-eps)-diameter of a trace")
    _add_trace_argument(diam)
    diam.add_argument("--eps", type=float, default=0.01)
    diam.add_argument("--max-hops", type=int, default=8)
    diam.add_argument("--grid-points", type=int, default=40)
    _add_compute_arguments(diam)
    diam.set_defaults(func=_cmd_diameter)

    cdf = sub.add_parser("delay-cdf", help="delay CDF per hop bound")
    _add_trace_argument(cdf)
    cdf.add_argument("--max-hops", type=int, default=4)
    cdf.add_argument("--grid-points", type=int, default=12)
    _add_compute_arguments(cdf)
    cdf.set_defaults(func=_cmd_delay_cdf)

    journeys = sub.add_parser(
        "journeys", help="foremost/shortest/fastest journeys of a pair"
    )
    _add_trace_argument(journeys)
    journeys.add_argument("source")
    journeys.add_argument("destination")
    journeys.add_argument("--at", type=float, default=0.0,
                          help="message creation time (seconds)")
    journeys.set_defaults(func=_cmd_journeys)

    th = sub.add_parser("theory", help="Section 3 constants for a rate")
    th.add_argument("rate", type=float)
    th.set_defaults(func=_cmd_theory)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging_from(args)
    if not (args.metrics_out or args.span_trace_out or args.manifest_out):
        return args.func(args)
    from .obs import observed

    with observed(
        seed=getattr(args, "seed", None),
        dataset=getattr(args, "dataset", None),
        scale=getattr(args, "scale", None),
        params={"command": args.command},
    ) as run:
        code = args.func(args)
        run.manifest.update(exit_code=code)
    # The command's work is already done; a bad output path must not
    # turn its exit status into a traceback.
    for path, writer in (
        (args.metrics_out, run.metrics.write),
        (args.span_trace_out, run.tracer.write),
        (args.manifest_out, run.manifest.write),
    ):
        if not path:
            continue
        try:
            writer(path)
        except OSError as exc:
            from .obs.log import get_logger

            get_logger("repro.cli").error(
                "cli.output.unwritable", path=path, error=str(exc)
            )
            code = code or 1
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
