"""The event-driven flooding method the paper cites as the alternative.

Paper Section 4.4 describes the independently developed algorithm of
Zhang et al. [18]: "a packet is created for any beginning and end of
contacts; a discrete event simulator is used to simulate flooding; the
results are then merged using linear extrapolation."

We implement that method faithfully on top of :mod:`repro.baselines.flooding`
and use it to cross-validate the frontier dynamic programming: the delivery
function can only change at contact-event boundaries, so flooding from each
event (plus a point just inside each inter-event gap, to observe the
earliest-arrival level of the gap's segment) recovers the whole function up
to arbitrarily thin slivers at segment starts.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.contact import Node
from ..core.delivery import DeliveryFunction
from ..core.temporal_network import TemporalNetwork
from ..obs import get_obs
from .flooding import earliest_delivery

INFINITY = float("inf")


def sample_times(net: TemporalNetwork, before: float = 1.0) -> List[float]:
    """Start times that pin down every delivery function of the network.

    All contact begin/end times, the midpoint of every inter-event gap,
    and one time before the first event / after the last event.  Evaluating
    two delivery functions on these times and finding them equal implies
    the functions agree everywhere except possibly on sets of starting
    times strictly inside gaps where both are linear — in practice, on
    nothing, which is what the cross-validation tests rely on.
    """
    events = net.event_times()
    if not events:
        return [0.0]
    times = [events[0] - before]
    for i, event in enumerate(events):
        times.append(event)
        if i + 1 < len(events) and events[i + 1] > event:
            times.append((event + events[i + 1]) / 2.0)
    times.append(events[-1] + before)
    return times


def delivery_samples(
    net: TemporalNetwork,
    source: Node,
    destination: Node,
    times: List[float],
    max_hops: Optional[int] = None,
) -> List[float]:
    """``del(t)`` by brute-force flooding, for each start time in ``times``."""
    return [
        earliest_delivery(net, source, destination, t, max_hops) for t in times
    ]


def reconstruct_delivery_function(
    net: TemporalNetwork,
    source: Node,
    destination: Node,
    max_hops: Optional[int] = None,
    sliver: float = 1e-9,
) -> DeliveryFunction:
    """Rebuild the full delivery function by event-driven flooding.

    For each inter-event segment ``(e_i, e_{i+1}]`` the earliest-arrival
    level is observed by flooding from ``e_i + sliver`` (no contact
    boundary lies inside the gap, so the level is constant there); the
    segment contributes the pair ``(LD = e_{i+1}, EA = level)``.  Start
    times before the first event use the first event as probe.  The
    resulting frontier equals the true one except possibly within
    ``sliver`` of segment starts.

    This is quadratic-ish in trace size (one flood per event) — it exists
    for validation and for measuring the speedup of the frontier method,
    not for production use.
    """
    import math

    obs = get_obs()
    with obs.span(
        "event_flooding.reconstruct",
        source=repr(source),
        destination=repr(destination),
        max_hops=max_hops,
    ) as span:
        events = net.event_times()
        func = DeliveryFunction()
        if not events:
            return func
        probes = [events[0] - 1.0]
        lds = [events[0]]
        for i in range(len(events) - 1):
            if events[i + 1] > events[i]:
                gap = events[i + 1] - events[i]
                probe = events[i] + min(sliver, gap / 2.0)
                if probe <= events[i]:
                    # The gap is below floating-point resolution around e_i:
                    # step to the next representable float (possibly e_{i+1}
                    # itself, which is then the segment's only start time).
                    probe = math.nextafter(events[i], events[i + 1])
                probes.append(min(probe, events[i + 1]))
                lds.append(events[i + 1])
        for probe, ld in zip(probes, lds):
            delivered = earliest_delivery(net, source, destination, probe, max_hops)
            if delivered == INFINITY:
                continue
            ea = delivered if delivered > probe else probe
            func.insert(ld, ea)
        if obs.enabled:
            obs.metrics.counter("event_flooding.probes").inc(len(probes))
            span.set(events=len(events), probes=len(probes), frontier_points=len(func))
    return func
