"""Generalized Dijkstra on temporal networks, with witness paths.

The paper compares its method with "previous generalized Dijkstra's
algorithms" (Bui-Xuan et al.; Jain/Fall/Patra): those compute the
earliest-arrival journey *for a single starting time*, whereas the frontier
method computes every starting time at once.  We keep this single-start
algorithm both as a baseline and as the witness-path reconstructor: given
(source, destination, start time, hop bound) it returns a concrete
:class:`~repro.core.paths.ContactPath` achieving the optimal delivery time.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..core.contact import Contact, Node
from ..core.paths import ContactPath
from ..core.temporal_network import TemporalNetwork

INFINITY = float("inf")


def earliest_arrival(
    net: TemporalNetwork,
    source: Node,
    start_time: float,
) -> Dict[Node, float]:
    """Single-start earliest arrival by a Dijkstra-style label setting.

    States are (arrival time, node); expanding a node relaxes every contact
    usable after its arrival time.  Equivalent to :func:`flooding.flood`
    without a hop bound, but with the classic priority-queue structure —
    kept as an independent implementation for cross-validation.
    """
    if source not in net:
        raise KeyError(f"unknown source {source!r}")
    best: Dict[Node, float] = {source: start_time}
    heap: List[Tuple[float, int, Node]] = [(start_time, 0, source)]
    tiebreak = 1
    settled = set()
    while heap:
        arrival, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v in net.out_neighbors(u):
            if v in settled:
                continue
            edge = net.edge_contacts(u, v)
            idx = edge.first_ending_at_or_after(arrival)
            if idx == len(edge):
                continue
            candidate = arrival
            earliest_beg = edge.suffix_min_beg[idx]
            if earliest_beg > candidate:
                candidate = earliest_beg
            if candidate < best.get(v, INFINITY):
                best[v] = candidate
                heapq.heappush(heap, (candidate, tiebreak, v))
                tiebreak += 1
    return best


def _hop_layers(
    net: TemporalNetwork,
    source: Node,
    start_time: float,
    max_hops: Optional[int],
) -> List[Dict[Node, Tuple[float, Optional[Contact], Optional[Node]]]]:
    """Bellman-Ford layers with parent pointers.

    ``layers[k][v] = (arrival, contact used, previous node)`` is the best
    arrival at v over paths of at most k contacts.
    """
    layers: List[Dict[Node, Tuple[float, Optional[Contact], Optional[Node]]]] = [
        {source: (start_time, None, None)}
    ]
    bound = max_hops if max_hops is not None else INFINITY
    k = 0
    while k < bound:
        previous = layers[-1]
        current = dict(previous)
        improved = False
        for u, (arr_u, _, _) in previous.items():
            for v in net.out_neighbors(u):
                edge = net.edge_contacts(u, v)
                idx = edge.first_ending_at_or_after(arr_u)
                best_t = INFINITY
                best_j = -1
                for j in range(idx, len(edge)):
                    t = arr_u if arr_u > edge.begs[j] else edge.begs[j]
                    if t < best_t:
                        best_t = t
                        best_j = j
                if best_j < 0:
                    continue
                if best_t < current.get(v, (INFINITY, None, None))[0]:
                    contact = Contact(edge.begs[best_j], edge.ends[best_j], u, v)
                    current[v] = (best_t, contact, u)
                    improved = True
        if not improved:
            break
        layers.append(current)
        k += 1
    return layers


def earliest_arrival_path(
    net: TemporalNetwork,
    source: Node,
    destination: Node,
    start_time: float,
    max_hops: Optional[int] = None,
) -> Optional[ContactPath]:
    """A witness path achieving the earliest hop-bounded delivery.

    Returns None when the destination is unreachable under the constraints.
    The witness is a valid time-respecting :class:`ContactPath` whose
    greedy schedule starting at ``start_time`` delivers at the optimal
    time; used by tests to certify the frontier DP's answers.
    """
    if source == destination:
        raise ValueError("source and destination must differ")
    layers = _hop_layers(net, source, start_time, max_hops)
    best_layer = -1
    best_arrival = INFINITY
    for k, layer in enumerate(layers):
        if destination in layer and layer[destination][0] < best_arrival:
            best_arrival = layer[destination][0]
            best_layer = k
    if best_layer < 0:
        return None
    contacts: List[Contact] = []
    node = destination
    k = best_layer
    while node != source:
        # The entry in layer k may have been copied from an earlier layer;
        # walk down to the layer where it was created.
        while k > 0 and layers[k - 1].get(node) == layers[k].get(node):
            k -= 1
        _, contact, parent = layers[k][node]
        if contact is None or parent is None:  # pragma: no cover - safety
            raise RuntimeError("broken parent chain in hop layers")
        contacts.append(contact)
        node = parent
        k -= 1
    contacts.reverse()
    return ContactPath(tuple(contacts))
