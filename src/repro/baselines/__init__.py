"""Baseline algorithms the frontier method is validated and compared against.

* :mod:`.flooding` — brute-force flooding from one (source, start time):
  the ground truth for delivery times.
* :mod:`.event_flooding` — the event-driven alternative the paper cites
  (Zhang et al. [18]): flood from every contact boundary and merge.
* :mod:`.dijkstra` — generalized Dijkstra (single starting time), with
  witness-path reconstruction.
"""

from .dijkstra import earliest_arrival, earliest_arrival_path
from .event_flooding import (
    delivery_samples,
    reconstruct_delivery_function,
    sample_times,
)
from .flooding import earliest_delivery, flood, hop_arrival_curve

__all__ = [
    "delivery_samples",
    "earliest_arrival",
    "earliest_arrival_path",
    "earliest_delivery",
    "flood",
    "hop_arrival_curve",
    "reconstruct_delivery_function",
    "sample_times",
]
