"""Brute-force flooding: ground truth for one (source, start time).

Flooding is the delay-optimal (and hop-count oblivious) forwarding
strategy: every node that holds the message transmits it on every contact.
The paper defines the diameter *relative to the success rate of flooding*,
and this module provides the reference implementation the optimal-path
computation is validated against.

The computation is a hop-layered fixpoint of the temporal relaxation

    arrival[v] <- min(arrival[v], max(arrival[u], t_beg))   if <= t_end

which after k sweeps yields the earliest arrival over paths of at most k
contacts (long-contact semantics: chains through overlapping contacts are
found by successive sweeps).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.contact import Node
from ..core.temporal_network import TemporalNetwork
from ..obs import get_obs

INFINITY = float("inf")


def _directed_contact_views(net: TemporalNetwork) -> List[Tuple[Node, Node, float, float]]:
    """All directed (u, v, t_beg, t_end) transmission opportunities."""
    views = []
    for c in net.contacts:
        views.append((c.u, c.v, c.t_beg, c.t_end))
        if not net.directed:
            views.append((c.v, c.u, c.t_beg, c.t_end))
    return views


def flood(
    net: TemporalNetwork,
    source: Node,
    start_time: float,
    max_hops: Optional[int] = None,
    transmission_delay: float = 0.0,
) -> Dict[Node, float]:
    """Earliest arrival time at every node for a flooded message.

    Args:
        net: the temporal network.
        source: originating device.
        start_time: message creation time.
        max_hops: cap on the number of contacts along a path
            (None = unbounded).
        transmission_delay: time one hop takes (paper Section 4.2's
            "positive transmission delay"); a transfer starting at s over
            contact [t_beg, t_end] completes at s + delay and requires
            ``s + delay <= t_end``.  Zero gives the paper's default model
            where a contact is crossed instantaneously.

    Returns:
        Mapping node -> earliest arrival time; nodes never reached are
        absent.  ``source`` maps to ``start_time``.
    """
    if source not in net:
        raise KeyError(f"unknown source {source!r}")
    if transmission_delay < 0:
        raise ValueError("transmission delay cannot be negative")
    views = _directed_contact_views(net)
    arrival: Dict[Node, float] = {source: start_time}
    bound = max_hops if max_hops is not None else INFINITY
    delay = transmission_delay
    hops = 0
    obs = get_obs()
    track = obs.enabled
    events_examined = 0
    infections_per_round: List[int] = []
    while hops < bound:
        updates: Dict[Node, float] = {}
        for u, v, t_beg, t_end in views:
            t_u = arrival.get(u)
            if t_u is None:
                continue
            start = t_u if t_u > t_beg else t_beg
            t = start + delay
            if t > t_end:
                continue
            best = updates.get(v, arrival.get(v, INFINITY))
            if t < best:
                updates[v] = t
        if track:
            events_examined += len(views)
        if not updates:
            break
        if track:
            infections_per_round.append(
                sum(1 for v in updates if v not in arrival)
            )
        for v, t in updates.items():
            if t < arrival.get(v, INFINITY):
                arrival[v] = t
        hops += 1
    if track:
        metrics = obs.metrics
        metrics.counter("flooding.floods").inc()
        metrics.counter("flooding.sweeps").inc(hops)
        metrics.counter("flooding.events_processed").inc(events_examined)
        metrics.counter("flooding.infections").inc(sum(infections_per_round))
        hist = metrics.histogram("flooding.infections_per_round")
        hist.observe_many(infections_per_round)
    return arrival


def earliest_delivery(
    net: TemporalNetwork,
    source: Node,
    destination: Node,
    start_time: float,
    max_hops: Optional[int] = None,
    transmission_delay: float = 0.0,
) -> float:
    """Earliest delivery time at one destination (inf when unreachable)."""
    return flood(net, source, start_time, max_hops, transmission_delay).get(
        destination, INFINITY
    )


def hop_arrival_curve(
    net: TemporalNetwork,
    source: Node,
    destination: Node,
    start_time: float,
    max_hops: int = 32,
) -> List[Tuple[int, float]]:
    """The hop-count / arrival-time trade-off at one destination.

    Returns the list of (k, arrival with <= k hops) for every k where the
    arrival strictly improves — e.g. ``[(2, 60.0), (4, 30.0)]`` means two
    hops deliver at 60 and spending four delivers at 30.  Empty when the
    destination is unreachable within ``max_hops``.
    """
    curve: List[Tuple[int, float]] = []
    previous = INFINITY
    unbounded = earliest_delivery(net, source, destination, start_time, None)
    for k in range(1, max_hops + 1):
        t = earliest_delivery(net, source, destination, start_time, k)
        if t < previous:
            curve.append((k, t))
            previous = t
        if previous == unbounded:
            break
    return curve
