"""The result store: served response bytes, content-addressed and LRU.

Once a job finishes, its exact response bytes are stored under the job
key — the same content-addressing discipline as the profile cache in
:mod:`repro.core.cache`, and the same on-disk hygiene (atomic tmp +
``os.replace`` writes, ``unlink``-only eviction so concurrent readers
are never torn).  A later identical query is then served straight from
disk without touching the worker pool at all.

The store is size-capped: ``max_bytes`` evicts least-recently-served
entries first (hits refresh mtime), via the shared
:func:`repro.core.cache.evict_lru`.  Traffic counters:
``service.store.hit`` / ``.miss`` / ``.evict``.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Dict, Optional, Union

from ..core.cache import evict_lru
from ..obs import get_obs
from .jobs import job_id_of

PathLike = Union[str, Path]

_PATTERN = "result-*.bin"


class ResultStore:
    """Response bytes by job key, on disk, size-capped LRU."""

    def __init__(self, root: PathLike, max_bytes: Optional[int] = None) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def path(self, key: str) -> Path:
        return self.root / f"result-{job_id_of(key)}.bin"

    def get(self, key: str) -> Optional[bytes]:
        """The stored response bytes, or None; hits refresh recency."""
        path = self.path(key)
        obs = get_obs()
        try:
            payload = path.read_bytes()
        except OSError:
            obs.metrics.counter("service.store.miss").inc()
            return None
        obs.metrics.counter("service.store.hit").inc()
        try:
            os.utime(path)
        except OSError:
            pass
        return payload

    def put(self, key: str, payload: bytes) -> Path:
        """Store response bytes atomically, then enforce the budget.

        The payload is written to a per-thread tmp file *outside*
        ``_lock`` (REP008: a disk write under the lock would convoy
        every concurrent put behind the syscall); only the cheap rename
        and the budget enforcement hold it, so publish + evict stay
        atomic with respect to other putters.
        """
        path = self.path(key)
        tmp = path.with_name(
            f"tmp-{os.getpid()}-{threading.get_ident()}-{path.name}"
        )
        tmp.write_bytes(payload)
        try:
            with self._lock:
                os.replace(tmp, path)
                if self.max_bytes is not None:
                    evict_lru(
                        self.root,
                        _PATTERN,
                        self.max_bytes,
                        keep=(path,),
                        counter="service.store.evict",
                    )
        finally:
            if tmp.exists():
                tmp.unlink()
        return path

    def contains(self, key: str) -> bool:
        return self.path(key).exists()

    def stats(self) -> Dict[str, object]:
        """Entry count and byte total, for ``/healthz``."""
        entries = 0
        total = 0
        for path in self.root.glob(_PATTERN):
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return {
            "entries": entries,
            "bytes": total,
            "max_bytes": self.max_bytes,
        }
