"""The HTTP front door: query endpoints, job status, health, metrics.

Endpoints (all under a threaded stdlib :class:`ThreadingHTTPServer`):

* ``POST /v1/diameter`` and ``POST /v1/delay-cdf`` — a JSON query
  (``{"trace": path, "max_hops": ..., ...}``); the response body is the
  **byte-identical stdout of the equivalent ``repro`` CLI invocation**
  (``text/plain``).  Errors come back as structured JSON.  The request
  path is: normalise → job key → result store → single-flight job table
  → worker pool, so identical concurrent queries compute once and
  repeated queries never compute at all.  A saturated pool answers
  ``429`` with ``Retry-After``.
* ``GET /v1/jobs/<id>`` — JSON status of an in-flight or recent job.
* ``GET /healthz`` — pool/queue/store health; ``200`` healthy, ``503``
  degraded (a worker died and has not been respawned yet) or draining.
* ``GET /metrics`` — the active :mod:`repro.obs` registry in Prometheus
  text format (:meth:`MetricsRegistry.render_text`).

The service records into whatever obs bundle is active when it starts
(``python -m repro.service serve`` installs one; the benchmark harness
runs the server inside its own ``bench_session``), so service counters
land in the same snapshot as engine counters.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Type

from ..obs import get_obs
from .jobs import (
    BadRequest,
    COMMANDS,
    Job,
    JobSpec,
    JobTable,
    NetworkCache,
    job_key,
    normalize_request,
)
from .pool import PoolClosed, PoolSaturated, Result, Task, WorkerPool
from .store import ResultStore


@dataclass
class ServiceConfig:
    """Everything one service instance needs to run."""

    cache_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_capacity: int = 16
    job_timeout_s: float = 300.0
    store_max_bytes: Optional[int] = None
    max_attempts: int = 2
    respawn_delay_s: float = 0.0
    allow_test_delay: bool = False
    #: ceiling on one request body, to bound parsing work.
    max_body_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )


@dataclass
class Response:
    """A transport-independent response (the handler serialises it)."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        status: int,
        document: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        payload = (
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        return cls(status, payload, "application/json", dict(headers or {}))

    @classmethod
    def error(
        cls,
        status: int,
        error_type: str,
        message: str,
        headers: Optional[Dict[str, str]] = None,
        **extra: object,
    ) -> "Response":
        document: Dict[str, object] = {
            "error": {"type": error_type, "message": message, **extra}
        }
        return cls.json(status, document, headers)


class ReproService:
    """The service core: everything the HTTP handler delegates to.

    Transport-free by design — tests can drive :meth:`handle_query`
    and friends directly, and the HTTP layer stays a thin shell.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        root = Path(config.cache_dir)
        self.profile_cache_dir = root / "profiles"
        self.profile_cache_dir.mkdir(parents=True, exist_ok=True)
        self.store = ResultStore(
            root / "results", max_bytes=config.store_max_bytes
        )
        self.networks = NetworkCache()
        self.jobs = JobTable()
        self.pool = WorkerPool(
            size=config.workers,
            queue_capacity=config.queue_capacity,
            job_timeout_s=config.job_timeout_s,
            on_complete=self._on_complete,
            max_attempts=config.max_attempts,
            respawn_delay_s=config.respawn_delay_s,
        )
        self.pool.start()

    # -- pool callback --------------------------------------------------
    def _on_complete(self, task: Task, result: Result) -> None:
        key = str(task["key"])
        error = result.get("error")
        if error is not None:
            self.jobs.complete(key, stderr=str(result.get("stderr", "")),
                               error=dict(error))
            return
        exit_code = int(result["exit_code"])
        output = str(result["output"]).encode("utf-8")
        stderr = str(result.get("stderr", ""))
        if exit_code != 0:
            self.jobs.complete(
                key,
                exit_code=exit_code,
                output=output,
                stderr=stderr,
                error={
                    "type": "command-failed",
                    "message": stderr.strip() or "command exited non-zero",
                    "exit_code": exit_code,
                },
            )
            return
        self.store.put(key, output)
        self.jobs.complete(key, exit_code=0, output=output, stderr=stderr)

    # -- request handling -----------------------------------------------
    def handle_query(self, command: str, raw_body: bytes) -> Response:
        obs = get_obs()
        with obs.metrics.timer("service.http.latency", endpoint=command):
            return self._handle_query(command, raw_body)

    def _handle_query(self, command: str, raw_body: bytes) -> Response:
        try:
            body = json.loads(raw_body.decode("utf-8")) if raw_body else {}
        except ValueError as exc:
            return Response.error(400, "bad-request", f"invalid JSON: {exc}")
        try:
            spec = normalize_request(
                command, body, allow_test_delay=self.config.allow_test_delay
            )
            network = self.networks.get(spec.trace)
        except BadRequest as exc:
            return Response.error(
                400, "bad-request", exc.message,
                **({} if exc.field is None else {"field": exc.field}),
            )
        except OSError as exc:
            return Response.error(400, "bad-request", f"cannot read trace: {exc}")

        key = job_key(spec, network)
        stored = self.store.get(key)
        if stored is not None:
            return self._success(stored, key, source="store")

        job, created = self.jobs.get_or_create(key, spec)
        if created:
            task: Task = {
                "key": key,
                "argv": spec.to_argv(str(self.profile_cache_dir)),
                "test_delay_s": spec.test_delay_s,
                "on_running": self._mark_running,
            }
            try:
                self.pool.submit(task)
            except PoolSaturated:
                self.jobs.complete(
                    key, error={"type": "rejected", "message": "queue full"}
                )
                retry_after = self.pool.retry_after_s()
                return Response.error(
                    429,
                    "saturated",
                    "worker pool and queue are full; retry later",
                    headers={"Retry-After": str(int(retry_after))},
                )
            except PoolClosed:
                self.jobs.complete(
                    key, error={"type": "shutdown", "message": "pool shut down"}
                )
                return Response.error(
                    503, "shutting-down", "service is draining"
                )
        return self._await_job(job, coalesced=not created)

    def _mark_running(self, task: Task) -> None:
        self.jobs.mark_running(str(task["key"]), int(task["attempts"]))

    def _await_job(self, job: Job, coalesced: bool) -> Response:
        # Worst case the job runs max_attempts times back to back, plus
        # scheduler slack; the pool's own timeout fires well before this.
        budget = self.config.job_timeout_s * self.config.max_attempts + 30.0
        if not job.done.wait(budget):
            return Response.error(
                504,
                "wait-timeout",
                f"job {job.id} did not finish within {budget:g}s",
                job=job.id,
            )
        if job.error is not None or job.output is None:
            error = dict(
                job.error
                or {"type": "unknown", "message": "job produced no output"}
            )
            return Response.json(
                500,
                {"error": error, "job": job.id, "stderr": job.stderr},
            )
        return self._success(
            job.output,
            job.key,
            source="coalesced" if coalesced else "computed",
        )

    def _success(self, payload: bytes, key: str, source: str) -> Response:
        get_obs().metrics.counter(
            "service.http.responses", source=source
        ).inc()
        return Response(
            200,
            payload,
            content_type="text/plain; charset=utf-8",
            headers={
                "X-Repro-Job": key[:32],
                "X-Repro-Source": source,
            },
        )

    def handle_job(self, job_id: str) -> Response:
        job = self.jobs.lookup(job_id)
        if job is not None:
            return Response.json(200, job.describe())
        # A job can age out of the table while its result lives on in
        # the store (the id doubles as the store file stem).
        if (self.store.root / f"result-{job_id}.bin").exists():
            return Response.json(
                200, {"job": job_id, "state": "done", "source": "store"}
            )
        return Response.error(404, "not-found", f"unknown job {job_id!r}")

    def handle_health(self) -> Response:
        pool = self.pool.health()
        document: Dict[str, object] = {
            "status": pool["state"],
            "pool": pool,
            "store": self.store.stats(),
            "jobs": {
                "inflight": self.jobs.inflight_count(),
                "finished": self.jobs.finished_count(),
            },
        }
        status = 200 if pool["state"] == "healthy" else 503
        return Response.json(status, document)

    def handle_metrics(self) -> Response:
        text = get_obs().metrics.render_text()
        return Response(
            200,
            text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def close(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Shut the pool down; with ``drain``, let queued work finish."""
        return self.pool.shutdown(drain=drain, timeout_s=timeout_s)


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shell over a :class:`ReproService`."""

    service: ReproService
    server_version = "repro-service/1"

    # -- plumbing -------------------------------------------------------
    def _send(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def log_message(self, format: str, *args: object) -> None:
        # Request logging is a metrics concern, not a stderr concern.
        pass

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.service.config.max_body_bytes:
            return None
        return self.rfile.read(length) if length else b""

    # -- routes ---------------------------------------------------------
    def do_POST(self) -> None:
        obs = get_obs()
        obs.metrics.counter("service.http.requests", method="POST").inc()
        for command in COMMANDS:
            if self.path == f"/v1/{command}":
                body = self._read_body()
                if body is None:
                    self._send(
                        Response.error(413, "too-large", "request body too large")
                    )
                    return
                self._send(self.service.handle_query(command, body))
                return
        self._send(Response.error(404, "not-found", f"no route {self.path!r}"))

    def do_GET(self) -> None:
        obs = get_obs()
        obs.metrics.counter("service.http.requests", method="GET").inc()
        if self.path == "/healthz":
            self._send(self.service.handle_health())
        elif self.path == "/metrics":
            self._send(self.service.handle_metrics())
        elif self.path.startswith("/v1/jobs/"):
            job_id = self.path[len("/v1/jobs/"):]
            self._send(self.service.handle_job(job_id))
        else:
            self._send(
                Response.error(404, "not-found", f"no route {self.path!r}")
            )


def make_server(
    service: ReproService,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> ThreadingHTTPServer:
    """A ready-to-serve threaded HTTP server bound to ``service``.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address``.
    """
    handler: Type[_Handler] = type(
        "_BoundHandler", (_Handler,), {"service": service}
    )
    address: Tuple[str, int] = (
        service.config.host if host is None else host,
        service.config.port if port is None else port,
    )
    server = ThreadingHTTPServer(address, handler)
    server.daemon_threads = True
    return server


def serve_in_thread(
    service: ReproService,
) -> Tuple[ThreadingHTTPServer, threading.Thread, str]:
    """Start serving on a background thread; returns (server, thread, url).

    The caller owns shutdown: ``server.shutdown()`` then
    ``service.close()``.  Used by tests and the load benchmark.
    """
    server = make_server(service)
    host, port = server.server_address[0], server.server_address[1]
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server, thread, f"http://{host}:{port}"
