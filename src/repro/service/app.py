"""The HTTP front door: query endpoints, job status, health, metrics.

Endpoints (all under a threaded stdlib :class:`ThreadingHTTPServer`):

* ``POST /v1/diameter`` and ``POST /v1/delay-cdf`` — a JSON query
  (``{"trace": path, "max_hops": ..., ...}``); the response body is the
  **byte-identical stdout of the equivalent ``repro`` CLI invocation**
  (``text/plain``).  Errors come back as structured JSON.  The request
  path is: normalise → job key → result store → single-flight job table
  → worker pool, so identical concurrent queries compute once and
  repeated queries never compute at all.  A saturated pool answers
  ``429`` with ``Retry-After``.
* ``GET /v1/jobs/<id>`` — JSON status of an in-flight, recent, or
  dead-lettered job.
* ``GET /v1/jobs`` — the queue, recent history, and dead-letter set
  (``?state=`` / ``?priority=`` filters, ``?limit=`` page bound).
* ``GET /healthz`` — pool/queue/store health; ``200`` healthy, ``503``
  degraded (a worker died and has not been respawned yet) or draining.
* ``GET /metrics`` — the active :mod:`repro.obs` registry in Prometheus
  text format (:meth:`MetricsRegistry.render_text`).
* ``GET /debug/traces`` and ``GET /debug/traces/<trace_id>`` — the live
  trace ring: a summary listing, and one trace exported as
  ``repro.trace/1`` JSON Lines.

Tracing: every request gets a :class:`~repro.obs.tracectx.TraceContext`
(minted fresh, or continued from an inbound W3C ``traceparent`` header).
Query requests record their spans on a *per-request*
:class:`~repro.obs.spans.SpanTracer` (the session tracer's stack is
single-threaded; handler threads are not), bound into trace-scoped
records afterwards.  The pool supervisor adds per-attempt spans through
its ``trace_sink`` and the worker ships its spans back in the result
envelope, so ``GET /debug/traces/<id>`` shows the whole request — HTTP
handling, admission, attempts, worker execution, engine internals — as
one tree.  Every response carries ``X-Repro-Trace``; every JSON error
body carries a top-level ``trace_id``.

Durability: with ``journal_dir`` set, every job lifecycle transition is
committed to the write-ahead journal (:mod:`repro.service.journal`)
*before* the action it records — ``submitted`` before the pool sees the
task — so a SIGKILL loses no admitted work.  ``__init__`` replays the
journal, re-enqueues open episodes interactive-first (skipping shards
whose checkpoints already landed), and dead-letters episodes past the
crash budget; the recovery pass is traced under a ``service.recover``
root span.

The service records into whatever obs bundle is active when it starts
(``python -m repro.service serve`` installs one; the benchmark harness
runs the server inside its own ``bench_session``), so service counters
land in the same snapshot as engine counters — including the worker
registries merged back per job.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Collection, Dict, List, Optional, Tuple, Type
from urllib.parse import parse_qs, urlsplit

from ..core.shards import shard_sources
from ..obs import get_obs
from ..obs.log import get_logger
from ..obs.spans import SpanTracer
from ..obs.tracectx import (
    TraceContext,
    bind_records,
    derive_span_id,
    new_span_id,
)
from ..obs.tracestore import TraceStore
from .jobs import (
    BadRequest,
    COMMANDS,
    Job,
    JobSpec,
    JobTable,
    NetworkCache,
    PRIORITIES,
    STATES,
    job_key,
    normalize_request,
)
from .journal import (
    DEFAULT_SEGMENT_BYTES,
    EpisodeState,
    JournalState,
    JournalWriter,
    replay,
)
from .pool import PoolClosed, PoolSaturated, Result, Task, WorkerPool
from .store import ResultStore

#: recovery re-enqueues interactive episodes before batch ones.
_PRIORITY_RANK = {priority: i for i, priority in enumerate(PRIORITIES)}


@dataclass
class ServiceConfig:
    """Everything one service instance needs to run."""

    cache_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_capacity: int = 16
    job_timeout_s: float = 300.0
    store_max_bytes: Optional[int] = None
    max_attempts: int = 2
    respawn_delay_s: float = 0.0
    allow_test_delay: bool = False
    #: ceiling on one request body, to bound parsing work.
    max_body_bytes: int = 1 << 20
    #: jobs whose queued→done wall time exceeds this log a
    #: ``service.job.slow`` warning and count on ``service.jobs.slow``.
    slow_job_threshold_s: float = 30.0
    #: how many traces the debug ring retains.
    trace_capacity: int = 256
    #: write-ahead journal directory; None disables durability (the
    #: seed behaviour: job state dies with the process).
    journal_dir: Optional[str] = None
    #: fsync every journal record (the durability contract); tests and
    #: benchmarks may trade durability for speed.
    journal_fsync: bool = True
    #: journal segment rotation threshold.
    journal_segment_bytes: int = DEFAULT_SEGMENT_BYTES
    #: a job whose episode has crashed this many server lives (counted
    #: as ``running`` journal events plus the current life's attempts)
    #: is dead-lettered instead of retried.
    dead_letter_attempts: int = 3
    #: a queued batch task older than this jumps ahead of interactive
    #: work (the pool's anti-starvation aging knob).
    batch_aging_s: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.slow_job_threshold_s <= 0:
            raise ValueError(
                "slow_job_threshold_s must be > 0, got "
                f"{self.slow_job_threshold_s}"
            )
        if self.trace_capacity < 1:
            raise ValueError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}"
            )
        if self.dead_letter_attempts < 1:
            raise ValueError(
                "dead_letter_attempts must be >= 1, got "
                f"{self.dead_letter_attempts}"
            )
        if self.batch_aging_s <= 0:
            raise ValueError(
                f"batch_aging_s must be > 0, got {self.batch_aging_s}"
            )


@dataclass
class Response:
    """A transport-independent response (the handler serialises it)."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        status: int,
        document: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        payload = (
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        return cls(status, payload, "application/json", dict(headers or {}))

    @classmethod
    def error(
        cls,
        status: int,
        error_type: str,
        message: str,
        headers: Optional[Dict[str, str]] = None,
        **extra: object,
    ) -> "Response":
        document: Dict[str, object] = {
            "error": {"type": error_type, "message": message, **extra}
        }
        return cls.json(status, document, headers)


def mint_context(
    traceparent: Optional[str],
) -> Tuple[TraceContext, Optional[str]]:
    """The request's trace context and its remote parent span id.

    A valid inbound ``traceparent`` continues the caller's trace (fresh
    random span id for our root, the caller's span as its parent);
    anything absent or malformed starts a new trace — a bad header must
    never fail the request.
    """
    inbound = TraceContext.from_traceparent(traceparent)
    if inbound is None:
        return TraceContext.new(), None
    return (
        TraceContext(trace_id=inbound.trace_id, span_id=new_span_id()),
        inbound.span_id,
    )


def with_trace(response: Response, ctx: TraceContext) -> Response:
    """Stamp the trace id onto a response (header + JSON error body).

    Injection is centralised here — after the handler built the
    response — so no error call site can forget its correlation id.
    """
    response.headers.setdefault("X-Repro-Trace", ctx.trace_id)
    if response.status >= 400 and response.content_type.startswith(
        "application/json"
    ):
        try:
            document = json.loads(response.body.decode("utf-8"))
        except ValueError:
            return response
        if isinstance(document, dict) and "trace_id" not in document:
            document["trace_id"] = ctx.trace_id
            response.body = (
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            ).encode("utf-8")
    return response


class ReproService:
    """The service core: everything the HTTP handler delegates to.

    Transport-free by design — tests can drive :meth:`handle_query`
    and friends directly, and the HTTP layer stays a thin shell.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        root = Path(config.cache_dir)
        self.profile_cache_dir = root / "profiles"
        self.profile_cache_dir.mkdir(parents=True, exist_ok=True)
        self.store = ResultStore(
            root / "results", max_bytes=config.store_max_bytes
        )
        self.networks = NetworkCache()
        self.jobs = JobTable()
        self.traces = TraceStore(capacity=config.trace_capacity)
        self.log = get_logger("repro.service")
        # Replay *before* opening the writer: the writer's seq counter
        # must continue past the previous life's last durable record.
        self.journal: Optional[JournalWriter] = None
        recovery_state: Optional[JournalState] = None
        if config.journal_dir is not None:
            recovery_state = replay(config.journal_dir)
            self.journal = JournalWriter(
                config.journal_dir,
                fsync=config.journal_fsync,
                segment_max_bytes=config.journal_segment_bytes,
                next_seq=recovery_state.next_seq,
            )
        self.pool = WorkerPool(
            size=config.workers,
            queue_capacity=config.queue_capacity,
            job_timeout_s=config.job_timeout_s,
            on_complete=self._on_complete,
            max_attempts=config.max_attempts,
            respawn_delay_s=config.respawn_delay_s,
            trace_sink=self._ingest_span,
            aging_s=config.batch_aging_s,
        )
        self.pool.start()
        if recovery_state is not None:
            self._recover(recovery_state)

    # -- pool callbacks -------------------------------------------------
    def _ingest_span(self, record: Dict[str, Any]) -> None:
        """File a supervisor-built span record under its trace."""
        self.traces.add_spans(str(record["trace_id"]), [record])

    def _journal_event(self, event: str, key: str, **fields: object) -> None:
        """Append one journal record, if durability is on."""
        if self.journal is not None:
            self.journal.append(event, key, **fields)

    def _finish_job(
        self,
        key: str,
        exit_code: Optional[int] = None,
        output: Optional[bytes] = None,
        stderr: str = "",
        error: Optional[Dict[str, object]] = None,
        dead_letter: bool = False,
    ) -> Optional[Job]:
        """Complete a job in the table *and* close its journal episode.

        Every terminal transition funnels through here so the journal
        can never miss one — an episode left open by a forgotten call
        site would be re-executed on every restart.
        """
        job = self.jobs.complete(
            key,
            exit_code=exit_code,
            output=output,
            stderr=stderr,
            error=error,
            dead_letter=dead_letter,
        )
        if job is None:
            return None
        if dead_letter:
            self._journal_event(
                "dead_lettered",
                key,
                crashes=job.prior_crashes + job.attempts,
                error_type=str((error or {}).get("type") or "worker-crashed"),
            )
        elif error is not None:
            self._journal_event(
                "failed",
                key,
                error_type=str(error.get("type") or "unknown"),
                message=str(error.get("message") or "")[:200],
            )
        else:
            self._journal_event("completed", key, exit_code=exit_code)
        return job

    def _crash_budget_exceeded(self, key: str, attempts: int) -> bool:
        """True when one more retry would exceed the crash budget.

        ``prior_crashes`` counts ``running`` events journaled by earlier
        server lives; ``attempts`` counts this life's worker crashes.
        """
        job = self.jobs.by_key(key)
        prior = 0 if job is None else job.prior_crashes
        return prior + attempts >= self.config.dead_letter_attempts

    def _on_complete(self, task: Task, result: Result) -> None:
        key = str(task["key"])
        trace_id = task.get("trace_id")
        spans = result.get("spans")
        if trace_id and spans:
            self.traces.add_spans(str(trace_id), list(spans))
        worker_metrics = result.get("metrics")
        if worker_metrics is not None:
            # Engine counters recorded inside the worker process land in
            # the same /metrics snapshot as the service's own.
            get_obs().metrics.merge(worker_metrics)
        if task.get("kind") == "shard":
            self._on_shard_complete(task, result)
            return
        error = result.get("error")
        if error is not None:
            job = self._fail_or_dead_letter(
                key, dict(error), stderr=str(result.get("stderr", ""))
            )
            self._note_completion(job)
            return
        exit_code = int(result["exit_code"])
        output = str(result["output"]).encode("utf-8")
        stderr = str(result.get("stderr", ""))
        if exit_code != 0:
            job = self._finish_job(
                key,
                exit_code=exit_code,
                output=output,
                stderr=stderr,
                error={
                    "type": "command-failed",
                    "message": stderr.strip() or "command exited non-zero",
                    "exit_code": exit_code,
                },
            )
            self._note_completion(job)
            return
        self.store.put(key, output)
        job = self._finish_job(
            key, exit_code=0, output=output, stderr=stderr
        )
        self._note_completion(job)

    def _fail_or_dead_letter(
        self, key: str, error: Dict[str, object], stderr: str = ""
    ) -> Optional[Job]:
        """Fail a job, dead-lettering it when its crash budget is spent.

        Only worker crashes count against the budget: a clean non-zero
        exit or a timeout is a deterministic outcome, not a poison pill.
        """
        if error.get("type") == "worker-crashed":
            attempts = int(error.get("attempts", 1) or 1)
            if self._crash_budget_exceeded(key, attempts):
                job = self._finish_job(
                    key,
                    stderr=stderr,
                    error={
                        "type": "dead-lettered",
                        "message": (
                            "job exceeded its crash budget; see "
                            "/v1/jobs?state=dead_lettered"
                        ),
                        "cause": dict(error),
                    },
                    dead_letter=True,
                )
                if job is not None:
                    get_obs().metrics.counter(
                        "service.jobs.dead_lettered"
                    ).inc()
                    self.log.error(
                        "service.job.dead-lettered",
                        job=job.id,
                        trace_id=job.trace_id,
                        crashes=job.prior_crashes + job.attempts,
                        budget=self.config.dead_letter_attempts,
                    )
                return job
        return self._finish_job(key, stderr=stderr, error=error)

    def _on_shard_complete(self, task: Task, result: Result) -> None:
        """Account one shard's outcome; dispatch the merge when all land.

        A failed shard fails the whole job (its waiters must not hang),
        annotated with which shard died.  The final shard triggers the
        ordinary CLI task for the parent job: its profile reads are all
        cache hits, so it only merges and formats.
        """
        parent_key = str(task["parent_key"])
        shard_no = int(task["shard_index"]) + 1
        shard_count = int(task["shard_count"])
        metrics = get_obs().metrics
        error = result.get("error")
        if error is None and int(result.get("exit_code", 1)) != 0:
            error = {
                "type": "command-failed",
                "message": str(result.get("stderr", "")).strip()
                or "shard task exited non-zero",
                "exit_code": int(result.get("exit_code", 1)),
            }
        if error is not None:
            metrics.counter("service.shards.failed").inc()
            job = self._fail_or_dead_letter(
                parent_key,
                {
                    **dict(error),
                    "shard": shard_no,
                    "shard_count": shard_count,
                },
                stderr=str(result.get("stderr", "")),
            )
            self._note_completion(job)
            return
        metrics.counter("service.shards.completed").inc()
        progress = self.jobs.note_shard_done(parent_key)
        if progress is None:
            # The job already failed (a sibling shard died) — nothing to
            # dispatch.
            return
        # The shard's profile checkpoint is durable in the cache before
        # this record commits, so replay may safely skip the shard.
        self._journal_event(
            "shard_done",
            parent_key,
            shard_index=shard_no - 1,
            shard_count=shard_count,
        )
        done, total = progress
        if done < total:
            return
        self._dispatch_finalize(parent_key)

    def _dispatch_finalize(self, parent_key: str) -> None:
        """Queue the merge run once every shard of a job has landed."""
        job = self.jobs.by_key(parent_key)
        if job is None:
            return
        final: Task = {
            "key": parent_key,
            "argv": job.spec.to_argv(str(self.profile_cache_dir)),
            "test_delay_s": 0.0,
            "priority": job.spec.priority,
            "engine": job.spec.engine,
            "on_running": self._mark_running,
            "trace_id": job.trace_id,
            "parent_span": job.span_id,
        }
        try:
            # Never capacity-reject the merge of an admitted job.
            self.pool.submit(final, enforce_capacity=False)
        except (PoolSaturated, PoolClosed):
            completed = self._finish_job(
                parent_key,
                error={
                    "type": "shutdown",
                    "message": "pool shut down before the shard merge",
                },
            )
            self._note_completion(completed)

    def _note_completion(self, job: Optional[Job]) -> None:
        """Log failures and slow jobs (the slow-job log satellite)."""
        if job is None:
            return
        wall_s = time.monotonic() - job.queued_monotonic
        if job.error is not None:
            self.log.warning(
                "service.job.failed",
                job=job.id,
                trace_id=job.trace_id,
                command=job.spec.command,
                error_type=str(job.error.get("type")),
                attempts=job.attempts,
                wall_s=round(wall_s, 3),
            )
        if wall_s >= self.config.slow_job_threshold_s:
            get_obs().metrics.counter("service.jobs.slow").inc()
            self.log.warning(
                "service.job.slow",
                job=job.id,
                trace_id=job.trace_id,
                command=job.spec.command,
                attempts=job.attempts,
                wall_s=round(wall_s, 3),
                threshold_s=self.config.slow_job_threshold_s,
            )

    # -- recovery -------------------------------------------------------
    def _recover(self, state: JournalState) -> None:
        """Rebuild job state from the journal and re-enqueue open work.

        Runs once, in ``__init__``, after the pool started and before
        the HTTP server exists — so recovery tasks queue ahead of any
        fresh request.  Open episodes are resubmitted interactive-first
        (then journal order), episodes over the crash budget land in
        the dead-letter set, and already-journaled ``shard_done``
        checkpoints are skipped.  The whole pass is traced under one
        ``service.recover`` root.
        """
        metrics = get_obs().metrics
        started = time.monotonic()
        ctx = TraceContext.new()
        tracer = SpanTracer()
        requeued = dead = dropped = 0
        metrics.counter("service.journal.replayed").inc(state.events)
        dead_lettered_counter = metrics.counter(
            "service.recovery.dead_lettered"
        )
        with tracer.span(
            "service.recover",
            events=state.events,
            torn_lines=state.torn_lines,
        ):
            for episode in state.dead_lettered():
                spec = episode.spec or {}
                self.jobs.register_dead_letter(
                    episode.key,
                    {
                        "command": spec.get("command"),
                        "trace": spec.get("trace"),
                        "priority": episode.priority,
                        "crashes": episode.crashes,
                        "error": {
                            "type": episode.error_type or "dead-lettered",
                            "message": episode.message
                            or "dead-lettered in an earlier server life",
                        },
                        "recovered": True,
                    },
                )
            work: List[EpisodeState] = []
            for episode in state.unfinished():
                if episode.spec is None:
                    # No submitted record survived (compacted away or in
                    # a lost segment): nothing to re-run.
                    self._journal_event(
                        "failed",
                        episode.key,
                        error_type="unreplayable",
                        message="no spec in the journal for this episode",
                    )
                    dropped += 1
                    continue
                if episode.crashes >= self.config.dead_letter_attempts:
                    self.jobs.register_dead_letter(
                        episode.key,
                        {
                            "command": episode.spec.get("command"),
                            "trace": episode.spec.get("trace"),
                            "priority": episode.priority,
                            "crashes": episode.crashes,
                            "error": {
                                "type": "dead-lettered",
                                "message": (
                                    "crash budget exhausted across "
                                    "restarts"
                                ),
                            },
                            "recovered": True,
                        },
                    )
                    self._journal_event(
                        "dead_lettered",
                        episode.key,
                        crashes=episode.crashes,
                        error_type="worker-crashed",
                    )
                    dead_lettered_counter.inc()
                    dead += 1
                    continue
                work.append(episode)
            work.sort(
                key=lambda e: (
                    _PRIORITY_RANK.get(e.priority, 0),
                    e.first_seq,
                )
            )
            for episode in work:
                if self._resubmit_recovered(episode, ctx, tracer):
                    requeued += 1
                else:
                    dropped += 1
        duration = time.monotonic() - started
        metrics.counter("service.recovery.requeued").inc(requeued)
        metrics.gauge("service.recovery.duration_s").set(duration)
        self.traces.add_spans(
            ctx.trace_id, bind_records(ctx, tracer.records, origin="server")
        )
        if state.events or state.torn_lines:
            self.log.info(
                "service.recovered",
                trace_id=ctx.trace_id,
                events=state.events,
                torn_lines=state.torn_lines,
                requeued=requeued,
                dead_lettered=dead,
                dropped=dropped,
                duration_s=round(duration, 3),
            )

    def _resubmit_recovered(
        self,
        episode: EpisodeState,
        ctx: TraceContext,
        tracer: SpanTracer,
    ) -> bool:
        """Re-enqueue one open episode; True when it is back in flight.

        Episodes that cannot or must not run again — unparseable spec,
        unreadable or *changed* trace (recomputing the job key guards
        the result store against committing different bytes under the
        journaled key), result already in the store — are closed with a
        terminal journal event instead.
        """
        key = episode.key
        assert episode.spec is not None
        try:
            spec = JobSpec.from_document(episode.spec)
        except BadRequest as exc:
            self._journal_event(
                "failed",
                key,
                error_type="unreplayable",
                message=str(exc)[:200],
            )
            return False
        try:
            network = self.networks.get(spec.trace)
        except OSError as exc:
            self._journal_event(
                "failed",
                key,
                error_type="trace-unreadable",
                message=str(exc)[:200],
            )
            return False
        reason = network.degenerate_reason()
        if reason is not None:
            self._journal_event(
                "failed",
                key,
                error_type="degenerate-trace",
                message=str(reason)[:200],
            )
            return False
        if job_key(spec, network) != key:
            self._journal_event(
                "failed",
                key,
                error_type="trace-changed",
                message=(
                    "trace content no longer matches the journaled job key"
                ),
            )
            self.log.warning(
                "service.recover.trace-changed",
                trace_id=ctx.trace_id,
                job=key[:32],
                trace=spec.trace,
            )
            return False
        if self.store.get(key) is not None:
            # The previous life stored the bytes but died before the
            # ``completed`` record committed — close the episode now.
            self._journal_event("completed", key, exit_code=0)
            return False
        with tracer.span(
            "service.recover.job",
            key=key[:32],
            priority=spec.priority,
            crashes=episode.crashes,
            shards_done=len(episode.shards_done),
        ) as span:
            exec_span_id = derive_span_id(ctx.span_id, span.span_id)
            job, created = self.jobs.get_or_create(
                key, spec, trace_id=ctx.trace_id, span_id=exec_span_id
            )
            if not created:
                return False
            # No HTTP client waits on a recovered job: its output goes
            # to the result store and the episode closes in the journal.
            job.recovered = True
            job.prior_crashes = episode.crashes
            job.waiters = 0
            log = self.log.bind(trace_id=ctx.trace_id, job=job.id)
            if spec.shards > 1:
                failure = self._submit_sharded(
                    job,
                    spec,
                    key,
                    ctx,
                    exec_span_id,
                    network,
                    log,
                    skip_shards=episode.shards_done,
                    enforce_capacity=False,
                )
                if failure is not None:
                    return False
                return True
            task: Task = {
                "key": key,
                "argv": spec.to_argv(str(self.profile_cache_dir)),
                "test_delay_s": 0.0,
                "priority": spec.priority,
                "engine": spec.engine,
                "on_running": self._mark_running,
                "trace_id": ctx.trace_id,
                "parent_span": exec_span_id,
            }
            try:
                self.pool.submit(task, enforce_capacity=False)
            except (PoolSaturated, PoolClosed):
                self._finish_job(
                    key,
                    error={
                        "type": "shutdown",
                        "message": "pool closed during recovery",
                    },
                )
                return False
            return True

    # -- request handling -----------------------------------------------
    def handle_query(
        self,
        command: str,
        raw_body: bytes,
        ctx: Optional[TraceContext] = None,
        remote_parent: Optional[str] = None,
    ) -> Response:
        """One query request, traced end to end.

        Spans go on a per-request tracer (handler threads must not share
        the session tracer's stack) and are bound into the trace store
        once the request's root span closes.  Unexpected exceptions
        become structured 500s that still carry the trace id.
        """
        if ctx is None:
            ctx, remote_parent = mint_context(None)
        obs = get_obs()
        tracer = SpanTracer()
        try:
            with obs.metrics.timer("service.http.latency", endpoint=command):
                with tracer.span("service.http.request", endpoint=command):
                    response = self._handle_query(
                        command, raw_body, ctx, tracer
                    )
        except Exception as exc:  # pragma: no cover - defence in depth
            obs.metrics.counter("service.http.errors").inc()
            self.log.error(
                "service.request.error",
                trace_id=ctx.trace_id,
                endpoint=command,
                error=f"{type(exc).__name__}: {exc}",
            )
            response = Response.error(
                500, "internal-error", f"{type(exc).__name__}: {exc}"
            )
        # The inbound caller's span lives in *its* process, not in this
        # store, so it is recorded as an attribute rather than as the
        # root's parent_span_id — exported traces stay self-contained
        # (every parent resolves; the validator enforces it).
        bound = bind_records(ctx, tracer.records, origin="server")
        if remote_parent is not None:
            for record in bound:
                if record["span_id"] == ctx.span_id:
                    attrs = record["attrs"]
                    if isinstance(attrs, dict):
                        attrs["remote_parent"] = remote_parent
        self.traces.add_spans(ctx.trace_id, bound)
        return with_trace(response, ctx)

    def _handle_query(
        self,
        command: str,
        raw_body: bytes,
        ctx: TraceContext,
        tracer: SpanTracer,
    ) -> Response:
        log = self.log.bind(trace_id=ctx.trace_id, endpoint=command)
        try:
            body = json.loads(raw_body.decode("utf-8")) if raw_body else {}
        except ValueError as exc:
            log.warning("service.request.bad", reason="invalid-json")
            return Response.error(400, "bad-request", f"invalid JSON: {exc}")
        with tracer.span("service.admit", endpoint=command):
            try:
                spec = normalize_request(
                    command,
                    body,
                    allow_test_delay=self.config.allow_test_delay,
                )
                network = self.networks.get(spec.trace)
            except BadRequest as exc:
                log.warning(
                    "service.request.bad",
                    reason="bad-request",
                    field=exc.field,
                )
                return Response.error(
                    400, "bad-request", exc.message,
                    **({} if exc.field is None else {"field": exc.field}),
                )
            except OSError as exc:
                log.warning("service.request.bad", reason="trace-unreadable")
                return Response.error(
                    400, "bad-request", f"cannot read trace: {exc}"
                )
            reason = network.degenerate_reason()
            if reason is not None:
                # An empty or zero-span trace (e.g. after an aggressive
                # ablation) has no observation window: computing would
                # produce nonsense CDFs, so the request fails loudly.
                log.warning(
                    "service.request.bad", reason="degenerate-trace"
                )
                return Response.error(
                    400,
                    "bad-request",
                    f"trace is not analyzable: {reason}",
                    field="trace",
                )
            key = job_key(spec, network)
            stored = self.store.get(key)
        if stored is not None:
            return self._success(stored, key, source="store")
        dead = self.jobs.dead_letter_record(key)
        if dead is not None:
            # A poison job must not re-enter the queue by resubmission;
            # the operator clears it by compacting the journal with
            # --drop-dead-letters.
            log.warning("service.request.dead-letter", job=dead.get("job"))
            return Response.error(
                409,
                "dead-lettered",
                "job exceeded its crash budget and will not be retried; "
                "see GET /v1/jobs?state=dead_lettered",
                job=str(dead.get("job")),
                crashes=int(dead.get("crashes", 0) or 0),
            )

        with tracer.span("service.execute", key=key[:32]) as exec_span:
            # The execute span's trace-scoped id must exist *before* the
            # span record does: the supervisor and the worker parent
            # their spans under it, and coalesced followers link to it.
            exec_span_id = derive_span_id(ctx.span_id, exec_span.span_id)
            job, created = self.jobs.get_or_create(
                key, spec, trace_id=ctx.trace_id, span_id=exec_span_id
            )
            exec_span.set(coalesced=not created)
            if created:
                # Write-ahead: the submission is durable before the pool
                # sees it, so a crash between journal and queue re-runs
                # the job instead of losing it.  A rejected submission
                # closes the episode with a terminal ``failed`` below.
                self._journal_event("submitted", key, spec=spec.to_document())
            if created and spec.shards > 1:
                failure = self._submit_sharded(
                    job, spec, key, ctx, exec_span_id, network, log
                )
                if failure is not None:
                    return failure
            elif created:
                task: Task = {
                    "key": key,
                    "argv": spec.to_argv(str(self.profile_cache_dir)),
                    "test_delay_s": spec.test_delay_s,
                    "priority": spec.priority,
                    "engine": spec.engine,
                    "on_running": self._mark_running,
                    "trace_id": ctx.trace_id,
                    "parent_span": exec_span_id,
                }
                try:
                    self.pool.submit(task)
                except PoolSaturated:
                    self._finish_job(
                        key,
                        error={"type": "rejected", "message": "queue full"},
                    )
                    log.warning("service.request.shed", job=job.id)
                    retry_after = self.pool.retry_after_s()
                    return Response.error(
                        429,
                        "saturated",
                        "worker pool and queue are full; retry later",
                        headers={"Retry-After": str(int(retry_after))},
                    )
                except PoolClosed:
                    self._finish_job(
                        key,
                        error={
                            "type": "shutdown",
                            "message": "pool shut down",
                        },
                    )
                    return Response.error(
                        503, "shutting-down", "service is draining"
                    )
            elif job.trace_id is not None and job.span_id is not None:
                # Coalesce fan-in, kept as links in both traces: the
                # follower points at the leader's compute span, and the
                # leader's trace records every follower that attached.
                self.traces.add_link(
                    ctx.trace_id,
                    {
                        "type": "coalesce",
                        "span_id": exec_span_id,
                        "linked_trace_id": job.trace_id,
                        "linked_span_id": job.span_id,
                    },
                )
                self.traces.add_link(
                    job.trace_id,
                    {
                        "type": "coalesce-fan-in",
                        "span_id": job.span_id,
                        "linked_trace_id": ctx.trace_id,
                        "linked_span_id": exec_span_id,
                    },
                )
            return self._await_job(job, coalesced=not created, log=log)

    def _mark_running(self, task: Task) -> None:
        key = str(task["key"])
        attempts = int(task["attempts"])
        if self.jobs.mark_running(key, attempts):
            # Only the QUEUED→RUNNING edge is journaled — once per
            # server life — so the count of ``running`` events in an
            # open episode is exactly the cross-restart crash count.
            self._journal_event("running", key, attempts=attempts)

    def _mark_shard_running(self, task: Task) -> None:
        key = str(task["parent_key"])
        attempts = int(task["attempts"])
        if self.jobs.mark_running(key, attempts):
            self._journal_event("running", key, attempts=attempts)

    def _submit_sharded(
        self,
        job: Job,
        spec: JobSpec,
        key: str,
        ctx: TraceContext,
        exec_span_id: str,
        network: Any,
        log: Any,
        skip_shards: Collection[int] = (),
        enforce_capacity: bool = True,
    ) -> Optional[Response]:
        """Fan one admitted job out as per-shard cache warm-up tasks.

        Each shard computes its slice of the profile cache in its own
        worker task (own attempt spans, own crash retry); the
        finalisation CLI run — dispatched by :meth:`_on_shard_complete`
        once every shard landed — then merges an all-hits cache.  A
        crashed worker therefore loses at most one shard of progress.

        Backpressure is per job: only the first shard is capacity
        checked, because rejecting a sibling of an admitted job would
        strand it.  Returns the error response on rejection, None when
        the fan-out is queued.

        ``skip_shards`` holds shard indices whose ``shard_done`` record
        the journal already carries — recovery pre-marks them done and
        dispatches only the rest, so restart recomputes exactly the
        missing shards (their profiles are cache hits regardless, but
        skipping saves the worker round-trips).
        """
        plan = shard_sources(network.nodes, spec.shards)
        self.jobs.begin_fanout(job.key, len(plan))
        metrics = get_obs().metrics
        dispatched = metrics.counter("service.shards.dispatched")
        shards_skipped = metrics.counter("service.recovery.shards_skipped")
        skipped = {i for i in skip_shards if 0 <= i < len(plan)}
        log.info(
            "service.job.sharded",
            job=job.id,
            shards=len(plan),
            sources=len(network.nodes),
            skipped=len(skipped),
        )
        first = True
        for index in range(len(plan)):
            if index in skipped:
                shards_skipped.inc()
                self.jobs.note_shard_done(key)
                continue
            task: Task = {
                "key": f"{key}#shard-{index + 1}of{len(plan)}",
                "kind": "shard",
                "parent_key": key,
                "trace": spec.trace,
                "max_hops": spec.max_hops,
                "shard_index": index,
                "shard_count": len(plan),
                "engine": spec.engine,
                "cache_dir": str(self.profile_cache_dir),
                "test_delay_s": spec.test_delay_s,
                "priority": spec.priority,
                "on_running": self._mark_shard_running,
                "trace_id": ctx.trace_id,
                "parent_span": exec_span_id,
            }
            try:
                self.pool.submit(
                    task, enforce_capacity=(first and enforce_capacity)
                )
            except PoolSaturated:
                self._finish_job(
                    key,
                    error={"type": "rejected", "message": "queue full"},
                )
                log.warning("service.request.shed", job=job.id)
                retry_after = self.pool.retry_after_s()
                return Response.error(
                    429,
                    "saturated",
                    "worker pool and queue are full; retry later",
                    headers={"Retry-After": str(int(retry_after))},
                )
            except PoolClosed:
                self._finish_job(
                    key,
                    error={"type": "shutdown", "message": "pool shut down"},
                )
                return Response.error(
                    503, "shutting-down", "service is draining"
                )
            first = False
            dispatched.inc()
        if len(skipped) >= len(plan):
            # Every shard was already checkpointed — straight to merge.
            self._dispatch_finalize(key)
        return None

    def _await_job(
        self, job: Job, coalesced: bool, log: Any = None
    ) -> Response:
        # Worst case the job runs max_attempts times back to back, plus
        # scheduler slack; the pool's own timeout fires well before this.
        # A sharded job serialises in the worst case (one worker): every
        # shard plus the finalisation run gets its own timeout budget.
        units = max(1, job.shards_total) + (
            1 if job.shards_total > 1 else 0
        )
        budget = (
            self.config.job_timeout_s * self.config.max_attempts * units
            + 30.0
        )
        if not job.done.wait(budget):
            if log is not None:
                log.error(
                    "service.request.wait-timeout",
                    job=job.id,
                    budget_s=budget,
                )
            return Response.error(
                504,
                "wait-timeout",
                f"job {job.id} did not finish within {budget:g}s",
                job=job.id,
            )
        if job.error is not None or job.output is None:
            error = dict(
                job.error
                or {"type": "unknown", "message": "job produced no output"}
            )
            return Response.json(
                500,
                {"error": error, "job": job.id, "stderr": job.stderr},
            )
        return self._success(
            job.output,
            job.key,
            source="coalesced" if coalesced else "computed",
        )

    def _success(self, payload: bytes, key: str, source: str) -> Response:
        get_obs().metrics.counter(
            "service.http.responses", source=source
        ).inc()
        return Response(
            200,
            payload,
            content_type="text/plain; charset=utf-8",
            headers={
                "X-Repro-Job": key[:32],
                "X-Repro-Source": source,
            },
        )

    def handle_job(self, job_id: str) -> Response:
        document = self.jobs.lookup_document(job_id)
        if document is not None:
            return Response.json(200, document)
        # A job can age out of the table while its result lives on in
        # the store (the id doubles as the store file stem).
        if (self.store.root / f"result-{job_id}.bin").exists():
            return Response.json(
                200, {"job": job_id, "state": "done", "source": "store"}
            )
        return Response.error(404, "not-found", f"unknown job {job_id!r}")

    #: hard ceiling on one ``GET /v1/jobs`` page.
    _MAX_JOBS_PAGE = 500

    def handle_jobs_list(self, query: str) -> Response:
        """``GET /v1/jobs`` — the queue, recent history, dead letters.

        ``?state=`` and ``?priority=`` filter, ``?limit=`` bounds the
        page (default 100, ceiling 500).  Bad filter values are 400s,
        not silent empty pages.
        """
        params = parse_qs(query, keep_blank_values=True)
        unknown = sorted(set(params) - {"state", "priority", "limit"})
        if unknown:
            return Response.error(
                400,
                "bad-request",
                f"unknown query parameter(s): {', '.join(unknown)}",
                field=unknown[0],
            )
        state = params.get("state", [None])[-1] or None
        if state is not None and state not in STATES:
            return Response.error(
                400,
                "bad-request",
                f"state must be one of {', '.join(STATES)}",
                field="state",
            )
        priority = params.get("priority", [None])[-1] or None
        if priority is not None and priority not in PRIORITIES:
            return Response.error(
                400,
                "bad-request",
                f"priority must be one of {', '.join(PRIORITIES)}",
                field="priority",
            )
        limit = 100
        raw_limit = params.get("limit", [None])[-1]
        if raw_limit is not None:
            try:
                limit = int(raw_limit)
            except ValueError:
                return Response.error(
                    400, "bad-request", "limit must be an integer",
                    field="limit",
                )
            if not 1 <= limit <= self._MAX_JOBS_PAGE:
                return Response.error(
                    400,
                    "bad-request",
                    f"limit must be in [1, {self._MAX_JOBS_PAGE}]",
                    field="limit",
                )
        jobs = self.jobs.list_jobs(state=state, priority=priority, limit=limit)
        return Response.json(
            200,
            {
                "jobs": jobs,
                "count": len(jobs),
                "inflight": self.jobs.inflight_count(),
                "dead_lettered": self.jobs.dead_letter_count(),
            },
        )

    def handle_health(self) -> Response:
        pool = self.pool.health()
        document: Dict[str, object] = {
            "status": pool["state"],
            "pool": pool,
            "store": self.store.stats(),
            "jobs": {
                "inflight": self.jobs.inflight_count(),
                "finished": self.jobs.finished_count(),
                "dead_lettered": self.jobs.dead_letter_count(),
            },
            "journal": (
                None
                if self.journal is None
                else {
                    "dir": str(self.journal.root),
                    "next_seq": self.journal.next_seq,
                    "fsync": self.journal.fsync,
                }
            ),
            "traces": self.traces.stats(),
        }
        status = 200 if pool["state"] == "healthy" else 503
        return Response.json(status, document)

    def handle_metrics(self) -> Response:
        text = get_obs().metrics.render_text()
        return Response(
            200,
            text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def handle_traces(self) -> Response:
        """``GET /debug/traces`` — the ring's summary listing."""
        return Response.json(
            200,
            {"traces": self.traces.summaries(), "stats": self.traces.stats()},
        )

    def handle_trace(self, trace_id: str) -> Response:
        """``GET /debug/traces/<id>`` — one trace as repro.trace/1 JSONL."""
        export = self.traces.export_jsonl(trace_id.strip().lower())
        if export is None:
            return Response.error(
                404, "not-found", f"unknown or evicted trace {trace_id!r}"
            )
        return Response(
            200,
            export.encode("utf-8"),
            content_type="application/x-ndjson",
        )

    def close(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Shut the pool down; with ``drain``, let queued work finish."""
        drained = self.pool.shutdown(drain=drain, timeout_s=timeout_s)
        if self.journal is not None:
            self.journal.close()
        return drained


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shell over a :class:`ReproService`."""

    service: ReproService
    server_version = "repro-service/1"

    # -- plumbing -------------------------------------------------------
    def _send(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def log_message(self, format: str, *args: object) -> None:
        # Request logging is a structured-logger concern, not stderr's.
        pass

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.service.config.max_body_bytes:
            return None
        return self.rfile.read(length) if length else b""

    # -- routes ---------------------------------------------------------
    def do_POST(self) -> None:
        get_obs().metrics.counter("service.http.requests", method="POST").inc()
        self._route("POST")

    def do_GET(self) -> None:
        get_obs().metrics.counter("service.http.requests", method="GET").inc()
        self._route("GET")

    def _route(self, method: str) -> None:
        """Mint the trace context, dispatch, and never leak a bare 500."""
        ctx, remote_parent = mint_context(self.headers.get("traceparent"))
        try:
            response = self._dispatch(method, ctx, remote_parent)
        except Exception as exc:
            get_obs().metrics.counter("service.http.errors").inc()
            get_logger("repro.service").error(
                "service.request.error",
                trace_id=ctx.trace_id,
                path=self.path,
                error=f"{type(exc).__name__}: {exc}",
            )
            response = Response.error(
                500, "internal-error", f"{type(exc).__name__}: {exc}"
            )
        self._send(with_trace(response, ctx))

    def _dispatch(
        self, method: str, ctx: TraceContext, remote_parent: Optional[str]
    ) -> Response:
        obs = get_obs()
        if method == "POST":
            for command in COMMANDS:
                if self.path == f"/v1/{command}":
                    body = self._read_body()
                    if body is None:
                        return Response.error(
                            413, "too-large", "request body too large"
                        )
                    return self.service.handle_query(
                        command, body, ctx=ctx, remote_parent=remote_parent
                    )
            return Response.error(
                404, "not-found", f"no route {self.path!r}"
            )
        if self.path == "/healthz":
            with obs.metrics.timer("service.http.latency", endpoint="healthz"):
                return self.service.handle_health()
        if self.path == "/metrics":
            with obs.metrics.timer("service.http.latency", endpoint="metrics"):
                return self.service.handle_metrics()
        if self.path == "/debug/traces":
            with obs.metrics.timer(
                "service.http.latency", endpoint="debug-traces"
            ):
                return self.service.handle_traces()
        if self.path.startswith("/debug/traces/"):
            with obs.metrics.timer(
                "service.http.latency", endpoint="debug-trace"
            ):
                return self.service.handle_trace(
                    self.path[len("/debug/traces/"):]
                )
        parsed = urlsplit(self.path)
        if parsed.path == "/v1/jobs":
            with obs.metrics.timer(
                "service.http.latency", endpoint="jobs-list"
            ):
                return self.service.handle_jobs_list(parsed.query)
        if parsed.path.startswith("/v1/jobs/"):
            with obs.metrics.timer("service.http.latency", endpoint="jobs"):
                return self.service.handle_job(
                    parsed.path[len("/v1/jobs/"):]
                )
        return Response.error(404, "not-found", f"no route {self.path!r}")


def make_server(
    service: ReproService,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> ThreadingHTTPServer:
    """A ready-to-serve threaded HTTP server bound to ``service``.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address``.
    """
    handler: Type[_Handler] = type(
        "_BoundHandler", (_Handler,), {"service": service}
    )
    address: Tuple[str, int] = (
        service.config.host if host is None else host,
        service.config.port if port is None else port,
    )
    server = ThreadingHTTPServer(address, handler)
    server.daemon_threads = True
    return server


def serve_in_thread(
    service: ReproService,
) -> Tuple[ThreadingHTTPServer, threading.Thread, str]:
    """Start serving on a background thread; returns (server, thread, url).

    The caller owns shutdown: ``server.shutdown()`` then
    ``service.close()``.  Used by tests and the load benchmark.
    """
    server = make_server(service)
    host, port = server.server_address[0], server.server_address[1]
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server, thread, f"http://{host}:{port}"
