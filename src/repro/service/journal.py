"""Durable job journal: an append-only write-ahead log for the service.

The whole point of the service's job machinery — single-flight table,
shard fan-out, result store — used to live in process memory: a crash
or deploy restart silently dropped every queued and in-flight job even
though the shard checkpoints already persisted the expensive work in
the content-addressed profile cache.  This module closes that gap with
a **write-ahead journal** (schema ``repro.journal/1``, following the
repo's ``repro.bench/1`` / ``repro.trace/1`` / ``repro.lockwatch/1``
artifact conventions):

* :class:`JournalWriter` — append-only JSON Lines segments under a
  journal directory, one event per line, ``fsync``-on-commit (every
  event is a commit record: a ``submitted`` event that is not durable
  is a job that silently vanishes on crash), with size-based segment
  rotation so one hot service does not grow a single unbounded file;
* :func:`replay` / :class:`JournalState` — fold the journal back into
  per-job *episodes* (``submitted`` opens, a terminal event closes;
  a later ``submitted`` for the same key starts a fresh episode, e.g.
  after the result store evicted the bytes) and report what a
  restarting server must do: re-enqueue unfinished jobs, surface
  dead-lettered ones, skip already-checkpointed shards;
* :func:`compact` — offline compaction: drop closed episodes whose
  outcome lives in the result store, keep open and dead-lettered ones,
  rewrite the directory as a single fresh segment;
* :func:`validate_journal_lines` — the artifact contract CI enforces
  (schema version, monotonic ``seq``, per-episode event ordering,
  terminal-state uniqueness), shared by
  ``benchmarks/validate_artifacts.py journal``.

Durability contract: every line is one JSON object, appended and
fsynced before the action it records is considered committed.  A
SIGKILL can therefore leave at most one torn line at the very end of
the newest segment; :func:`replay` tolerates exactly that (the torn
tail is dropped), while the validator flags torn lines anywhere else.
A restarting :class:`JournalWriter` *truncates* the torn tail before
its first append (the record was never acknowledged), so the invariant
holds across any number of crash/restart cycles.

Events and their payload fields (all records carry ``schema``,
``seq``, ``event``, ``key``, ``unix``):

========== ==========================================================
event       fields
========== ==========================================================
submitted   ``spec`` (the :class:`~repro.service.jobs.JobSpec`
            document, priority included), opens an episode
running     ``attempts`` — written once per *server life* (the
            first attempt only), so the number of ``running``
            events in an open episode counts how many times a
            server died while executing the job
shard_done  ``shard_index``, ``shard_count`` — one shard's profile
            checkpoint landed in the content-addressed cache
completed   ``exit_code`` — terminal; the bytes are in the store
failed      ``error_type``, ``message`` — terminal
dead_lettered ``crashes``, ``error_type`` — terminal; the job
            exceeded the crash budget and must not be retried
========== ==========================================================
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..obs import get_obs
from ..obs.tracectx import now_unix

#: bump when the record layout changes incompatibly.
JOURNAL_SCHEMA = "repro.journal/1"

#: every event a journal may carry, in no particular order.
EVENTS = (
    "submitted",
    "running",
    "shard_done",
    "completed",
    "failed",
    "dead_lettered",
)

#: events that close an episode.
TERMINAL_EVENTS = frozenset({"completed", "failed", "dead_lettered"})

#: segment files are ``journal-<nnnnnn>.jsonl`` under the journal dir.
_SEGMENT_PREFIX = "journal-"
_SEGMENT_SUFFIX = ".jsonl"

#: default rotation threshold — small enough that compaction and CI
#: exercise rotation, large enough that one segment holds thousands of
#: events (a record is ~200 bytes).
DEFAULT_SEGMENT_BYTES = 1 << 20

PathLike = Union[str, Path]


class JournalError(ValueError):
    """A journal that violates the ``repro.journal/1`` contract."""


def _segment_index(path: Path) -> Optional[int]:
    name = path.name
    if not name.startswith(_SEGMENT_PREFIX) or not name.endswith(
        _SEGMENT_SUFFIX
    ):
        return None
    stem = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    if not stem.isdigit():
        return None
    return int(stem)


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:06d}{_SEGMENT_SUFFIX}"


def segment_paths(journal_dir: PathLike) -> List[Path]:
    """The directory's segment files, in rotation (= replay) order."""
    root = Path(journal_dir)
    if not root.is_dir():
        return []
    indexed = []
    for path in root.iterdir():
        index = _segment_index(path)
        if index is not None:
            indexed.append((index, path))
    return [path for _index, path in sorted(indexed)]


def read_journal_lines(journal_dir: PathLike) -> List[str]:
    """Every line of every segment, concatenated in rotation order."""
    lines: List[str] = []
    for path in segment_paths(journal_dir):
        lines.extend(path.read_text(encoding="utf-8").splitlines())
    return lines


class JournalWriter:
    """Append events to the newest segment, fsync, rotate by size.

    Thread-safe: the HTTP handler threads, the pool supervisor and the
    recovery path all append through one instance.  The segment stream
    is kept open across appends (REP008: ``open`` never runs on the
    per-event path) and the raw ``write``/``flush``/``fsync`` triple is
    serialised under one lock so records never interleave.
    """

    def __init__(
        self,
        journal_dir: PathLike,
        fsync: bool = True,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        next_seq: int = 1,
    ) -> None:
        if segment_max_bytes < 1:
            raise ValueError(
                f"segment_max_bytes must be >= 1, got {segment_max_bytes}"
            )
        self.root = Path(journal_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self._lock = threading.Lock()
        existing = segment_paths(self.root)
        if existing:
            last = existing[-1]
            index = _segment_index(last)
            assert index is not None
            self._segment_index = index  # guarded-by: _lock
            self._segment_bytes = self._repair_tail(last)  # guarded-by: _lock
        else:
            self._segment_index = 1
            self._segment_bytes = 0
        self._seq = next_seq  # guarded-by: _lock
        self._path = self.root / _segment_name(self._segment_index)
        self._stream = open(  # noqa: SIM115 - held open across appends
            self._path, "a", encoding="utf-8"
        )  # guarded-by: _lock
        metrics = get_obs().metrics
        self._appended = metrics.counter("service.journal.appended")
        self._fsyncs = metrics.counter("service.journal.fsyncs")
        self._rotations = metrics.counter("service.journal.rotations")
        self._bytes_gauge = metrics.gauge("service.journal.bytes")
        self._segments_gauge = metrics.gauge("service.journal.segments")
        self._publish_depth(self._segment_bytes, len(existing) or 1)

    @staticmethod
    def _repair_tail(path: Path) -> int:
        """Truncate a torn tail before appending; returns the new size.

        A SIGKILL mid-append leaves a partial line *without* a trailing
        newline at the end of the newest segment (a sequential append
        can never durably write the newline without the bytes before
        it).  The record was never acknowledged — appending after it
        would weld the next record onto the torn bytes and corrupt
        both — so the torn suffix is cut back to the last complete
        line, keeping the validator's invariant that a torn line can
        only ever be the very last one.
        """
        size = path.stat().st_size
        if size == 0:
            return 0
        data = path.read_bytes()
        if data.endswith(b"\n"):
            return size
        cut = data.rfind(b"\n") + 1
        with open(path, "r+b") as stream:
            stream.truncate(cut)
            stream.flush()
            os.fsync(stream.fileno())
        get_obs().metrics.counter("service.journal.torn_repaired").inc()
        return cut

    def _publish_depth(self, segment_bytes: int, segments: int) -> None:
        self._bytes_gauge.set(float(segment_bytes))
        self._segments_gauge.set(float(segments))

    def append(self, event: str, key: str, **fields: object) -> Dict[str, object]:
        """Append one event record and make it durable; returns it.

        The record is committed (written, flushed, fsynced) before this
        returns — callers may treat the journal as the source of truth
        for the action they are about to take.
        """
        if event not in EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        with self._lock:
            record: Dict[str, object] = {
                "schema": JOURNAL_SCHEMA,
                "seq": self._seq,
                "event": event,
                "key": key,
                "unix": now_unix(),
                **fields,
            }
            self._seq += 1
            line = json.dumps(record, sort_keys=True) + "\n"
            if (
                self._segment_bytes > 0
                and self._segment_bytes + len(line) > self.segment_max_bytes
            ):
                self._rotate_locked()
            self._stream.write(line)
            self._stream.flush()
            fsynced = self.fsync
            if fsynced:
                os.fsync(self._stream.fileno())
            self._segment_bytes += len(line)
            segment_bytes = self._segment_bytes
            segments = self._segment_index
        self._appended.inc()
        if fsynced:
            self._fsyncs.inc()
        self._publish_depth(segment_bytes, segments)
        return record

    def _rotate_locked(self) -> None:  # guarded-by: _lock
        """Switch to the next segment (caller holds ``_lock``)."""
        self._stream.flush()
        if self.fsync:
            os.fsync(self._stream.fileno())
        self._stream.close()
        self._segment_index += 1
        self._segment_bytes = 0
        self._path = self.root / _segment_name(self._segment_index)
        # reprolint: disable=REP008 -- rotation opens the next segment
        # under the append lock on purpose: appends must never interleave
        # with the switch, and rotation runs once per megabyte, not per
        # event.
        self._stream = open(self._path, "a", encoding="utf-8")
        self._rotations.inc()

    @property
    def next_seq(self) -> int:
        with self._lock:
            return self._seq

    def close(self) -> None:
        with self._lock:
            self._stream.flush()
            if self.fsync:
                os.fsync(self._stream.fileno())
            self._stream.close()


@dataclass
class EpisodeState:
    """Everything replay knows about one key's *latest* episode."""

    key: str
    state: str = "queued"
    spec: Optional[Dict[str, object]] = None
    priority: str = "interactive"
    #: how many server lives started executing this episode — each
    #: ``running`` event in an open episode is an execution the server
    #: did not live to finish.
    crashes: int = 0
    attempts: int = 0
    shard_count: int = 0
    shards_done: Set[int] = field(default_factory=set)
    exit_code: Optional[int] = None
    error_type: Optional[str] = None
    message: Optional[str] = None
    first_seq: int = 0
    last_seq: int = 0
    unix: float = 0.0

    @property
    def open(self) -> bool:
        return self.state in ("queued", "running")

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "state": self.state,
            "spec": self.spec,
            "priority": self.priority,
            "crashes": self.crashes,
            "attempts": self.attempts,
            "shard_count": self.shard_count,
            "shards_done": sorted(self.shards_done),
            "exit_code": self.exit_code,
            "error_type": self.error_type,
            "first_seq": self.first_seq,
            "last_seq": self.last_seq,
        }


@dataclass
class JournalState:
    """The fold of a journal: per-key latest episodes plus bookkeeping."""

    episodes: Dict[str, EpisodeState] = field(default_factory=dict)
    events: int = 0
    torn_lines: int = 0
    last_seq: int = 0

    @property
    def next_seq(self) -> int:
        return self.last_seq + 1

    def unfinished(self) -> List[EpisodeState]:
        """Open episodes, oldest first — the restart work list."""
        return sorted(
            (e for e in self.episodes.values() if e.open),
            key=lambda e: e.first_seq,
        )

    def dead_lettered(self) -> List[EpisodeState]:
        return sorted(
            (
                e
                for e in self.episodes.values()
                if e.state == "dead_lettered"
            ),
            key=lambda e: e.first_seq,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "torn_lines": self.torn_lines,
            "last_seq": self.last_seq,
            "episodes": {
                key: episode.to_dict()
                for key, episode in sorted(self.episodes.items())
            },
        }


def _parse_line(line: str) -> Optional[Dict[str, object]]:
    stripped = line.strip()
    if not stripped:
        return None
    document = json.loads(stripped)
    if not isinstance(document, dict):
        raise JournalError(f"record is not a JSON object: {stripped[:80]}")
    return document


def _apply(state: JournalState, record: Dict[str, object]) -> None:
    """Fold one record into the state (shared by replay and validate)."""
    event = str(record.get("event"))
    key = str(record.get("key"))
    seq = int(record.get("seq", 0))
    state.events += 1
    state.last_seq = max(state.last_seq, seq)
    episode = state.episodes.get(key)
    if event == "submitted":
        spec = record.get("spec")
        episode = EpisodeState(
            key=key,
            spec=dict(spec) if isinstance(spec, dict) else None,
            first_seq=seq,
        )
        if isinstance(spec, dict):
            priority = spec.get("priority")
            if isinstance(priority, str):
                episode.priority = priority
        state.episodes[key] = episode
    elif episode is None:
        # An event for a key whose submitted record was compacted away
        # or lives in a rotated-out segment: track it leniently so a
        # prefix of a journal still replays (the validator is stricter).
        episode = EpisodeState(key=key, first_seq=seq)
        state.episodes[key] = episode
    if episode is None:  # pragma: no cover - guarded above
        return
    episode.last_seq = seq
    unix = record.get("unix")
    if isinstance(unix, (int, float)):
        episode.unix = float(unix)
    if event == "running":
        episode.state = "running"
        episode.crashes += 1
        episode.attempts = int(record.get("attempts", episode.attempts) or 0)
    elif event == "shard_done":
        index = int(record.get("shard_index", -1))
        count = int(record.get("shard_count", 0))
        episode.shard_count = max(episode.shard_count, count)
        if index >= 0:
            episode.shards_done.add(index)
    elif event == "completed":
        episode.state = "done"
        raw_exit = record.get("exit_code")
        episode.exit_code = (
            int(raw_exit) if isinstance(raw_exit, int) else None
        )
    elif event == "failed":
        episode.state = "failed"
        episode.error_type = str(record.get("error_type") or "unknown")
        message = record.get("message")
        episode.message = str(message) if message is not None else None
    elif event == "dead_lettered":
        episode.state = "dead_lettered"
        episode.crashes = int(record.get("crashes", episode.crashes) or 0)
        episode.error_type = str(
            record.get("error_type") or "crash-budget-exceeded"
        )


def replay_lines(lines: Iterable[str]) -> JournalState:
    """Fold journal lines into a :class:`JournalState`, crash-tolerantly.

    A torn (undecodable) line aborts the fold *at that point* — under
    the fsync-per-record discipline a torn line can only be the last
    write of a killed process, so everything before it is intact and
    everything after it (nothing, in a real journal) is ignored.
    """
    state = JournalState()
    for line in lines:
        try:
            record = _parse_line(line)
        except ValueError:
            state.torn_lines += 1
            break
        if record is None:
            continue
        _apply(state, record)
    return state


def replay(journal_dir: PathLike) -> JournalState:
    """Replay every segment of a journal directory, in order."""
    return replay_lines(read_journal_lines(journal_dir))


def compact(
    journal_dir: PathLike, drop_dead_letters: bool = False
) -> Dict[str, object]:
    """Offline compaction: rewrite the journal without closed episodes.

    Keeps, in original order, every record whose key's *latest* episode
    is still open (the restart work list) or dead-lettered (the
    operator-visible set, unless ``drop_dead_letters``) — and of those
    keys only the records belonging to the latest episode.  Closed
    ``completed``/``failed`` episodes are dropped: their outcome lives
    in the result store and the job table ring, not the journal.

    Must run offline (no live writer on the directory): the new segment
    is written whole, fsynced, then the old segments are removed.
    Returns a summary dict (events before/after, segments removed).
    """
    lines = read_journal_lines(journal_dir)
    state = replay_lines(lines)
    keep_keys = {
        key: episode.first_seq
        for key, episode in state.episodes.items()
        if episode.open
        or (episode.state == "dead_lettered" and not drop_dead_letters)
    }
    kept: List[str] = []
    for line in lines:
        try:
            record = _parse_line(line)
        except ValueError:
            break
        if record is None:
            continue
        key = str(record.get("key"))
        first_seq = keep_keys.get(key)
        if first_seq is None or int(record.get("seq", 0)) < first_seq:
            continue
        kept.append(json.dumps(record, sort_keys=True))
    root = Path(journal_dir)
    old_segments = segment_paths(root)
    next_index = 1
    if old_segments:
        last_index = _segment_index(old_segments[-1])
        assert last_index is not None
        next_index = last_index + 1
    target = root / _segment_name(next_index)
    tmp = target.with_suffix(".tmp")
    payload = "".join(line + "\n" for line in kept)
    with open(tmp, "w", encoding="utf-8") as stream:
        stream.write(payload)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, target)
    for path in old_segments:
        path.unlink()
    return {
        "events_before": state.events,
        "events_after": len(kept),
        "segments_removed": len(old_segments),
        "segment": str(target),
        "kept_keys": len(keep_keys),
    }


def validate_journal_lines(lines: Sequence[str]) -> Dict[str, object]:
    """Enforce the ``repro.journal/1`` contract over concatenated lines.

    Checks, raising :class:`JournalError` on the first violation:

    * every line parses to a JSON object (a torn line is tolerated only
      as the very last line);
    * ``schema`` is exactly :data:`JOURNAL_SCHEMA` and ``event`` is a
      known event on every record;
    * ``seq`` is strictly increasing across the whole journal;
    * per key, events respect episode ordering: ``submitted`` opens an
      episode (and must not reopen a live one), ``running`` /
      ``shard_done`` require an open episode, terminal events are
      unique per episode (a closed episode accepts only a fresh
      ``submitted``);
    * ``shard_done`` indices are within ``[0, shard_count)``.

    Returns a summary: event counts, episode counts by state.
    """
    last_seq = 0
    counts: Dict[str, int] = {event: 0 for event in EVENTS}
    open_episodes: Dict[str, EpisodeState] = {}
    closed: Dict[str, str] = {}
    torn = 0
    for number, line in enumerate(lines, start=1):
        try:
            record = _parse_line(line)
        except ValueError as exc:
            if number == len(lines):
                torn += 1
                break
            raise JournalError(
                f"line {number}: undecodable record mid-journal: {exc}"
            ) from exc
        if record is None:
            continue
        if record.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"line {number}: schema {record.get('schema')!r} != "
                f"{JOURNAL_SCHEMA!r}"
            )
        event = record.get("event")
        if event not in EVENTS:
            raise JournalError(f"line {number}: unknown event {event!r}")
        key = record.get("key")
        if not isinstance(key, str) or not key:
            raise JournalError(f"line {number}: missing key")
        seq = record.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            raise JournalError(
                f"line {number}: seq {seq!r} not strictly increasing "
                f"(previous {last_seq})"
            )
        last_seq = seq
        if not isinstance(record.get("unix"), (int, float)):
            raise JournalError(f"line {number}: missing unix timestamp")
        counts[str(event)] += 1
        episode = open_episodes.get(key)
        if event == "submitted":
            if episode is not None:
                raise JournalError(
                    f"line {number}: key {key[:16]}... resubmitted while "
                    "its episode is still open"
                )
            spec = record.get("spec")
            if not isinstance(spec, dict):
                raise JournalError(
                    f"line {number}: submitted record carries no spec"
                )
            open_episodes[key] = EpisodeState(key=key, first_seq=seq)
            closed.pop(key, None)
            continue
        if episode is None:
            terminal = closed.get(key)
            if terminal is not None:
                raise JournalError(
                    f"line {number}: event {event!r} for key "
                    f"{key[:16]}... after its terminal {terminal!r} "
                    "(terminal-state uniqueness)"
                )
            raise JournalError(
                f"line {number}: event {event!r} for key {key[:16]}... "
                "with no open episode"
            )
        if event == "shard_done":
            index = record.get("shard_index")
            count = record.get("shard_count")
            if (
                not isinstance(index, int)
                or not isinstance(count, int)
                or not 0 <= index < count
            ):
                raise JournalError(
                    f"line {number}: shard_done index {index!r} outside "
                    f"[0, {count!r})"
                )
        if event in TERMINAL_EVENTS:
            del open_episodes[key]
            closed[key] = str(event)
    return {
        "schema": JOURNAL_SCHEMA,
        "events": sum(counts.values()),
        "counts": counts,
        "last_seq": last_seq,
        "open_episodes": len(open_episodes),
        "closed_episodes": len(closed),
        "torn_lines": torn,
    }


def validate_journal_dir(journal_dir: PathLike) -> Dict[str, object]:
    """Validate every segment of a journal directory as one stream."""
    paths = segment_paths(journal_dir)
    if not paths:
        raise JournalError(f"{journal_dir}: no journal segments found")
    summary = validate_journal_lines(read_journal_lines(journal_dir))
    summary["segments"] = len(paths)
    return summary
