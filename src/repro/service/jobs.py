"""Request normalisation, content-addressed job keys, single-flight jobs.

A query arrives as loose JSON; this module turns it into a frozen
:class:`JobSpec` (every field validated, defaults matching the ``repro``
CLI exactly so the service answers are byte-identical to CLI output),
and then into a *job key*: a sha256 over the command, the query
parameters, and :func:`repro.core.cache.profile_cache_key` of the trace
— two requests share a key iff they are guaranteed the same response
bytes.

The :class:`JobTable` provides single-flight coalescing on those keys:
the first request for a key creates a :class:`Job` and submits it to the
worker pool; every concurrent duplicate attaches to the same job and
waits on its completion event, so N identical in-flight requests trigger
exactly one backend computation (counter ``service.jobs.coalesced``
counts the attached N-1).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.cache import profile_cache_key
from ..core.optimal import ENGINES
from ..core.temporal_network import TemporalNetwork
from ..obs import get_obs
from ..traces.format import read_contacts

#: bump when the response format of a command changes incompatibly.
_JOB_FORMAT = "repro.service/1"

#: query fields and their CLI defaults, per command (mirrors cli.py).
_COMMAND_DEFAULTS: Dict[str, Dict[str, object]] = {
    "diameter": {"eps": 0.01, "max_hops": 8, "grid_points": 40},
    "delay-cdf": {"max_hops": 4, "grid_points": 12},
}

COMMANDS = tuple(sorted(_COMMAND_DEFAULTS))

#: admission classes, most urgent first.  ``interactive`` is the
#: default; ``batch`` marks long sweeps that must never starve a human
#: waiting on a dashboard (the pool ages batch tasks so the reverse
#: starvation cannot happen either).
PRIORITIES = ("interactive", "batch")


class BadRequest(ValueError):
    """A request that cannot be normalised into a job."""

    def __init__(self, message: str, field: Optional[str] = None) -> None:
        super().__init__(message)
        self.message = message
        self.field = field


@dataclass(frozen=True)
class JobSpec:
    """One fully-normalised query: the unit of coalescing and caching.

    ``test_delay_s`` is a fault-injection/load-testing knob (the worker
    sleeps that long before computing); it is deliberately *excluded*
    from the job key because it cannot change the response bytes.
    ``shards`` is excluded for the same reason: sharded execution is
    byte-identical to monolithic, so a sharded and an unsharded request
    for the same query coalesce into (and share the cached result of)
    the same job.  ``priority`` is excluded too — it is an admission
    class, not a different query, so an interactive request still
    coalesces with (and is served from the store of) an identical
    batch job; the first submission's class schedules the computation.
    """

    command: str
    trace: str
    max_hops: int
    grid_points: int
    eps: Optional[float] = None
    test_delay_s: float = 0.0
    shards: int = 1
    priority: str = "interactive"
    #: profile-DP implementation (``repro.core.optimal.ENGINES``).
    #: Excluded from the job key like ``shards``: every engine produces
    #: byte-identical responses (the vec/scalar parity contract), so
    #: requests differing only in engine coalesce into one job.
    engine: str = "auto"

    def to_argv(self, cache_dir: Optional[str] = None) -> List[str]:
        """The equivalent ``repro`` CLI invocation."""
        argv = [
            self.command,
            self.trace,
            "--max-hops",
            str(self.max_hops),
            "--grid-points",
            str(self.grid_points),
        ]
        if self.eps is not None:
            argv += ["--eps", str(self.eps)]
        if self.shards > 1:
            argv += ["--shards", str(self.shards)]
        if self.engine != "auto":
            argv += ["--engine", self.engine]
        if cache_dir is not None:
            argv += ["--cache-dir", cache_dir]
        return argv

    def to_document(self) -> Dict[str, object]:
        """The journal representation of this spec.

        ``test_delay_s`` is deliberately dropped: it is a fault-injection
        knob of the *original* submission, and replaying the sleep on
        recovery would only slow the restart down.
        """
        return {
            "command": self.command,
            "trace": self.trace,
            "max_hops": self.max_hops,
            "grid_points": self.grid_points,
            "eps": self.eps,
            "shards": self.shards,
            "priority": self.priority,
            "engine": self.engine,
        }

    @classmethod
    def from_document(cls, document: Dict[str, object]) -> "JobSpec":
        """Rebuild a spec from a journal ``submitted`` record."""
        command = document.get("command")
        trace = document.get("trace")
        if command not in _COMMAND_DEFAULTS or not isinstance(trace, str):
            raise BadRequest(
                f"journal spec is not replayable: {document!r}"
            )
        eps = document.get("eps")
        priority = document.get("priority", "interactive")
        engine = document.get("engine", "auto")
        return cls(
            engine=str(engine) if engine in ENGINES else "auto",
            command=str(command),
            trace=trace,
            max_hops=int(document.get("max_hops", 1) or 1),
            grid_points=int(document.get("grid_points", 2) or 2),
            eps=None if eps is None else float(eps),  # type: ignore[arg-type]
            shards=int(document.get("shards", 1) or 1),
            priority=(
                str(priority) if priority in PRIORITIES else "interactive"
            ),
        )


def _require_int(value: object, field: str, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{field} must be an integer", field=field)
    if value < minimum:
        raise BadRequest(f"{field} must be >= {minimum}", field=field)
    return value


def normalize_request(
    command: str, body: object, allow_test_delay: bool = False
) -> JobSpec:
    """Validate a parsed request body into a :class:`JobSpec`.

    Unknown fields are rejected rather than ignored: a typo like
    ``max_hop`` silently falling back to the default would coalesce the
    request into the wrong job.
    """
    if command not in _COMMAND_DEFAULTS:
        raise BadRequest(f"unknown command {command!r}")
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    defaults = _COMMAND_DEFAULTS[command]
    allowed = set(defaults) | {
        "trace",
        "shards",
        "priority",
        "engine",
        "_test_delay_s",
    }
    unknown = sorted(set(body) - allowed)
    if unknown:
        raise BadRequest(
            f"unknown field(s) {', '.join(unknown)}; allowed: "
            f"{', '.join(sorted(allowed - {'_test_delay_s'}))}",
            field=unknown[0],
        )

    trace = body.get("trace")
    if not isinstance(trace, str) or not trace:
        raise BadRequest("trace must be a non-empty path string", field="trace")
    if not os.path.isfile(trace):
        raise BadRequest(f"trace file not found: {trace}", field="trace")

    max_hops = _require_int(
        body.get("max_hops", defaults["max_hops"]), "max_hops", 1
    )
    grid_points = _require_int(
        body.get("grid_points", defaults["grid_points"]), "grid_points", 2
    )

    eps: Optional[float] = None
    if "eps" in defaults:
        raw_eps = body.get("eps", defaults["eps"])
        if isinstance(raw_eps, bool) or not isinstance(raw_eps, (int, float)):
            raise BadRequest("eps must be a number", field="eps")
        eps = float(raw_eps)
        if not 0.0 < eps < 1.0:
            raise BadRequest("eps must be in (0, 1)", field="eps")

    shards = _require_int(body.get("shards", 1), "shards", 1)
    if shards > 256:
        raise BadRequest("shards must be <= 256", field="shards")

    priority = body.get("priority", "interactive")
    if priority not in PRIORITIES:
        raise BadRequest(
            f"priority must be one of {', '.join(PRIORITIES)}",
            field="priority",
        )

    engine = body.get("engine", "auto")
    if engine not in ENGINES:
        raise BadRequest(
            f"engine must be one of {', '.join(ENGINES)}", field="engine"
        )

    test_delay_s = 0.0
    if "_test_delay_s" in body:
        if not allow_test_delay:
            raise BadRequest(
                "_test_delay_s requires the server to run with "
                "--allow-test-delay",
                field="_test_delay_s",
            )
        raw_delay = body["_test_delay_s"]
        if isinstance(raw_delay, bool) or not isinstance(
            raw_delay, (int, float)
        ):
            raise BadRequest("_test_delay_s must be a number", field="_test_delay_s")
        test_delay_s = float(raw_delay)
        if not 0.0 <= test_delay_s <= 60.0:
            raise BadRequest(
                "_test_delay_s must be in [0, 60]", field="_test_delay_s"
            )

    return JobSpec(
        command=command,
        trace=str(Path(trace).resolve()),
        max_hops=max_hops,
        grid_points=grid_points,
        eps=eps,
        test_delay_s=test_delay_s,
        shards=shards,
        priority=str(priority),
        engine=str(engine),
    )


def job_key(spec: JobSpec, network: TemporalNetwork) -> str:
    """The content key of one query's response bytes.

    Builds on :func:`profile_cache_key` — the key of the profile
    computation the command runs — plus the command and its presentation
    parameters.  The diameter command may internally extend its hop
    bounds to the flooding fixpoint; that extension is a deterministic
    function of the same inputs, so the key still pins the output.
    """
    profile_key = profile_cache_key(
        network, hop_bounds=range(1, spec.max_hops + 1)
    )
    document = {
        "format": _JOB_FORMAT,
        "command": spec.command,
        "profiles": profile_key,
        "eps": None if spec.eps is None else float(spec.eps).hex(),
        "grid_points": spec.grid_points,
        "max_hops": spec.max_hops,
    }
    payload = json.dumps(document, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def job_id_of(key: str) -> str:
    """The external job id of a key (also the result-store file stem)."""
    return key[:32]


class NetworkCache:
    """Loaded traces keyed by (path, mtime_ns, size), LRU-bounded.

    The service re-reads a trace only when the file changes on disk;
    the stat triple keys the parsed :class:`TemporalNetwork` so a
    replaced trace file is never served stale.
    """

    def __init__(self, capacity: int = 8) -> None:
        self._capacity = capacity
        self._entries: "OrderedDict[Tuple[str, int, int], TemporalNetwork]"
        self._entries = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()

    def get(self, trace: str) -> TemporalNetwork:
        stat = os.stat(trace)
        key = (trace, stat.st_mtime_ns, stat.st_size)
        obs = get_obs()
        with self._lock:
            network = self._entries.get(key)
            if network is not None:
                self._entries.move_to_end(key)
                obs.metrics.counter("service.traces.hit").inc()
                return network
            # Loading under the lock serialises duplicate loads of the
            # same trace; traces are small relative to the profile DP.
            network = read_contacts(trace)
            self._entries[key] = network
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
        obs.metrics.counter("service.traces.miss").inc()
        return network


#: job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
DEAD_LETTERED = "dead_lettered"

STATES = (QUEUED, RUNNING, DONE, FAILED, DEAD_LETTERED)


class Job:
    """One in-flight (or finished) computation, shared by coalesced waiters."""

    __slots__ = (
        "key",
        "id",
        "spec",
        "state",
        "attempts",
        "exit_code",
        "output",
        "stderr",
        "error",
        "waiters",
        "done",
        "trace_id",
        "span_id",
        "queued_monotonic",
        "shards_total",
        "shards_done",
        "recovered",
        "prior_crashes",
    )

    def __init__(
        self,
        key: str,
        spec: JobSpec,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
    ) -> None:
        self.key = key
        self.id = job_id_of(key)
        self.spec = spec
        self.state = QUEUED
        self.attempts = 0
        self.exit_code: Optional[int] = None
        self.output: Optional[bytes] = None
        self.stderr = ""
        self.error: Optional[Dict[str, object]] = None
        self.waiters = 1
        self.done = threading.Event()
        #: the leader request's trace and execute-span ids — every span
        #: recorded for this job (attempts, worker) hangs off them, and
        #: coalesced followers link to them.
        self.trace_id = trace_id
        self.span_id = span_id
        self.queued_monotonic = time.monotonic()
        #: sharded fan-out progress: a monolithic job is one shard of
        #: one; the app overwrites ``shards_total`` when it fans out.
        self.shards_total = 1
        self.shards_done = 0
        #: True for a job the journal replay re-enqueued: it has no
        #: HTTP waiter and its result commits straight to the store.
        self.recovered = False
        #: ``running`` events of earlier server lives in this episode —
        #: each one is an execution a crash cut short; the dead-letter
        #: budget counts them.
        self.prior_crashes = 0

    def describe(self) -> Dict[str, object]:
        """The ``GET /v1/jobs/<id>`` document."""
        return {
            "job": self.id,
            "state": self.state,
            "command": self.spec.command,
            "trace": self.spec.trace,
            "priority": self.spec.priority,
            "attempts": self.attempts,
            "waiters": self.waiters,
            "exit_code": self.exit_code,
            "output_bytes": None if self.output is None else len(self.output),
            "error": self.error,
            "trace_id": self.trace_id,
            "shards_total": self.shards_total,
            "shards_done": self.shards_done,
            "recovered": self.recovered,
        }


class JobTable:
    """Single-flight registry of jobs by content key.

    In-flight jobs live in ``_inflight``; finished jobs move to a
    bounded ring so ``GET /v1/jobs/<id>`` can answer for a while after
    completion without growing forever.
    """

    def __init__(self, history: int = 256) -> None:
        self._history = history
        self._inflight: Dict[str, Job] = {}  # guarded-by: _lock
        self._finished: "OrderedDict[str, Job]" = OrderedDict()  # guarded-by: _lock
        #: dead-lettered episodes by content key: jobs that exceeded the
        #: crash budget.  Unlike ``_finished`` this set is not a ring —
        #: dead letters are an operator signal and must not age out
        #: silently (compaction and restarts preserve them too).
        self._dead: Dict[str, Dict[str, object]] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def get_or_create(
        self,
        key: str,
        spec: JobSpec,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
    ) -> Tuple[Job, bool]:
        """The in-flight job for ``key``, creating it if absent.

        Returns ``(job, created)``; ``created`` is False for coalesced
        requests, which are counted on ``service.jobs.coalesced``.  The
        creator's trace/span ids stick to the job — followers keep their
        own trace and *link* to the leader's instead.
        """
        obs = get_obs()
        with self._lock:
            job = self._inflight.get(key)
            if job is not None:
                job.waiters += 1
                obs.metrics.counter("service.jobs.coalesced").inc()
                return job, False
            job = Job(key, spec, trace_id=trace_id, span_id=span_id)
            self._inflight[key] = job
            obs.metrics.counter("service.jobs.submitted").inc()
            return job, True

    def lookup(self, job_id: str) -> Optional[Job]:
        with self._lock:
            for job in self._inflight.values():
                if job.id == job_id:
                    return job
            return self._finished.get(job_id)

    def lookup_document(self, job_id: str) -> Optional[Dict[str, object]]:
        """The job document for an id, dead-lettered episodes included."""
        job = self.lookup(job_id)
        if job is not None:
            return job.describe()
        with self._lock:
            for record in self._dead.values():
                if record.get("job") == job_id:
                    return dict(record)
        return None

    def mark_running(self, key: str, attempts: int) -> bool:
        """Record an attempt start; True on the QUEUED->RUNNING edge.

        The transition fires once per server life — in-process crash
        retries bump ``attempts`` but stay RUNNING — which is exactly
        when the journal must record a ``running`` event (the event
        count per episode is the cross-restart crash budget).
        """
        with self._lock:
            job = self._inflight.get(key)
            if job is None:
                return False
            transitioned = job.state == QUEUED
            job.state = RUNNING
            job.attempts = attempts
            return transitioned

    def by_key(self, key: str) -> Optional[Job]:
        """The in-flight job for a content key, if any."""
        with self._lock:
            return self._inflight.get(key)

    def begin_fanout(self, key: str, shards_total: int) -> None:
        """Record a sharded job's fan-out width, under the table lock.

        The leader thread calls this after ``get_or_create`` while
        follower threads may already be polling the job document, so the
        write goes through ``_lock`` like every other Job mutation
        (surfaced by a lockwatch stress run as a racy bare write in
        ``app._submit_sharded``).
        """
        with self._lock:
            job = self._inflight.get(key)
            if job is not None:
                job.shards_total = shards_total

    def note_shard_done(self, key: str) -> Optional[Tuple[int, int]]:
        """Record one completed shard; returns ``(done, total)`` or None.

        None means the job is no longer in flight (it already failed or
        finished), so the caller must not dispatch the finalisation run.
        """
        with self._lock:
            job = self._inflight.get(key)
            if job is None:
                return None
            job.shards_done += 1
            return (job.shards_done, job.shards_total)

    def complete(
        self,
        key: str,
        exit_code: Optional[int] = None,
        output: Optional[bytes] = None,
        stderr: str = "",
        error: Optional[Dict[str, object]] = None,
        dead_letter: bool = False,
    ) -> Optional[Job]:
        """Finish a job (success or failure) and wake every waiter.

        ``dead_letter=True`` marks a crash-budget exhaustion: the job
        lands in the dead-letter set (queryable, never retried) instead
        of the finished ring, and its state is ``dead_lettered``.
        """
        with self._lock:
            job = self._inflight.pop(key, None)
            if job is None:
                return None
            job.exit_code = exit_code
            job.output = output
            job.stderr = stderr
            job.error = error
            if dead_letter:
                job.state = DEAD_LETTERED
                self._dead[key] = self._dead_record_locked(job)
            else:
                job.state = FAILED if error is not None else DONE
                if error is None:
                    job.shards_done = job.shards_total
                self._finished[job.id] = job
                while len(self._finished) > self._history:
                    self._finished.popitem(last=False)
        job.done.set()
        return job

    def _dead_record_locked(self, job: Job) -> Dict[str, object]:
        error = job.error or {}
        return {
            "job": job.id,
            "state": DEAD_LETTERED,
            "command": job.spec.command,
            "trace": job.spec.trace,
            "priority": job.spec.priority,
            "crashes": job.prior_crashes + job.attempts,
            "error": dict(error),
            "recovered": job.recovered,
        }

    def register_dead_letter(
        self, key: str, record: Dict[str, object]
    ) -> None:
        """File a dead-lettered episode straight from journal replay."""
        with self._lock:
            self._dead[key] = {
                "job": job_id_of(key),
                "state": DEAD_LETTERED,
                **record,
            }

    def dead_letter_record(self, key: str) -> Optional[Dict[str, object]]:
        """The dead-letter record for a content key, if any."""
        with self._lock:
            record = self._dead.get(key)
            return None if record is None else dict(record)

    def list_jobs(
        self,
        state: Optional[str] = None,
        priority: Optional[str] = None,
        limit: int = 100,
    ) -> List[Dict[str, object]]:
        """Job documents for ``GET /v1/jobs``: queue, history, dead set.

        In-flight jobs come first (submission order), then the finished
        ring newest-first, then the dead-letter set; ``state`` /
        ``priority`` filter, ``limit`` bounds the page.
        """
        with self._lock:
            inflight = sorted(
                self._inflight.values(), key=lambda j: j.queued_monotonic
            )
            finished = list(reversed(self._finished.values()))
            dead = [dict(record) for record in self._dead.values()]
        documents: List[Dict[str, object]] = [
            job.describe() for job in inflight
        ]
        documents.extend(job.describe() for job in finished)
        documents.extend(dead)
        if state is not None:
            documents = [d for d in documents if d.get("state") == state]
        if priority is not None:
            documents = [
                d for d in documents if d.get("priority") == priority
            ]
        return documents[: max(0, limit)]

    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

    def finished_count(self) -> int:
        with self._lock:
            return len(self._finished)

    def dead_letter_count(self) -> int:
        with self._lock:
            return len(self._dead)
