"""Bounded process worker pool: backpressure, timeouts, crash respawn.

The pool owns N single-purpose worker *processes* (a crashed or wedged
computation must never take the server down, and the GIL must never
serialise two queries), a bounded pending queue, and one supervisor
thread that does all orchestration:

* **assignment** — pending tasks go to idle workers, one in flight per
  worker, so the supervisor always knows which process owns which job;
* **backpressure** — :meth:`WorkerPool.submit` raises
  :class:`PoolSaturated` once every worker is busy and the pending queue
  is full; the HTTP layer turns that into ``429`` + ``Retry-After``;
* **priority scheduling** — pending tasks queue per admission class
  (``interactive`` ahead of ``batch``) with *aging*: a batch task whose
  wait exceeds ``aging_s`` is dequeued ahead of fresh interactive work,
  so mixed real/synthetic sweeps can share the pool with dashboards
  without either side starving;
* **timeouts** — a task past its deadline gets its worker killed and
  fails with a structured ``timeout`` error;
* **crash detection** — a worker that dies mid-job is detected by
  liveness polling; the task is retried once on a fresh worker, then
  failed with a structured ``worker-crashed`` error.  Respawning can be
  delayed (``respawn_delay_s``) so health checks can observe the
  degraded window deterministically in tests;
* **graceful drain** — :meth:`shutdown` stops intake, lets the pending
  queue and running jobs finish, then retires the workers.

All clocks here are monotonic (deadlines, not wall time) and all pool
instruments are bound once at :meth:`start`, per the repro conventions
(reprolint REP003/REP004 cover ``service/``).
"""

from __future__ import annotations

import io
import multiprocessing
import os
import queue
import threading
import time
from contextlib import redirect_stderr, redirect_stdout
from typing import Any, Callable, Deque, Dict, List, Optional

from collections import deque

from ..obs import get_obs
from ..obs.spans import SpanTracer
from ..obs.tracectx import TraceContext, bind_records, derive_span_id, now_unix

#: a task handed to a worker / a result handed back.
Task = Dict[str, Any]
Result = Dict[str, Any]

#: how often the supervisor polls results, liveness and deadlines.
_TICK_S = 0.05


class PoolSaturated(RuntimeError):
    """Every worker is busy and the pending queue is at capacity."""


class PoolClosed(RuntimeError):
    """The pool is draining or shut down; no new work is accepted."""


def _run_payload(task: Task) -> int:
    """Execute the task's computation: a CLI run, or one shard warm-up.

    A ``kind == "shard"`` task computes exactly one source shard of a
    trace's profiles into the shared cache
    (:func:`repro.core.shards.warm_shard`); everything else replays the
    ``repro`` CLI argv.  Both paths return an exit code.
    """
    if task.get("kind") == "shard":
        from ..core.shards import warm_shard

        warm_shard(
            trace=str(task["trace"]),
            cache_dir=str(task["cache_dir"]),
            max_hops=int(task["max_hops"]),
            shard_index=int(task["shard_index"]),
            shard_count=int(task["shard_count"]),
            engine=str(task.get("engine", "auto")),
        )
        return 0
    from ..cli import main as cli_main

    return cli_main(list(task["argv"]))


def execute_task(task: Task) -> Result:
    """Run one task (in the worker process) and package the outcome.

    The task carries the ``repro`` CLI argv for the query; running the
    actual CLI entry point — stdout captured — is what guarantees the
    service's response bytes are identical to the CLI's.  Sharded jobs
    instead carry ``kind: "shard"`` envelopes that warm one shard of the
    profile cache (see :func:`_run_payload`).  The optional
    ``test_delay_s`` sleep runs *before* the computation so fault
    injection can kill the worker deterministically mid-job.

    When the envelope carries a ``traceparent`` (see
    :mod:`repro.obs.tracectx`), the computation runs under a fresh
    enabled obs bundle: every span the engine records (``cli`` down
    through ``core/``) is bound under the envelope's span and shipped
    back in ``result["spans"]``, and the worker's metrics registry rides
    along in ``result["metrics"]`` for merging into the service session —
    that is how one request's trace crosses the process boundary.
    """
    from ..obs import Instrumentation, MetricsRegistry, set_obs

    delay = float(task.get("test_delay_s") or 0.0)
    if delay > 0.0:
        time.sleep(delay)
    ctx = TraceContext.from_traceparent(task.get("traceparent"))
    bundle: Optional[Instrumentation] = None
    previous: Optional[Instrumentation] = None
    if ctx is not None:
        bundle = Instrumentation(
            metrics=MetricsRegistry(),
            tracer=SpanTracer(),
            manifest=None,
            enabled=True,
        )
        previous = set_obs(bundle)
    span_attrs: Dict[str, Any] = {
        "key": str(task["key"])[:32],
        "attempt": int(task.get("attempts", 0)),
        "pid": os.getpid(),
    }
    if "shard_index" in task:
        span_attrs["shard"] = (
            f"{int(task['shard_index']) + 1}/{int(task['shard_count'])}"
        )
    if "engine" in task:
        span_attrs["engine"] = str(task["engine"])
    out = io.StringIO()
    err = io.StringIO()
    result: Result
    try:
        with redirect_stdout(out), redirect_stderr(err):
            if bundle is not None:
                with bundle.tracer.span("worker.execute", **span_attrs):
                    exit_code = _run_payload(task)
            else:
                exit_code = _run_payload(task)
    except SystemExit as exc:  # argparse-style exits inside the command
        exit_code = exc.code if isinstance(exc.code, int) else 1
    except BaseException as exc:
        result = {
            "key": task["key"],
            "error": {
                "type": "exception",
                "message": f"{type(exc).__name__}: {exc}",
            },
            "stderr": err.getvalue(),
        }
        return _attach_worker_trace(result, ctx, bundle, previous)
    result = {
        "key": task["key"],
        "exit_code": exit_code,
        "output": out.getvalue(),
        "stderr": err.getvalue(),
    }
    return _attach_worker_trace(result, ctx, bundle, previous)


def _attach_worker_trace(
    result: Result,
    ctx: Optional[TraceContext],
    bundle: Optional[Any],
    previous: Optional[Any],
) -> Result:
    """Bind the worker bundle's spans under the envelope's attempt span."""
    if ctx is None or bundle is None:
        return result
    from ..obs import set_obs

    set_obs(previous)
    worker_ctx = ctx.child("worker")
    result["spans"] = bind_records(
        worker_ctx,
        bundle.tracer.records,
        origin="worker",
        parent_span_id=ctx.span_id,
    )
    result["metrics"] = bundle.metrics
    return result


def _worker_main(
    inbox: "multiprocessing.queues.Queue[Optional[Task]]",
    results: "multiprocessing.queues.Queue[Result]",
) -> None:
    """Worker process loop: execute tasks until the None sentinel."""
    while True:
        task = inbox.get()
        if task is None:
            return
        results.put(execute_task(task))


class _Worker:
    """Supervisor-side view of one worker process."""

    __slots__ = ("process", "inbox", "task", "deadline", "respawn_at")

    def __init__(self) -> None:
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.inbox: Any = None
        self.task: Optional[Task] = None
        self.deadline = 0.0
        #: monotonic instant at which a dead slot may be respawned.
        self.respawn_at: Optional[float] = None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def idle(self) -> bool:
        return self.alive() and self.task is None


class WorkerPool:
    """A fixed-size pool of worker processes with a bounded intake queue.

    ``on_complete(task, result)`` is invoked from the supervisor thread
    for every finished task — successes carry ``output``/``exit_code``,
    failures carry a structured ``error`` dict (types: ``timeout``,
    ``worker-crashed``, ``exception``, ``shutdown``).
    """

    def __init__(
        self,
        size: int,
        queue_capacity: int,
        job_timeout_s: float,
        on_complete: Callable[[Task, Result], None],
        max_attempts: int = 2,
        respawn_delay_s: float = 0.0,
        trace_sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        aging_s: float = 30.0,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if queue_capacity < 1:
            raise ValueError(
                f"queue capacity must be >= 1, got {queue_capacity}"
            )
        if aging_s <= 0:
            raise ValueError(f"aging_s must be > 0, got {aging_s}")
        self.size = size
        self.queue_capacity = queue_capacity
        self.job_timeout_s = job_timeout_s
        self.max_attempts = max_attempts
        self.respawn_delay_s = respawn_delay_s
        self.aging_s = aging_s
        self._on_complete = on_complete
        self._trace_sink = trace_sink
        self._ctx = multiprocessing.get_context()
        self._results: Any = None
        self._workers: List[_Worker] = []
        #: pending tasks per admission class; dequeue prefers the
        #: interactive deque unless the batch head has aged past
        #: ``aging_s`` (starvation guard, checked on every assignment).
        self._pending: Dict[str, Deque[Task]] = {  # guarded-by: _lock
            "interactive": deque(),
            "batch": deque(),
        }
        self._lock = threading.Lock()
        self._draining = False  # guarded-by: _lock
        self._stopped = threading.Event()
        self._idle = threading.Event()
        self._supervisor: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        self._results = self._ctx.Queue()
        self._workers = [_Worker() for _ in range(self.size)]
        for worker in self._workers:
            self._spawn(worker)
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-pool-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn(self, worker: _Worker) -> None:
        worker.inbox = self._ctx.Queue(maxsize=1)
        worker.process = self._ctx.Process(
            target=_worker_main,
            args=(worker.inbox, self._results),
            name="repro-pool-worker",
            daemon=True,
        )
        worker.process.start()
        worker.task = None
        worker.respawn_at = None

    def shutdown(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Stop the pool; with ``drain`` let queued/running work finish.

        Returns True when all work completed before ``timeout_s``.
        Without ``drain``, pending tasks fail with a ``shutdown`` error
        and running workers are killed.
        """
        with self._lock:
            self._draining = True
            if not drain:
                abandoned = [
                    task
                    for queue_ in self._pending.values()
                    for task in queue_
                ]
                for queue_ in self._pending.values():
                    queue_.clear()
            else:
                abandoned = []
        for task in abandoned:
            self._on_complete(
                task,
                {
                    "key": task["key"],
                    "error": {"type": "shutdown", "message": "pool shut down"},
                },
            )
        drained = True
        if drain:
            drained = self._idle.wait(timeout_s)
        self._stopped.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout_s)
        # Any task still running (non-drain shutdown, or drain timeout)
        # must fail loudly rather than leave its waiters hanging.
        for worker in self._workers:
            task = worker.task
            worker.task = None
            if task is not None:
                self._emit_attempt(task, "shutdown")
                self._on_complete(
                    task,
                    {
                        "key": task["key"],
                        "error": {
                            "type": "shutdown",
                            "message": "pool shut down mid-job",
                        },
                    },
                )
        for worker in self._workers:
            process = worker.process
            if process is None:
                continue
            if drain and worker.task is None and process.is_alive():
                try:
                    worker.inbox.put_nowait(None)
                except queue.Full:
                    pass
                process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        return drained

    # -- intake ---------------------------------------------------------
    def _pending_len_locked(self) -> int:  # guarded-by: _lock
        return sum(len(queue_) for queue_ in self._pending.values())

    def _queue_of(self, task: Task) -> Deque[Task]:  # guarded-by: _lock
        """The class deque a task belongs to (caller holds ``_lock``)."""
        priority = task.get("priority")
        if priority not in self._pending:
            priority = "interactive"
        return self._pending[str(priority)]

    def _pop_pending_locked(  # guarded-by: _lock
        self, now: float
    ) -> Optional[Task]:
        """Next task by priority with aging (caller holds ``_lock``).

        Interactive first, unless the batch head has waited longer than
        ``aging_s`` — then it jumps the line, so a steady interactive
        stream can delay batch work but never starve it.
        """
        batch = self._pending["batch"]
        if batch:
            waited = now - float(batch[0].get("_enqueued_mono") or now)
            if waited >= self.aging_s:
                return batch.popleft()
        interactive = self._pending["interactive"]
        if interactive:
            return interactive.popleft()
        if batch:
            return batch.popleft()
        return None

    def submit(self, task: Task, enforce_capacity: bool = True) -> None:
        """Queue a task, or raise on saturation/shutdown.

        Saturation counts both queue slots and busy workers: with every
        worker busy and ``queue_capacity`` tasks pending, the pool is
        full and the caller must shed load (HTTP 429).

        ``enforce_capacity=False`` bypasses the saturation check (never
        the shutdown check).  Sharded fan-out applies backpressure at
        *job* granularity: the first shard of an admitted job is
        enforced, the rest — and the finalisation run that must follow
        completed shards — are not, because rejecting a sibling of an
        already-admitted job would wedge the job forever.  Journal
        recovery uses the same bypass: a job the journal promised to
        finish must not be shed by a cold queue.
        """
        with self._lock:
            if self._draining or self._stopped.is_set():
                raise PoolClosed("pool is shut down")
            # Outstanding work is counted against total capacity (busy
            # workers + queue slots) rather than "is any worker idle
            # right now": assignment happens on the supervisor tick, so
            # a burst of submits must not over-admit in the window
            # before tasks reach the workers.
            busy = sum(1 for w in self._workers if w.task is not None)
            pending = self._pending_len_locked()
            if (
                enforce_capacity
                and pending + busy >= self.size + self.queue_capacity
            ):
                get_obs().metrics.counter("service.pool.rejected").inc()
                raise PoolSaturated(
                    f"{pending} tasks pending, "
                    f"{busy}/{self.size} workers busy"
                )
            task.setdefault("attempts", 0)
            task.setdefault("_enqueued_mono", time.monotonic())
            self._queue_of(task).append(task)
            self._idle.clear()

    def retry_after_s(self) -> float:
        """A client back-off hint: the per-job timeout bounds how long
        the queue head can occupy a worker."""
        return max(1.0, min(self.job_timeout_s, 30.0))

    # -- introspection --------------------------------------------------
    def health(self) -> Dict[str, object]:
        with self._lock:
            alive = sum(1 for w in self._workers if w.alive())
            busy = sum(1 for w in self._workers if w.task is not None)
            pending = self._pending_len_locked()
            by_priority = {
                priority: len(queue_)
                for priority, queue_ in self._pending.items()
            }
            draining = self._draining or self._stopped.is_set()
        state = "healthy" if alive == self.size else "degraded"
        if draining:
            state = "draining"
        return {
            "state": state,
            "workers": self.size,
            "alive": alive,
            "busy": busy,
            "pending": pending,
            "pending_by_priority": by_priority,
            "queue_capacity": self.queue_capacity,
        }

    def worker_pids(self) -> List[Optional[int]]:
        """Current worker process ids (for tests and fault injection)."""
        return [
            None if w.process is None else w.process.pid
            for w in self._workers
        ]

    # -- supervisor -----------------------------------------------------
    def _supervise(self) -> None:
        # Instruments are bound once, outside the loop (REP003): the
        # pool lives inside one obs session.
        obs = get_obs()
        computed = obs.metrics.counter("service.jobs.computed")
        crashes = obs.metrics.counter("service.pool.crashes")
        retries = obs.metrics.counter("service.pool.retries")
        timeouts = obs.metrics.counter("service.pool.timeouts")
        respawns = obs.metrics.counter("service.pool.respawns")
        pending_gauge = obs.metrics.gauge("service.pool.pending")
        priority_gauges = {
            priority: obs.metrics.gauge(
                "service.pool.pending_class", priority=priority
            )
            for priority in ("interactive", "batch")
        }
        while not self._stopped.is_set():
            self._assign(computed)
            self._drain_results()
            self._check_workers(crashes, retries, timeouts, respawns)
            with self._lock:
                pending_gauge.set(self._pending_len_locked())
                for priority, queue_ in self._pending.items():
                    priority_gauges[priority].set(len(queue_))
                if self._pending_len_locked() == 0 and all(
                    w.task is None for w in self._workers
                ):
                    self._idle.set()

    def _assign(self, computed: Any) -> None:
        while True:
            with self._lock:
                worker = next(
                    (w for w in self._workers if w.idle()), None
                )
                if worker is None:
                    return
                task = self._pop_pending_locked(time.monotonic())
                if task is None:
                    return
                task["attempts"] = int(task.get("attempts", 0)) + 1
                self._stamp_attempt(task)
                worker.task = task
                worker.deadline = (
                    time.monotonic() + self.job_timeout_s
                )
            # The inbox has capacity 1 and the worker is idle: put cannot
            # block.  Callbacks ("on_*" keys) and supervisor bookkeeping
            # ("_"-prefixed keys: attempt spans, enqueue stamps) stay on
            # the supervisor side — the pickled payload carries data only.
            worker.inbox.put(
                {
                    k: v
                    for k, v in task.items()
                    if not k.startswith(("on_", "_"))
                }
            )
            computed.inc()
            if "on_running" in task:
                task["on_running"](task)

    def _stamp_attempt(self, task: Task) -> None:
        """Derive this attempt's span id and stamp the worker envelope.

        Each assignment gets its own attempt span (derived from the
        leader's execute span, the task key and the attempt number), so a
        crash-retried job shows two distinct attempts in one trace and
        sharded siblings never share an id.  The supervisor
        keeps the bookkeeping under ``_attempt*`` keys, which never cross
        the process boundary.
        """
        trace_id = task.get("trace_id")
        parent_span = task.get("parent_span")
        if not trace_id or not parent_span:
            return
        # The task key joins the qualifier because sharded jobs fan several
        # sibling tasks out under one parent span: attempt number alone
        # would derive the same id for every shard's first attempt.
        attempt_span = derive_span_id(
            str(parent_span), f"{task['key']}#attempt-{task['attempts']}"
        )
        task["_attempt_span"] = attempt_span
        task["_attempt_wall0"] = time.monotonic()
        task["_attempt_start_unix"] = now_unix()
        task["traceparent"] = TraceContext(
            str(trace_id), attempt_span
        ).to_traceparent()

    def _emit_attempt(self, task: Task, outcome: str) -> None:
        """Hand the supervisor's span for the current attempt to the sink.

        Attempts interleave across worker slots, so they cannot share a
        tracer's lexically-nested stack — the record is built by hand
        from the monotonic delta since assignment.
        """
        sink = self._trace_sink
        attempt_span = task.get("_attempt_span")
        if sink is None or attempt_span is None:
            return
        wall0 = float(task.get("_attempt_wall0") or 0.0)
        attrs: Dict[str, Any] = {
            "attempt": int(task.get("attempts", 0)),
            "outcome": outcome,
            "key": str(task.get("key"))[:32],
        }
        if "shard_index" in task:
            attrs["shard"] = (
                f"{int(task['shard_index']) + 1}/{int(task['shard_count'])}"
            )
        if "engine" in task:
            attrs["engine"] = str(task["engine"])
        sink(
            {
                "trace_id": str(task["trace_id"]),
                "span_id": str(attempt_span),
                "parent_span_id": str(task["parent_span"]),
                "name": "service.pool.attempt",
                "origin": "supervisor",
                "start_unix": float(task.get("_attempt_start_unix") or 0.0),
                "wall_s": max(0.0, time.monotonic() - wall0),
                "cpu_s": None,
                "attrs": attrs,
            }
        )

    def _drain_results(self) -> None:
        try:
            result = self._results.get(timeout=_TICK_S)
        except queue.Empty:
            return
        self._finish(result)

    def _finish(self, result: Result) -> None:
        key = result.get("key")
        with self._lock:
            worker = next(
                (
                    w
                    for w in self._workers
                    if w.task is not None and w.task.get("key") == key
                ),
                None,
            )
            task = None if worker is None else worker.task
            if worker is not None:
                worker.task = None
        if task is not None:
            self._emit_attempt(
                task, "ok" if result.get("error") is None else "error"
            )
            self._on_complete(task, result)

    def _check_workers(
        self, crashes: Any, retries: Any, timeouts: Any, respawns: Any
    ) -> None:
        now = time.monotonic()
        for worker in self._workers:
            if worker.alive():
                task = worker.task
                if task is not None and now > worker.deadline:
                    timeouts.inc()
                    assert worker.process is not None
                    worker.process.kill()
                    worker.process.join(timeout=2.0)
                    with self._lock:
                        worker.task = None
                        worker.respawn_at = now + self.respawn_delay_s
                    self._emit_attempt(task, "timeout")
                    self._on_complete(
                        task,
                        {
                            "key": task["key"],
                            "error": {
                                "type": "timeout",
                                "message": (
                                    "job exceeded the "
                                    f"{self.job_timeout_s:g}s pool timeout"
                                ),
                                "timeout_s": self.job_timeout_s,
                            },
                        },
                    )
                continue
            if worker.process is None:
                continue
            # Worker process died.
            task = worker.task
            if task is not None:
                crashes.inc()
                with self._lock:
                    worker.task = None
                self._emit_attempt(task, "crashed")
                attempts = int(task.get("attempts", 1))
                if attempts < self.max_attempts:
                    retries.inc()
                    with self._lock:
                        # Retry jumps its class queue's line: the job
                        # already waited once and its waiters are live.
                        self._queue_of(task).appendleft(task)
                        self._idle.clear()
                else:
                    self._on_complete(
                        task,
                        {
                            "key": task["key"],
                            "error": {
                                "type": "worker-crashed",
                                "message": (
                                    "worker process died while running the "
                                    f"job ({attempts} attempt(s))"
                                ),
                                "attempts": attempts,
                            },
                        },
                    )
            if worker.respawn_at is None:
                worker.respawn_at = now + self.respawn_delay_s
            with self._lock:
                draining = self._draining or self._stopped.is_set()
            if now >= worker.respawn_at and not draining:
                worker.process.join(timeout=0.1)
                self._spawn(worker)
                respawns.inc()
