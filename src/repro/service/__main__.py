"""``python -m repro.service`` — run, query, or ping the service.

Subcommands:

* ``serve`` — start the HTTP server (blocks; SIGTERM/SIGINT drain the
  worker pool gracefully before exiting);
* ``submit`` — send one query to a running server and print the raw
  response body (byte-identical to the equivalent ``repro`` CLI run);
* ``jobs`` — list a running server's queue, history and dead letters;
* ``ping`` — fetch ``/healthz`` and report it;
* ``compact-journal`` — offline compaction of a ``--journal-dir``
  (run only while no server writes to it).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import types
from typing import List, Optional

from ..cli import add_log_level_argument, configure_logging_from, positive_int
from ..obs import observed
from ..obs.log import get_logger
from .app import ReproService, ServiceConfig, make_server
from .client import ServiceClient, ServiceUnreachable
from .jobs import COMMANDS, PRIORITIES, STATES
from .journal import compact


def _cmd_serve(args: argparse.Namespace) -> int:
    config = ServiceConfig(
        cache_dir=args.cache_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        job_timeout_s=args.job_timeout,
        store_max_bytes=args.store_max_bytes,
        allow_test_delay=args.allow_test_delay,
        slow_job_threshold_s=args.slow_job_threshold,
        trace_capacity=args.trace_capacity,
        journal_dir=args.journal_dir,
        journal_fsync=not args.journal_no_fsync,
        dead_letter_attempts=args.dead_letter_attempts,
        batch_aging_s=args.batch_aging,
    )
    log = get_logger("repro.service")
    with observed(params={"command": "service.serve"}):
        service = ReproService(config)
        server = make_server(service)
        host, port = server.server_address[0], server.server_address[1]
        # The URL stays on stdout (scripts read it); everything else is
        # a structured log line.
        print(f"repro.service: listening on http://{host}:{port}", flush=True)
        log.info(
            "service.listening",
            url=f"http://{host}:{port}",
            workers=config.workers,
            queue_capacity=config.queue_capacity,
            cache_dir=config.cache_dir,
            slow_job_threshold_s=config.slow_job_threshold_s,
        )

        def _graceful(signum: int, frame: Optional[types.FrameType]) -> None:
            log.info("service.signal", signum=signum, action="drain")
            # shutdown() blocks until serve_forever returns; calling it
            # from the signal handler's thread would deadlock the loop.
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
        try:
            server.serve_forever()
        finally:
            server.server_close()
            drained = service.close(drain=True)
            log.info("service.drained", clean=drained)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url, timeout_s=args.timeout)
    params: dict[str, object] = {}
    if args.max_hops is not None:
        params["max_hops"] = args.max_hops
    if args.grid_points is not None:
        params["grid_points"] = args.grid_points
    if args.eps is not None:
        params["eps"] = args.eps
    if args.shards is not None:
        params["shards"] = args.shards
    if args.priority is not None:
        params["priority"] = args.priority
    try:
        response = client.query(
            args.service_command,
            args.trace,
            retries=2,
            wait_on_backpressure=args.wait_on_backpressure,
            max_wait_s=args.max_wait,
            **params,
        )
    except ServiceUnreachable as exc:
        print(f"repro.service: {exc}", file=sys.stderr)
        return 2
    if response.ok:
        sys.stdout.write(response.text())
        return 0
    sys.stderr.write(response.text())
    if response.status == 429:
        retry = response.headers.get("Retry-After", "?")
        print(f"service saturated; Retry-After: {retry}s", file=sys.stderr)
        return 3
    return 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url, timeout_s=args.timeout)
    try:
        response = client.jobs(
            state=args.state, priority=args.priority, limit=args.limit
        )
    except ServiceUnreachable as exc:
        print(f"repro.service: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write(response.text())
    return 0 if response.ok else 1


def _cmd_compact_journal(args: argparse.Namespace) -> int:
    try:
        summary = compact(
            args.journal_dir, drop_dead_letters=args.drop_dead_letters
        )
    except (OSError, ValueError) as exc:
        print(f"repro.service: compaction failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_ping(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url, timeout_s=args.timeout)
    try:
        response = client.health(retries=2)
    except ServiceUnreachable as exc:
        print(f"repro.service: {exc}", file=sys.stderr)
        return 1
    sys.stdout.write(response.text())
    return 0 if response.status == 200 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description="Concurrent query service for diameter/delay-CDF results",
    )
    add_log_level_argument(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the HTTP server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="0 binds an ephemeral port"
    )
    serve.add_argument(
        "--workers", type=positive_int, default=2,
        help="worker processes in the pool (>= 1)",
    )
    serve.add_argument(
        "--queue-capacity", type=positive_int, default=16,
        help="pending jobs accepted beyond the busy workers (>= 1)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=300.0, metavar="SECONDS",
        help="kill a computation running longer than this",
    )
    serve.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="root for the profile cache and the result store",
    )
    serve.add_argument(
        "--store-max-bytes", type=int, default=None, metavar="BYTES",
        help="LRU size cap for the result store (default: unbounded)",
    )
    serve.add_argument(
        "--slow-job-threshold", type=float, default=30.0, metavar="SECONDS",
        help="log service.job.slow for jobs taking longer than this",
    )
    serve.add_argument(
        "--trace-capacity", type=positive_int, default=256,
        help="traces retained by the /debug/traces ring (>= 1)",
    )
    serve.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="write-ahead job journal directory; enables crash recovery "
        "(omitted: job state dies with the process)",
    )
    serve.add_argument(
        "--journal-no-fsync", action="store_true",
        help="skip the per-record fsync (faster, loses the last events "
        "on power failure; fine for tests and benchmarks)",
    )
    serve.add_argument(
        "--dead-letter-attempts", type=positive_int, default=3,
        help="dead-letter a job after this many worker crashes, counted "
        "across restarts (>= 1)",
    )
    serve.add_argument(
        "--batch-aging", type=float, default=30.0, metavar="SECONDS",
        help="a queued batch job older than this jumps ahead of "
        "interactive work (anti-starvation)",
    )
    serve.add_argument(
        "--allow-test-delay", action="store_true", help=argparse.SUPPRESS
    )
    serve.set_defaults(func=_cmd_serve)

    def _add_client_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default="http://127.0.0.1:8765")
        p.add_argument("--timeout", type=float, default=300.0)

    submit = sub.add_parser("submit", help="send one query, print the body")
    _add_client_arguments(submit)
    submit.add_argument("service_command", choices=COMMANDS, metavar="command")
    submit.add_argument("trace", help="trace path as visible to the server")
    submit.add_argument("--max-hops", type=positive_int, default=None)
    submit.add_argument("--grid-points", type=positive_int, default=None)
    submit.add_argument("--eps", type=float, default=None)
    submit.add_argument(
        "--shards", type=positive_int, default=None,
        help="fan the job out over this many source shards on the server "
        "(byte-identical output; completed shards survive worker crashes)",
    )
    submit.add_argument(
        "--priority", choices=PRIORITIES, default=None,
        help="admission class (default: interactive)",
    )
    submit.add_argument(
        "--wait-on-backpressure", action="store_true",
        help="on 429, honour the server's Retry-After and resubmit "
        "instead of failing immediately",
    )
    submit.add_argument(
        "--max-wait", type=float, default=60.0, metavar="SECONDS",
        help="total backpressure wait budget for --wait-on-backpressure",
    )
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list the server's queue, history and dead letters"
    )
    _add_client_arguments(jobs)
    jobs.add_argument("--state", choices=STATES, default=None)
    jobs.add_argument("--priority", choices=PRIORITIES, default=None)
    jobs.add_argument("--limit", type=positive_int, default=None)
    jobs.set_defaults(func=_cmd_jobs)

    ping = sub.add_parser("ping", help="print /healthz")
    _add_client_arguments(ping)
    ping.set_defaults(func=_cmd_ping)

    compact_journal = sub.add_parser(
        "compact-journal",
        help="offline journal compaction (no server may be writing)",
    )
    compact_journal.add_argument(
        "journal_dir", metavar="DIR", help="the --journal-dir to compact"
    )
    compact_journal.add_argument(
        "--drop-dead-letters", action="store_true",
        help="also drop dead-lettered episodes (clears the poison set; "
        "the affected jobs become submittable again)",
    )
    compact_journal.set_defaults(func=_cmd_compact_journal)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging_from(args)
    result = args.func(args)
    return int(result)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
