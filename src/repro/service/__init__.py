"""The repro query service: diameter/delay-CDF answers over HTTP.

The batch pipeline computes; this package *serves*.  It is a front end
to the exact same engine — every response body is byte-identical to the
corresponding ``repro diameter`` / ``repro delay-cdf`` CLI output — with
the semantics a query service needs under load:

* **single-flight coalescing** (:mod:`repro.service.jobs`) — concurrent
  identical queries share one computation, keyed on the same
  content-addressed key discipline as the profile cache;
* **a bounded process worker pool** (:mod:`repro.service.pool`) — per-job
  timeouts, 429 backpressure when saturated, crash detection with
  respawn, graceful drain on shutdown;
* **a content-addressed LRU result store** (:mod:`repro.service.store`)
  — repeat queries are one file read;
* **a durable write-ahead job journal** (:mod:`repro.service.journal`)
  — with ``--journal-dir``, every lifecycle transition commits to an
  append-only fsynced ``repro.journal/1`` log before it happens; a
  restarted server replays it, re-enqueues unfinished jobs
  (interactive-first, shard checkpoints skipped) and dead-letters
  jobs that keep crashing workers;
* **an HTTP shell** (:mod:`repro.service.app`) — ``POST /v1/diameter``,
  ``POST /v1/delay-cdf``, ``GET /v1/jobs`` (+ ``/<id>``),
  ``GET /healthz``, ``GET /metrics`` (Prometheus text via
  :mod:`repro.obs`), plus the live trace ring under
  ``GET /debug/traces[/<trace_id>]``;
* **request tracing end to end** — every request carries a
  :class:`repro.obs.TraceContext`; spans recorded in the handler thread,
  the pool supervisor and the worker process reassemble into one
  ``repro.trace/1`` trace, with coalesced requests linked to their
  leader (``X-Repro-Trace`` names the trace on every response);
* **a thin client and CLI** (:mod:`repro.service.client`,
  ``python -m repro.service serve|submit|ping``).

Quickstart::

    python -m repro.service serve --cache-dir /tmp/repro-cache --port 8765
    python -m repro.service submit --url http://127.0.0.1:8765 \\
        diameter trace.txt --max-hops 8
"""

from .app import (
    ReproService,
    Response,
    ServiceConfig,
    make_server,
    mint_context,
    serve_in_thread,
    with_trace,
)
from .client import ServiceClient, ServiceResponse, ServiceUnreachable
from .jobs import (
    BadRequest,
    JobSpec,
    JobTable,
    PRIORITIES,
    job_key,
    normalize_request,
)
from .journal import (
    JOURNAL_SCHEMA,
    JournalError,
    JournalWriter,
    compact,
    replay,
    validate_journal_dir,
)
from .pool import PoolClosed, PoolSaturated, WorkerPool
from .store import ResultStore

__all__ = [
    "BadRequest",
    "JOURNAL_SCHEMA",
    "JobSpec",
    "JobTable",
    "JournalError",
    "JournalWriter",
    "PRIORITIES",
    "PoolClosed",
    "PoolSaturated",
    "ReproService",
    "Response",
    "ResultStore",
    "ServiceClient",
    "ServiceConfig",
    "ServiceResponse",
    "ServiceUnreachable",
    "WorkerPool",
    "compact",
    "job_key",
    "make_server",
    "mint_context",
    "normalize_request",
    "replay",
    "serve_in_thread",
    "validate_journal_dir",
    "with_trace",
]
