"""A thin stdlib client for the repro query service.

Wraps ``urllib.request`` so callers (the ``python -m repro.service``
CLI, the load benchmark, tests) never hand-roll HTTP: every call returns
a :class:`ServiceResponse` carrying the status, headers and raw body —
error statuses are *returned*, not raised, because 429/503 are expected
signals (backpressure, draining) a load-aware caller must see.

Transport failures are different: a connection refused or reset never
produced a server answer, so :meth:`ServiceClient.request` raises
:class:`ServiceUnreachable` — after an optional bounded exponential
retry — instead of leaking raw ``URLError``/``ConnectionRefusedError``
out of ``urllib``'s internals.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, Optional


def _retry_after_s(headers: Dict[str, str], default: float) -> float:
    """The server's ``Retry-After`` hint in seconds, or ``default``.

    Only the delta-seconds form is parsed (the service never sends
    HTTP-dates); a malformed value falls back rather than raising —
    a bad header must not break a polite client.
    """
    raw = headers.get("Retry-After")
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return max(0.0, value)


class ServiceUnreachable(OSError):
    """No server answer after every transport attempt failed.

    Subclasses :class:`OSError` so existing ``except OSError`` callers
    keep working; carries the target URL, how many attempts were made,
    and the final underlying cause.
    """

    def __init__(self, url: str, attempts: int, cause: Exception) -> None:
        super().__init__(
            f"service unreachable at {url} after {attempts} attempt(s): "
            f"{cause}"
        )
        self.url = url
        self.attempts = attempts
        self.cause = cause


class ServiceResponse:
    """One HTTP exchange: status, headers, body bytes."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: Dict[str, str], body: bytes) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def trace_id(self) -> Optional[str]:
        """The server-assigned trace id (``X-Repro-Trace``), if any."""
        return self.headers.get("X-Repro-Trace")

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))

    def text(self) -> str:
        return self.body.decode("utf-8")

    def __repr__(self) -> str:
        return f"ServiceResponse(status={self.status}, bytes={len(self.body)})"


class ServiceClient:
    """Client for one service base URL (e.g. ``http://127.0.0.1:8765``)."""

    def __init__(self, base_url: str, timeout_s: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
        traceparent: Optional[str] = None,
        retries: int = 0,
        backoff_s: float = 0.1,
    ) -> ServiceResponse:
        """One HTTP exchange, with bounded retry on *transport* failure.

        HTTP error statuses are returned as responses.  Connection-level
        failures (refused, reset, DNS) are retried up to ``retries``
        times with exponential backoff starting at ``backoff_s``, then
        raised as :class:`ServiceUnreachable`.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if traceparent is not None:
            headers["traceparent"] = traceparent
        req = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        last: Optional[Exception] = None
        for attempt in range(retries + 1):
            if attempt > 0:
                time.sleep(backoff_s * 2 ** (attempt - 1))
            try:
                with urllib.request.urlopen(
                    req, timeout=self.timeout_s
                ) as resp:
                    return ServiceResponse(
                        resp.status, dict(resp.headers.items()), resp.read()
                    )
            except urllib.error.HTTPError as exc:
                # 4xx/5xx are application-level answers here, not
                # exceptions.  (HTTPError is an OSError subclass, so this
                # arm must come first.)
                return ServiceResponse(
                    exc.code, dict(exc.headers.items()), exc.read()
                )
            except OSError as exc:
                last = exc
        assert last is not None
        raise ServiceUnreachable(
            self.base_url + path, retries + 1, last
        ) from last

    # -- convenience wrappers ------------------------------------------
    def query(
        self,
        command: str,
        trace: str,
        traceparent: Optional[str] = None,
        retries: int = 0,
        backoff_s: float = 0.1,
        wait_on_backpressure: bool = False,
        max_wait_s: float = 60.0,
        **params: object,
    ) -> ServiceResponse:
        """Submit one query; opt into waiting out server backpressure.

        By default a 429 (saturated pool) is returned immediately like
        any other status.  With ``wait_on_backpressure=True`` the client
        instead honours the server's ``Retry-After`` hint and resubmits,
        for at most ``max_wait_s`` of total waiting — the last 429 is
        returned when the budget runs out, so callers always get a
        response, never an unbounded block.  Transport retries
        (``retries`` / ``backoff_s``) apply to every resubmission.
        """
        payload: Dict[str, object] = {"trace": trace, **params}
        deadline = time.monotonic() + max(0.0, max_wait_s)
        attempt = 0
        while True:
            response = self.request(
                "POST",
                f"/v1/{command}",
                payload,
                traceparent=traceparent,
                retries=retries,
                backoff_s=backoff_s,
            )
            if response.status != 429 or not wait_on_backpressure:
                return response
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return response
            # The server's hint, clamped to the remaining budget (with
            # the transport backoff curve as fallback when absent).
            pause = _retry_after_s(
                response.headers, default=backoff_s * 2**attempt
            )
            time.sleep(min(max(pause, backoff_s), remaining))
            attempt += 1

    def diameter(self, trace: str, **params: object) -> ServiceResponse:
        return self.query("diameter", trace, **params)

    def delay_cdf(self, trace: str, **params: object) -> ServiceResponse:
        return self.query("delay-cdf", trace, **params)

    def job(self, job_id: str) -> ServiceResponse:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def jobs(
        self,
        state: Optional[str] = None,
        priority: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> ServiceResponse:
        """``GET /v1/jobs`` — queue, history, and dead-letter listing."""
        params: Dict[str, str] = {}
        if state is not None:
            params["state"] = state
        if priority is not None:
            params["priority"] = priority
        if limit is not None:
            params["limit"] = str(limit)
        suffix = f"?{urllib.parse.urlencode(params)}" if params else ""
        return self.request("GET", f"/v1/jobs{suffix}")

    def health(
        self, retries: int = 0, backoff_s: float = 0.1
    ) -> ServiceResponse:
        return self.request(
            "GET", "/healthz", retries=retries, backoff_s=backoff_s
        )

    def traces(self) -> ServiceResponse:
        """``GET /debug/traces`` — the trace-ring summary listing."""
        return self.request("GET", "/debug/traces")

    def trace(self, trace_id: str) -> ServiceResponse:
        """``GET /debug/traces/<id>`` — one trace as repro.trace/1 JSONL."""
        return self.request("GET", f"/debug/traces/{trace_id}")

    def metrics_text(self) -> str:
        return self.request("GET", "/metrics").text()

    def ping(self, retries: int = 2, backoff_s: float = 0.1) -> bool:
        try:
            status = self.health(retries=retries, backoff_s=backoff_s).status
            return status in (200, 503)
        except ServiceUnreachable:
            return False
