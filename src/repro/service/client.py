"""A thin stdlib client for the repro query service.

Wraps ``urllib.request`` so callers (the ``python -m repro.service``
CLI, the load benchmark, tests) never hand-roll HTTP: every call returns
a :class:`ServiceResponse` carrying the status, headers and raw body —
error statuses are *returned*, not raised, because 429/503 are expected
signals (backpressure, draining) a load-aware caller must see.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional


class ServiceResponse:
    """One HTTP exchange: status, headers, body bytes."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: Dict[str, str], body: bytes) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def trace_id(self) -> Optional[str]:
        """The server-assigned trace id (``X-Repro-Trace``), if any."""
        return self.headers.get("X-Repro-Trace")

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))

    def text(self) -> str:
        return self.body.decode("utf-8")

    def __repr__(self) -> str:
        return f"ServiceResponse(status={self.status}, bytes={len(self.body)})"


class ServiceClient:
    """Client for one service base URL (e.g. ``http://127.0.0.1:8765``)."""

    def __init__(self, base_url: str, timeout_s: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
        traceparent: Optional[str] = None,
    ) -> ServiceResponse:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if traceparent is not None:
            headers["traceparent"] = traceparent
        req = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return ServiceResponse(
                    resp.status, dict(resp.headers.items()), resp.read()
                )
        except urllib.error.HTTPError as exc:
            # 4xx/5xx are application-level answers here, not exceptions.
            return ServiceResponse(
                exc.code, dict(exc.headers.items()), exc.read()
            )

    # -- convenience wrappers ------------------------------------------
    def query(
        self,
        command: str,
        trace: str,
        traceparent: Optional[str] = None,
        **params: object,
    ) -> ServiceResponse:
        payload: Dict[str, object] = {"trace": trace, **params}
        return self.request(
            "POST", f"/v1/{command}", payload, traceparent=traceparent
        )

    def diameter(self, trace: str, **params: object) -> ServiceResponse:
        return self.query("diameter", trace, **params)

    def delay_cdf(self, trace: str, **params: object) -> ServiceResponse:
        return self.query("delay-cdf", trace, **params)

    def job(self, job_id: str) -> ServiceResponse:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def health(self) -> ServiceResponse:
        return self.request("GET", "/healthz")

    def traces(self) -> ServiceResponse:
        """``GET /debug/traces`` — the trace-ring summary listing."""
        return self.request("GET", "/debug/traces")

    def trace(self, trace_id: str) -> ServiceResponse:
        """``GET /debug/traces/<id>`` — one trace as repro.trace/1 JSONL."""
        return self.request("GET", f"/debug/traces/{trace_id}")

    def metrics_text(self) -> str:
        return self.request("GET", "/metrics").text()

    def ping(self) -> bool:
        try:
            return self.health().status in (200, 503)
        except OSError:
            return False
