"""Contact-process substrates used to synthesise mobility traces."""

from .base import (
    ActivityProfile,
    ContactProcess,
    compose_profiles,
    conference_profile,
    diurnal_profile,
    flat_profile,
    weekly_profile,
)
from .community import CommunityProcess, assign_communities
from .duration import (
    BoundedPareto,
    DurationModel,
    Exponential,
    Fixed,
    LogNormal,
    Mixture,
    campus_durations,
    conference_durations,
)
from .places import PlacesProcess
from .poisson_pairs import PoissonPairProcess, sample_nonhomogeneous_times
from .random_waypoint import RandomWaypoint

__all__ = [
    "ActivityProfile",
    "BoundedPareto",
    "CommunityProcess",
    "ContactProcess",
    "DurationModel",
    "Exponential",
    "Fixed",
    "LogNormal",
    "Mixture",
    "PlacesProcess",
    "PoissonPairProcess",
    "RandomWaypoint",
    "assign_communities",
    "campus_durations",
    "compose_profiles",
    "conference_durations",
    "conference_profile",
    "diurnal_profile",
    "flat_profile",
    "sample_nonhomogeneous_times",
    "weekly_profile",
]
