"""Contact-duration distributions.

Figure 7 of the paper shows contact durations spanning minutes to hours
with a heavy upper tail (75% of Infocom06 contacts are a single 2-minute
scan slot, yet 0.4% exceed one hour).  The synthetic data sets reproduce
that shape with a mixture of a log-normal body and a bounded-Pareto tail.
All distributions are seeded through an explicit numpy Generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np


class DurationModel(Protocol):
    """Anything that can sample positive contact durations."""

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` durations (seconds)."""
        ...

    def mean(self) -> float:
        """Expected duration, used by intensity calibration."""
        ...


@dataclass(frozen=True)
class Fixed:
    """Every contact lasts exactly ``value`` seconds."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("duration cannot be negative")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value)

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Exponential:
    """Exponential durations with the given mean."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("mean duration must be positive")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self.mean_value, size)

    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class LogNormal:
    """Log-normal durations parameterised by median and sigma (of log)."""

    median: float
    sigma: float

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError("median must be positive")
        if self.sigma < 0:
            raise ValueError("sigma cannot be negative")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(math.log(self.median), self.sigma, size)

    def mean(self) -> float:
        return self.median * math.exp(self.sigma ** 2 / 2.0)


@dataclass(frozen=True)
class BoundedPareto:
    """Pareto durations truncated to [lower, upper] (heavy but finite tail)."""

    alpha: float
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0 < self.lower < self.upper:
            raise ValueError("need 0 < lower < upper")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        u = rng.uniform(0.0, 1.0, size)
        l_a = self.lower ** self.alpha
        h_a = self.upper ** self.alpha
        # Inverse transform of the truncated Pareto CDF.
        return (-(u * h_a - u * l_a - h_a) / (h_a * l_a)) ** (-1.0 / self.alpha)

    def mean(self) -> float:
        a, lo, hi = self.alpha, self.lower, self.upper
        if a == 1.0:
            norm = 1.0 - (lo / hi)
            return lo * math.log(hi / lo) / norm
        norm = 1.0 - (lo / hi) ** a
        return (a * lo / (a - 1.0)) * (1.0 - (lo / hi) ** (a - 1.0)) / norm


@dataclass(frozen=True)
class Mixture:
    """Weighted mixture of duration models.

    The default data-set shape: a log-normal body (casual proximity) mixed
    with a bounded-Pareto tail (sitting next to someone for a session).
    """

    components: "Sequence[DurationModel]"
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights):
            raise ValueError("one weight per component required")
        if not self.components:
            raise ValueError("mixture needs at least one component")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative and sum > 0")

    def _probs(self) -> np.ndarray:
        w = np.asarray(self.weights, dtype=float)
        return w / w.sum()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        probs = self._probs()
        choice = rng.choice(len(self.components), size=size, p=probs)
        out = np.empty(size)
        for idx, component in enumerate(self.components):
            mask = choice == idx
            count = int(mask.sum())
            if count:
                out[mask] = component.sample(rng, count)
        return out

    def mean(self) -> float:
        probs = self._probs()
        return float(
            sum(p * c.mean() for p, c in zip(probs, self.components))
        )


def conference_durations(scan_granularity: float = 120.0) -> Mixture:
    """The duration shape of conference traces (Infocom05/06-like).

    Mostly brief corridor encounters around the scan granularity, plus a
    heavy tail of session-length contacts up to several hours, matching
    the Figure 7 CCDF: most contacts at one scan slot, ~0.5% over an hour.
    """
    return Mixture(
        components=(
            LogNormal(median=scan_granularity / 2.0, sigma=1.0),
            BoundedPareto(alpha=1.1, lower=10 * 60.0, upper=6 * 3600.0),
        ),
        weights=(0.93, 0.07),
    )


def campus_durations() -> Mixture:
    """Duration shape for campus/city traces (Reality Mining, Hong Kong):
    longer median (co-located classes/offices), similarly heavy tail."""
    return Mixture(
        components=(
            LogNormal(median=300.0, sigma=1.0),
            BoundedPareto(alpha=1.2, lower=30 * 60.0, upper=12 * 3600.0),
        ),
        weights=(0.85, 0.15),
    )
