"""Heterogeneous community-based contact process.

The random temporal networks of Section 3 assume homogeneous, stationary
contacts; the paper's measured traces violate both (Section 3.4 lists
homogeneity, inter-contact statistics and stationarity as the gaps).  This
process is the trace-synthesis substrate that injects the violations:

* **communities** — pairs inside a community meet at ``intra_rate``,
  cross-community pairs at ``inter_rate`` (habits and shared interests);
* **node heterogeneity** — each node gets a log-normal activity multiplier
  (gregarious vs solitary participants, paper Figure 6);
* **non-stationarity** — an :class:`ActivityProfile` modulates all
  intensities (conference sessions, diurnal and weekly cycles);
* **duration classes** — intra-community contacts draw from a longer
  duration model than inter-community ones, the mechanism behind the
  paper's Section 6.2 observation that short contacts are the shortcuts;
* **external devices** — an optional population that internal devices
  sight occasionally but whose mutual contacts are unobserved, as in the
  Hong Kong experiment.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.contact import Contact
from ..core.temporal_network import TemporalNetwork
from .base import ActivityProfile, flat_profile
from .duration import DurationModel, Fixed
from .poisson_pairs import sample_nonhomogeneous_times


def assign_communities(community_sizes: Sequence[int]) -> List[int]:
    """Node index -> community index, for consecutive blocks of nodes."""
    assignment: List[int] = []
    for community, size in enumerate(community_sizes):
        if size < 1:
            raise ValueError("community sizes must be positive")
        assignment.extend([community] * size)
    return assignment


@dataclass(frozen=True)
class CommunityProcess:
    """A seeded generator of heterogeneous, non-stationary contact traces.

    Internal devices are the integers ``0 .. n-1`` where n is the sum of
    ``community_sizes``; external devices (if any) are the strings
    ``"ext<i>"`` so they are easy to filter out again.

    Rates are *per-pair meeting intensities* (meetings per second) at
    activity level 1, before node multipliers.
    """

    community_sizes: Tuple[int, ...]
    intra_rate: float
    inter_rate: float
    horizon: float
    durations_intra: DurationModel = field(default_factory=lambda: Fixed(120.0))
    durations_inter: DurationModel = field(default_factory=lambda: Fixed(120.0))
    profile: ActivityProfile = field(default_factory=flat_profile)
    node_sigma: float = 0.0
    #: log-normal sigma of a per-node-per-day activity multiplier (unit
    #: mean).  Nonzero values make individual days bursty — some
    #: participants disappear for a day or more, as the Hong-Kong and
    #: Reality Mining nodes of paper Figure 6 do — and push inter-contact
    #: times toward the heavy tails discussed in Section 3.4.
    day_sigma: float = 0.0
    externals: int = 0
    external_rate: float = 0.0
    durations_external: DurationModel = field(default_factory=lambda: Fixed(120.0))

    def __post_init__(self) -> None:
        if not self.community_sizes:
            raise ValueError("need at least one community")
        if self.intra_rate < 0 or self.inter_rate < 0 or self.external_rate < 0:
            raise ValueError("rates cannot be negative")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.node_sigma < 0:
            raise ValueError("node_sigma cannot be negative")
        if self.day_sigma < 0:
            raise ValueError("day_sigma cannot be negative")
        if self.externals < 0:
            raise ValueError("externals cannot be negative")

    @property
    def n(self) -> int:
        return sum(self.community_sizes)

    def internal_nodes(self) -> List[int]:
        return list(range(self.n))

    def external_nodes(self) -> List[str]:
        return [f"ext{i}" for i in range(self.externals)]

    # ------------------------------------------------------------------
    # Calibration helpers
    # ------------------------------------------------------------------

    def expected_internal_contacts(self) -> float:
        """Expected internal-internal contact count (over node multipliers
        with unit mean, so exact in expectation)."""
        n = self.n
        intra_pairs = sum(
            size * (size - 1) // 2 for size in self.community_sizes
        )
        total_pairs = n * (n - 1) // 2
        inter_pairs = total_pairs - intra_pairs
        weight = self.profile.integral(0.0, self.horizon)
        return (
            intra_pairs * self.intra_rate + inter_pairs * self.inter_rate
        ) * weight

    def expected_external_contacts(self) -> float:
        """Expected internal-external contact count."""
        weight = self.profile.integral(0.0, self.horizon)
        return self.n * self.externals * self.external_rate * weight

    def scaled_to(
        self,
        target_internal: float,
        target_external: Optional[float] = None,
    ) -> "CommunityProcess":
        """A copy whose rates are scaled to hit the target expected counts."""
        if target_internal <= 0:
            raise ValueError("target contact count must be positive")
        expected = self.expected_internal_contacts()
        if expected <= 0:
            raise ValueError("process has zero expected internal contacts")
        factor = target_internal / expected
        changes = {
            "intra_rate": self.intra_rate * factor,
            "inter_rate": self.inter_rate * factor,
        }
        if target_external is not None and self.externals > 0:
            expected_ext = self.expected_external_contacts()
            if expected_ext <= 0:
                raise ValueError("process has zero expected external contacts")
            changes["external_rate"] = (
                self.external_rate * target_external / expected_ext
            )
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def _node_multipliers(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if self.node_sigma == 0.0:
            return np.ones(count)
        # Unit-mean log-normal: mu = -sigma^2 / 2.
        return rng.lognormal(-self.node_sigma ** 2 / 2.0, self.node_sigma, count)

    @property
    def _num_days(self) -> int:
        return int(math.ceil(self.horizon / 86400.0))

    def _day_multipliers(
        self, rng: np.random.Generator, count: int
    ) -> "Optional[np.ndarray]":
        """(count, days) array of unit-mean day-activity multipliers."""
        if self.day_sigma == 0.0:
            return None
        return rng.lognormal(
            -self.day_sigma ** 2 / 2.0,
            self.day_sigma,
            size=(count, self._num_days),
        )

    def _pair_times(
        self,
        rate: float,
        day_factors: "Optional[np.ndarray]",
        rng: np.random.Generator,
    ) -> np.ndarray:
        if day_factors is None:
            return sample_nonhomogeneous_times(
                rate, self.profile, self.horizon, rng
            )
        chunks: List[np.ndarray] = []
        for day, factor in enumerate(day_factors):
            day_beg = day * 86400.0
            day_end = min(day_beg + 86400.0, self.horizon)
            if factor <= 0 or day_end <= day_beg:
                continue
            for beg, end, level in self.profile.pieces(day_beg, day_end):
                mean = rate * factor * level * (end - beg)
                if mean <= 0:
                    continue
                count = int(rng.poisson(mean))
                if count:
                    chunks.append(rng.uniform(beg, end, size=count))
        if not chunks:
            return np.empty(0)
        return np.sort(np.concatenate(chunks))

    def _pair_contacts(
        self,
        u: int,
        v: int,
        rate: float,
        durations: DurationModel,
        rng: np.random.Generator,
        out: List[Contact],
        day_factors: "Optional[np.ndarray]" = None,
    ) -> None:
        if rate <= 0:
            return
        times = self._pair_times(rate, day_factors, rng)
        if len(times) == 0:
            return
        samples = durations.sample(rng, len(times))
        for t, dur in zip(times, samples):
            end = min(t + max(float(dur), 0.0), self.horizon)
            out.append(Contact(float(t), end, u, v))

    def generate(self, rng: np.random.Generator) -> TemporalNetwork:
        """One trace realisation (internal + external contacts)."""
        assignment = assign_communities(self.community_sizes)
        n = self.n
        multipliers = self._node_multipliers(rng, n)
        day_mult = self._day_multipliers(rng, n)
        contacts: List[Contact] = []
        for u in range(n):
            for v in range(u + 1, n):
                same = assignment[u] == assignment[v]
                base = self.intra_rate if same else self.inter_rate
                rate = base * multipliers[u] * multipliers[v]
                durations = self.durations_intra if same else self.durations_inter
                factors = None if day_mult is None else day_mult[u] * day_mult[v]
                self._pair_contacts(u, v, rate, durations, rng, contacts, factors)
        if self.externals:
            ext_multipliers = self._node_multipliers(rng, self.externals)
            ext_day_mult = self._day_multipliers(rng, self.externals)
            for u in range(n):
                for e in range(self.externals):
                    rate = self.external_rate * multipliers[u] * ext_multipliers[e]
                    factors = (
                        None
                        if day_mult is None
                        else day_mult[u] * ext_day_mult[e]
                    )
                    self._pair_contacts(
                        u, f"ext{e}", rate, self.durations_external, rng,
                        contacts, factors,
                    )
        nodes = self.internal_nodes() + self.external_nodes()
        return TemporalNetwork(contacts, nodes=nodes, directed=False)
