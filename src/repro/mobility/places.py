"""Place-based mobility: contacts from co-presence at shared locations.

Pairwise-independent contact processes (Sections 3.1 and
:mod:`.community`) miss one structural property of real proximity traces:
*transitivity*.  Bluetooth sightings happen in rooms — offices, lecture
halls, conference sessions — and everyone in the room sees everyone else,
so the instantaneous contact graph is a union of cliques.  That matters
for the diameter at small time scales: in a clique one hop reaches the
whole component, whereas independent pairwise contacts of the same volume
form path-like components that need many hops to cross.

This process models it directly: each node alternates between being away
and visiting one of ``num_places`` locations (a node-specific *home*
place with probability ``home_bias``, a uniformly random other place
otherwise); visits start as a Poisson process modulated by the activity
profile and per-node/per-day multipliers, and last for a draw from the
``stay`` duration model.  A contact is recorded for every pair of visits
to the same place whose overlap reaches ``min_overlap`` seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.contact import Contact
from ..core.temporal_network import TemporalNetwork
from .base import ActivityProfile, flat_profile
from .duration import DurationModel, Exponential
from .poisson_pairs import sample_nonhomogeneous_times

Visit = Tuple[float, float, int]  # (beg, end, node)


@dataclass(frozen=True)
class PlacesProcess:
    """A seeded generator of clique-structured contact traces.

    Attributes:
        n: number of devices.
        num_places: number of shared locations.
        visit_rate: visit starts per node per second at activity level 1.
        horizon: trace length (seconds).
        stay: distribution of visit durations.
        profile: activity modulation (diurnal / weekly / sessions).
        node_sigma: log-normal sigma of per-node activity (unit mean).
        day_sigma: log-normal sigma of per-node-per-day activity.
        home_bias: probability that a visit goes to the node's home place
            (homes are assigned round-robin, so nodes sharing a home form
            a community).
        min_overlap: minimum co-presence (seconds) recorded as a contact.
    """

    n: int
    num_places: int
    visit_rate: float
    horizon: float
    stay: DurationModel = field(default_factory=lambda: Exponential(1800.0))
    profile: ActivityProfile = field(default_factory=flat_profile)
    node_sigma: float = 0.0
    day_sigma: float = 0.0
    home_bias: float = 0.6
    min_overlap: float = 0.0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("need at least two devices")
        if self.num_places < 1:
            raise ValueError("need at least one place")
        if self.visit_rate <= 0:
            raise ValueError("visit rate must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if not 0.0 <= self.home_bias <= 1.0:
            raise ValueError("home bias must be in [0, 1]")
        if self.node_sigma < 0 or self.day_sigma < 0:
            raise ValueError("sigmas cannot be negative")
        if self.min_overlap < 0:
            raise ValueError("min overlap cannot be negative")

    def home_place(self, node: int) -> int:
        return node % self.num_places

    # ------------------------------------------------------------------
    # Visit generation
    # ------------------------------------------------------------------

    def _unit_mean_lognormal(
        self, rng: np.random.Generator, sigma: float, size: "int | tuple[int, ...]"
    ) -> np.ndarray:
        if sigma == 0.0:
            return np.ones(size)
        return rng.lognormal(-sigma ** 2 / 2.0, sigma, size)

    def _visit_starts(
        self,
        rng: np.random.Generator,
        node_mult: float,
        day_mult: Optional[np.ndarray],
    ) -> np.ndarray:
        rate = self.visit_rate * node_mult
        if day_mult is None:
            return sample_nonhomogeneous_times(rate, self.profile, self.horizon, rng)
        chunks: List[np.ndarray] = []
        for day, factor in enumerate(day_mult):
            day_beg = day * 86400.0
            day_end = min(day_beg + 86400.0, self.horizon)
            if factor <= 0 or day_end <= day_beg:
                continue
            for beg, end, level in self.profile.pieces(day_beg, day_end):
                mean = rate * factor * level * (end - beg)
                if mean <= 0:
                    continue
                count = int(rng.poisson(mean))
                if count:
                    chunks.append(rng.uniform(beg, end, size=count))
        if not chunks:
            return np.empty(0)
        return np.sort(np.concatenate(chunks))

    def visits(self, rng: np.random.Generator) -> Dict[int, List[Visit]]:
        """Per-place time-sorted visit lists for one realisation.

        A node is in at most one place at a time: a visit that would start
        before the previous one ended is skipped.
        """
        num_days = int(math.ceil(self.horizon / 86400.0))
        node_mults = self._unit_mean_lognormal(rng, self.node_sigma, self.n)
        day_mults = (
            self._unit_mean_lognormal(rng, self.day_sigma, (self.n, num_days))
            if self.day_sigma > 0
            else None
        )
        by_place: Dict[int, List[Visit]] = {p: [] for p in range(self.num_places)}
        for node in range(self.n):
            starts = self._visit_starts(
                rng,
                float(node_mults[node]),
                None if day_mults is None else day_mults[node],
            )
            if len(starts) == 0:
                continue
            stays = self.stay.sample(rng, len(starts))
            choices = rng.uniform(size=len(starts))
            others = rng.integers(0, self.num_places, size=len(starts))
            busy_until = -math.inf
            home = self.home_place(node)
            for beg, stay, pick, other in zip(starts, stays, choices, others):
                if beg < busy_until:
                    continue  # still inside the previous visit
                end = min(beg + max(float(stay), 0.0), self.horizon)
                busy_until = end
                place = home if pick < self.home_bias else int(other)
                by_place[place].append((float(beg), end, node))
        for place_visits in by_place.values():
            place_visits.sort()
        return by_place

    # ------------------------------------------------------------------
    # Contacts
    # ------------------------------------------------------------------

    def generate(self, rng: np.random.Generator) -> TemporalNetwork:
        """One trace realisation: co-presence overlaps at every place."""
        contacts: List[Contact] = []
        for place_visits in self.visits(rng).values():
            active: List[Visit] = []
            for beg, end, node in place_visits:
                still_active = []
                for other_beg, other_end, other in active:
                    if other_end <= beg:
                        continue
                    still_active.append((other_beg, other_end, other))
                    if other == node:  # pragma: no cover - visits disjoint
                        continue
                    overlap_end = min(end, other_end)
                    if overlap_end - beg >= self.min_overlap:
                        contacts.append(Contact(beg, overlap_end, node, other))
                active = still_active
                active.append((beg, end, node))
        return TemporalNetwork(contacts, nodes=range(self.n), directed=False)

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def with_visit_rate(self, visit_rate: float) -> "PlacesProcess":
        import dataclasses

        return dataclasses.replace(self, visit_rate=visit_rate)

    def calibrated_to(
        self,
        target_contacts: float,
        rng_factory: Callable[[int], np.random.Generator],
        max_iterations: int = 4,
        tolerance: float = 0.15,
    ) -> "PlacesProcess":
        """Tune the visit rate so a realisation has about ``target_contacts``.

        Contact volume grows roughly quadratically in the visit rate
        (pairs of overlapping visits), so each iteration applies a
        square-root correction measured on a pilot realisation.
        ``rng_factory(i)`` must return a fresh seeded generator per pilot.
        """
        if target_contacts <= 0:
            raise ValueError("target must be positive")
        process = self
        for iteration in range(max_iterations):
            pilot = process.generate(rng_factory(iteration))
            count = pilot.num_contacts
            if count and abs(count - target_contacts) / target_contacts < tolerance:
                break
            factor = math.sqrt(target_contacts / max(count, 1))
            factor = min(max(factor, 0.1), 10.0)
            process = process.with_visit_rate(process.visit_rate * factor)
        return process
