"""Random-waypoint mobility: a geometric contact-process sanity substrate.

Devices move on a square area towards uniformly chosen waypoints at a
uniform speed, pausing between legs; a contact exists while two devices
are within radio range.  This is the classic synthetic mobility model of
the opportunistic-networking literature (Grossglauser-Tse etc.); it is
*not* used to calibrate the paper's data sets (the community process is),
but provides geometrically induced — rather than sampled — contacts for
examples and for checking that the path machinery is model-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.contact import Contact
from ..core.temporal_network import TemporalNetwork


@dataclass(frozen=True)
class RandomWaypoint:
    """Random-waypoint process parameters.

    Attributes:
        n: number of devices.
        area: side of the square playground (metres).
        speed_min / speed_max: uniform speed range (m/s), > 0.
        pause_max: uniform pause at each waypoint, in seconds (0 disables).
        radio_range: contact threshold distance (metres).
        horizon: simulated time (seconds).
        dt: position sampling step (seconds) — also the granularity of the
            produced contact intervals.
    """

    n: int
    area: float
    speed_min: float
    speed_max: float
    pause_max: float
    radio_range: float
    horizon: float
    dt: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("need at least two devices")
        if self.area <= 0 or self.radio_range <= 0:
            raise ValueError("area and radio range must be positive")
        if not 0 < self.speed_min <= self.speed_max:
            raise ValueError("need 0 < speed_min <= speed_max")
        if self.pause_max < 0:
            raise ValueError("pause cannot be negative")
        if self.horizon <= 0 or self.dt <= 0:
            raise ValueError("horizon and dt must be positive")

    def generate(self, rng: np.random.Generator) -> TemporalNetwork:
        n = self.n
        positions = rng.uniform(0.0, self.area, size=(n, 2))
        waypoints = rng.uniform(0.0, self.area, size=(n, 2))
        speeds = rng.uniform(self.speed_min, self.speed_max, size=n)
        pauses = np.zeros(n)

        steps = int(np.ceil(self.horizon / self.dt))
        active: Dict[Tuple[int, int], float] = {}
        contacts: List[Contact] = []
        range_sq = self.radio_range ** 2

        for step in range(steps + 1):
            now = step * self.dt
            # Record links at this instant.
            deltas = positions[:, None, :] - positions[None, :, :]
            dist_sq = np.einsum("ijk,ijk->ij", deltas, deltas)
            linked = dist_sq <= range_sq
            current = set(
                (i, j)
                for i, j in zip(*np.nonzero(np.triu(linked, k=1)))
            )
            for pair in current:
                if pair not in active:
                    active[pair] = now
            for pair in [p for p in active if p not in current]:
                beg = active.pop(pair)
                contacts.append(Contact(beg, now, int(pair[0]), int(pair[1])))
            if step == steps:
                break
            # Advance motion by dt.
            moving = pauses <= 0
            pauses[~moving] -= self.dt
            if moving.any():
                vectors = waypoints[moving] - positions[moving]
                distances = np.linalg.norm(vectors, axis=1)
                travel = speeds[moving] * self.dt
                arrived = distances <= travel
                scale = np.zeros_like(distances)
                np.divide(travel, distances, out=scale, where=distances > 0)
                scale = np.minimum(scale, 1.0)
                positions[moving] += vectors * scale[:, None]
                # Nodes that reached their waypoint pick a new leg.
                moving_idx = np.nonzero(moving)[0]
                done = moving_idx[arrived]
                if len(done):
                    waypoints[done] = rng.uniform(0.0, self.area, size=(len(done), 2))
                    speeds[done] = rng.uniform(
                        self.speed_min, self.speed_max, size=len(done)
                    )
                    if self.pause_max > 0:
                        pauses[done] = rng.uniform(0.0, self.pause_max, size=len(done))

        final_time = steps * self.dt
        for pair, beg in active.items():
            contacts.append(Contact(beg, final_time, int(pair[0]), int(pair[1])))
        return TemporalNetwork(contacts, nodes=range(n), directed=False)
