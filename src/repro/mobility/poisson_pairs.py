"""Homogeneous Poisson pair meetings with durations.

The continuous-time model of paper Section 3.1.2, extended with contact
durations and an optional activity profile — the simplest useful contact
process, and the stationary reference the heterogeneous community model
is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core.contact import Contact
from ..core.temporal_network import TemporalNetwork
from .base import ActivityProfile, flat_profile
from .duration import DurationModel, Fixed


def sample_nonhomogeneous_times(
    rate: float,
    profile: ActivityProfile,
    horizon: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Event times of a Poisson process with intensity rate * profile(t).

    Piecewise-constant thinning-free sampling: on each constant piece the
    count is Poisson(rate * level * length) with uniform placement.
    """
    if rate < 0:
        raise ValueError("rate cannot be negative")
    times: List[np.ndarray] = []
    for beg, end, level in profile.pieces(0.0, horizon):
        mean = rate * level * (end - beg)
        if mean <= 0:
            continue
        count = int(rng.poisson(mean))
        if count:
            times.append(rng.uniform(beg, end, size=count))
    if not times:
        return np.empty(0)
    return np.sort(np.concatenate(times))


@dataclass(frozen=True)
class PoissonPairProcess:
    """All pairs meet at the same (possibly modulated) Poisson intensity.

    Attributes:
        n: number of devices.
        contact_rate: average contacts per node per unit time, *at
            activity level 1* (the per-pair intensity is rate / (n-1)).
        horizon: trace length (seconds).
        durations: contact-duration model (default: instantaneous).
        profile: activity modulation (default: flat).
    """

    n: int
    contact_rate: float
    horizon: float
    durations: DurationModel = field(default_factory=lambda: Fixed(0.0))
    profile: ActivityProfile = field(default_factory=flat_profile)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("need at least two devices")
        if self.contact_rate <= 0:
            raise ValueError("contact rate must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")

    def expected_contacts(self) -> float:
        """Expected number of contacts in one realisation."""
        pair_rate = self.contact_rate / (self.n - 1)
        num_pairs = self.n * (self.n - 1) / 2
        return pair_rate * num_pairs * self.profile.integral(0.0, self.horizon)

    def generate(self, rng: np.random.Generator) -> TemporalNetwork:
        pair_rate = self.contact_rate / (self.n - 1)
        contacts: List[Contact] = []
        for u in range(self.n):
            for v in range(u + 1, self.n):
                times = sample_nonhomogeneous_times(
                    pair_rate, self.profile, self.horizon, rng
                )
                if len(times) == 0:
                    continue
                durations = self.durations.sample(rng, len(times))
                for t, dur in zip(times, durations):
                    end = min(t + max(float(dur), 0.0), self.horizon)
                    contacts.append(Contact(float(t), end, u, v))
        return TemporalNetwork(contacts, nodes=range(self.n), directed=False)
