"""Contact-process substrate: protocols and time-varying activity profiles.

A *contact process* is anything that can generate a contact trace (a list
of :class:`~repro.core.contact.Contact`) over a time horizon, given a
seeded random generator.  Human mobility is strongly non-stationary
(paper Section 5.2: conference days vs nights, long disconnections in
Hong Kong / Reality Mining), which the processes express through an
*activity profile*: a piecewise-constant multiplicative modulation of the
pairwise meeting intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple

import numpy as np

from ..core.contact import Contact
from ..core.temporal_network import TemporalNetwork

DAY = 86400.0
HOUR = 3600.0


class ContactProcess(Protocol):
    """Anything that can generate a contact trace."""

    def generate(self, rng: np.random.Generator) -> TemporalNetwork:
        """Produce one realisation of the process."""
        ...


@dataclass(frozen=True)
class ActivityProfile:
    """A piecewise-constant, periodically repeating intensity modulation.

    ``levels[i]`` applies on ``[boundaries[i], boundaries[i+1])`` within
    each period; the profile repeats with period ``boundaries[-1]``.
    """

    boundaries: Tuple[float, ...]
    levels: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.levels) + 1:
            raise ValueError("need len(levels) + 1 boundaries")
        if self.boundaries[0] != 0.0:
            raise ValueError("profile must start at 0")
        if any(b >= a for a, b in zip(self.boundaries[1:], self.boundaries[:-1])):
            raise ValueError("boundaries must be strictly increasing")
        if any(level < 0 for level in self.levels):
            raise ValueError("activity levels cannot be negative")

    @property
    def period(self) -> float:
        return self.boundaries[-1]

    def level_at(self, t: float) -> float:
        """The modulation factor at absolute time t."""
        phase = t % self.period
        idx = int(np.searchsorted(self.boundaries, phase, side="right")) - 1
        idx = min(max(idx, 0), len(self.levels) - 1)
        return self.levels[idx]

    @property
    def peak(self) -> float:
        return max(self.levels)

    def mean_level(self) -> float:
        """Time-average modulation over one period."""
        spans = np.diff(self.boundaries)
        return float(np.dot(spans, self.levels) / self.period)

    def integral(self, t0: float, t1: float) -> float:
        """The integral of the modulation over [t0, t1] (level-seconds)."""
        return sum((end - beg) * level for beg, end, level in self.pieces(t0, t1))

    def pieces(self, t0: float, t1: float) -> "List[Tuple[float, float, float]]":
        """The (start, end, level) pieces covering [t0, t1)."""
        if t1 <= t0:
            return []
        pieces = []
        t = t0
        while t < t1:
            cycle = np.floor(t / self.period) * self.period
            phase = t - cycle
            idx = int(np.searchsorted(self.boundaries, phase, side="right")) - 1
            idx = min(max(idx, 0), len(self.levels) - 1)
            piece_end = cycle + self.boundaries[idx + 1]
            end = min(piece_end, t1)
            pieces.append((t, end, self.levels[idx]))
            t = end
        return pieces


def flat_profile() -> ActivityProfile:
    """No modulation (stationary process)."""
    return ActivityProfile(boundaries=(0.0, DAY), levels=(1.0,))


def diurnal_profile(
    day_start: float = 8 * HOUR,
    day_end: float = 20 * HOUR,
    day_level: float = 1.0,
    night_level: float = 0.05,
) -> ActivityProfile:
    """Day/night cycle: active between day_start and day_end, quiet at night."""
    if not 0 <= day_start < day_end <= DAY:
        raise ValueError("need 0 <= day_start < day_end <= 1 day")
    return ActivityProfile(
        boundaries=(0.0, day_start, day_end, DAY),
        levels=(night_level, day_level, night_level),
    )


def conference_profile() -> ActivityProfile:
    """A conference day: sessions, coffee breaks and lunch peaks, dead nights.

    Breaks concentrate the contact bursts the Infocom traces show
    ("nodes in Infocom05 are almost always in a high contact period,
    except at night" — Section 5.2).
    """
    return ActivityProfile(
        boundaries=(
            0.0,
            8.5 * HOUR,   # night / breakfast
            10.5 * HOUR,  # morning session
            11.0 * HOUR,  # coffee break burst
            12.5 * HOUR,  # late-morning session
            14.0 * HOUR,  # lunch burst
            15.5 * HOUR,  # afternoon session
            16.0 * HOUR,  # coffee break burst
            18.0 * HOUR,  # late session
            22.0 * HOUR,  # evening social
            24.0 * HOUR,  # night
        ),
        levels=(0.02, 1.0, 2.5, 1.0, 2.5, 1.0, 2.5, 1.0, 0.8, 0.02),
    )


def weekly_profile(
    weekday_level: float = 1.0, weekend_level: float = 0.3
) -> ActivityProfile:
    """Weekday/weekend cycle (Reality Mining-like), period one week."""
    return ActivityProfile(
        boundaries=(0.0, 5 * DAY, 7 * DAY),
        levels=(weekday_level, weekend_level),
    )


def compose_profiles(a: ActivityProfile, b: ActivityProfile) -> ActivityProfile:
    """Pointwise product of two profiles (e.g. diurnal x weekly).

    The result's period is the larger period, which must be an integer
    multiple of the smaller one.
    """
    long_p, short_p = (a, b) if a.period >= b.period else (b, a)
    ratio = long_p.period / short_p.period
    if abs(ratio - round(ratio)) > 1e-9:
        raise ValueError("profile periods must be integer multiples")
    boundaries = {0.0, long_p.period}
    for k in range(int(round(ratio))):
        offset = k * short_p.period
        boundaries.update(offset + b for b in short_p.boundaries[:-1])
    boundaries.update(long_p.boundaries)
    ordered = sorted(boundaries)
    levels = []
    for lo, hi in zip(ordered[:-1], ordered[1:]):
        mid = (lo + hi) / 2.0
        levels.append(long_p.level_at(mid) * short_p.level_at(mid))
    return ActivityProfile(boundaries=tuple(ordered), levels=tuple(levels))


def make_contacts(
    meetings: "Sequence[Tuple[float, int, int]]",
    durations: "Sequence[float]",
    horizon: float,
) -> List[Contact]:
    """Meeting instants + durations -> contacts clipped to the horizon."""
    contacts = []
    for (t, u, v), duration in zip(meetings, durations):
        end = min(t + max(duration, 0.0), horizon)
        contacts.append(Contact(t, end, u, v))
    return contacts
