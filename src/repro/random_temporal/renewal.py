"""Renewal inter-contact processes (extension of paper Section 3.4).

The random temporal network assumes Bernoulli/Poisson contacts, i.e.
light-tailed inter-contact times; the paper notes that "it is
nevertheless possible to extend all of the results we have obtained so
far to contacts described by a renewal process with general inter-contact
time distribution with finite variance.  We expect this to have a major
impact on the delay of a path, but a relatively small impact on
hop-number."

This module provides that extension empirically: per-pair contact
instants drawn from a renewal process with a pluggable inter-contact
distribution (the first event starts in a stationary phase), a trace
generator, and a Monte Carlo harness comparing delay and hop count of
the delay-optimal path against the exponential baseline at equal mean
rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Tuple

import numpy as np

from ..core.contact import Contact
from ..core.temporal_network import TemporalNetwork


class InterContactModel(Protocol):
    """A positive inter-contact time distribution with finite variance."""

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        ...

    def mean(self) -> float:
        ...


@dataclass(frozen=True)
class ExponentialGaps:
    """The Poisson baseline: exponential inter-contact times."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self.mean_value, size)

    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class LogNormalGaps:
    """Heavier-than-exponential (but finite-variance) inter-contact times.

    Previous measurement work (Chaintreau et al. 2007, Karagiannis et al.
    2007) found inter-contact distributions with power-law bodies; a
    log-normal with sigma ~ 1.5-2 mimics that body while keeping the
    finite variance the paper's extension requires.
    """

    mean_value: float
    sigma: float = 1.5

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("mean must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        mu = math.log(self.mean_value) - self.sigma ** 2 / 2.0
        return rng.lognormal(mu, self.sigma, size)

    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class GammaGaps:
    """More-regular-than-exponential gaps (shape > 1), e.g. periodic-ish
    schedules softened by noise."""

    mean_value: float
    shape: float = 4.0

    def __post_init__(self) -> None:
        if self.mean_value <= 0 or self.shape <= 0:
            raise ValueError("mean and shape must be positive")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.gamma(self.shape, self.mean_value / self.shape, size)

    def mean(self) -> float:
        return self.mean_value


def stationary_residual(
    gaps: InterContactModel, rng: np.random.Generator, batch: int = 256
) -> float:
    """A draw from the stationary residual-life distribution.

    For an observer arriving at a random time, the gap they land in is
    *length-biased* (the waiting-time paradox), and the remaining wait is
    a uniform fraction of it.  Sampled by importance-resampling a batch
    of ordinary gaps with probability proportional to their length.
    Getting this right matters: with heavy-tailed gaps the residual life
    is far longer than a naive ``uniform x gap`` draw, and it is exactly
    this effect that makes heavy inter-contact tails slow down delivery
    (paper Section 3.4).
    """
    sample = gaps.sample(rng, batch)
    total = float(sample.sum())
    if total <= 0:
        return 0.0
    chosen = rng.choice(batch, p=sample / total)
    return float(sample[chosen]) * float(rng.uniform())


def renewal_instants(
    gaps: InterContactModel,
    horizon: float,
    rng: np.random.Generator,
) -> List[float]:
    """Event times of one stationary renewal process on [0, horizon).

    The first event falls after a stationary residual life (length-biased
    gap times a uniform fraction); subsequent gaps are ordinary draws.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    times: List[float] = []
    t = stationary_residual(gaps, rng)
    while t < horizon:
        times.append(t)
        t += float(gaps.sample(rng, 1)[0])
    return times


def renewal_temporal_network(
    n: int,
    contact_rate: float,
    gaps_factory: Callable[[float], InterContactModel],
    horizon: float,
    rng: np.random.Generator,
    contact_duration: float = 0.0,
) -> TemporalNetwork:
    """A temporal network whose pair contacts follow a renewal process.

    ``gaps_factory(mean_gap)`` builds the inter-contact model for the
    per-pair mean gap implied by the target per-node contact rate
    (``mean_gap = (n - 1) / contact_rate``).
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if contact_rate <= 0:
        raise ValueError("contact rate must be positive")
    mean_gap = (n - 1) / contact_rate
    gaps = gaps_factory(mean_gap)
    contacts: List[Contact] = []
    for u in range(n):
        for v in range(u + 1, n):
            for t in renewal_instants(gaps, horizon, rng):
                end = min(t + max(contact_duration, 0.0), horizon)
                contacts.append(Contact(t, end, u, v))
    return TemporalNetwork(contacts, nodes=range(n), directed=False)


def first_passage_renewal(
    n: int,
    contact_rate: float,
    gaps_factory: Callable[[float], InterContactModel],
    horizon: float,
    rng: np.random.Generator,
    source: int = 0,
    destination: int = 1,
) -> "Tuple[Optional[float], Optional[int]]":
    """(delay, hops) of the delay-optimal path in one renewal realisation.

    Uses the exact frontier machinery on the generated trace, so the hop
    count is the minimum over delay-optimal paths, as in Section 3.
    """
    from ..baselines.flooding import flood

    net = renewal_temporal_network(
        n, contact_rate, gaps_factory, horizon, rng
    )
    arrival = flood(net, source, 0.0).get(destination)
    if arrival is None:
        return (None, None)
    for hops in range(1, n + 1):
        bounded = flood(net, source, 0.0, max_hops=hops).get(destination)
        if bounded is not None and bounded <= arrival:
            return (arrival, hops)
    return (arrival, n)  # pragma: no cover - loop always terminates earlier


def compare_gap_models(
    n: int,
    contact_rate: float,
    horizon: float,
    trials: int,
    seed: int = 0,
) -> "dict":
    """Monte Carlo comparison of delay/hops across inter-contact models.

    Returns per-model mean delay and mean hop count of the delay-optimal
    path, at equal per-node contact rate — the quantitative form of the
    paper's "major impact on delay, small impact on hop-number".
    """
    models = {
        "exponential": lambda mean: ExponentialGaps(mean),
        "lognormal(s=1.5)": lambda mean: LogNormalGaps(mean, sigma=1.5),
        "gamma(k=4)": lambda mean: GammaGaps(mean, shape=4.0),
    }
    results = {}
    for index, (name, factory) in enumerate(models.items()):
        rng = np.random.default_rng([seed, index])
        delays: List[float] = []
        hops: List[int] = []
        delivered = 0
        for _ in range(trials):
            delay, hop = first_passage_renewal(
                n, contact_rate, factory, horizon, rng
            )
            if delay is not None:
                delivered += 1
                delays.append(delay)
                hops.append(hop)
        results[name] = {
            "delivered": delivered,
            "mean_delay": float(np.mean(delays)) if delays else math.nan,
            "mean_hops": float(np.mean(hops)) if hops else math.nan,
        }
    return results
