"""Monte Carlo experiments on random temporal networks.

Finite-N validation of the Section 3 analysis.  Both contact-case
semantics are implemented directly on the slot-graph process:

* *short contacts*: a path traverses at most one contact per slot
  (condition (ii') of Section 3.1.3), so hop counts advance by at most one
  per slot along a path;
* *long contacts*: within one slot a path may chain through any number of
  contacts of that slot's graph.

The core quantity is the per-slot dynamic programming on
``minhops[v]`` = the minimum number of hops over paths reaching v by the
current slot.  Its first-hitting slot at the destination is the delay of
the delay-optimal path, the value there is that path's hop count, and
evaluating it at a deadline answers the constrained-reachability question
behind the phase transition (Lemma 1 / Corollary 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .discrete import slot_graphs
from .theory import ContactCase

INF = float("inf")


@dataclass(frozen=True)
class FirstPassage:
    """Outcome of one first-passage trial.

    Attributes:
        delivered: whether the destination was reached within the horizon.
        delay_slots: slots elapsed until delivery (1 = delivered during the
            first slot); None when not delivered.
        hops: hop count of the delay-optimal path; None when not delivered.
    """

    delivered: bool
    delay_slots: Optional[int]
    hops: Optional[int]


def _relax_short(minhops: List[float], edges: Sequence[Tuple[int, int]]) -> None:
    """One-hop-per-slot relaxation: updates read the pre-slot values."""
    updates: List[Tuple[int, float]] = []
    for u, v in edges:
        hu, hv = minhops[u], minhops[v]
        if hu + 1 < hv:
            updates.append((v, hu + 1))
        if hv + 1 < hu:
            updates.append((u, hv + 1))
    for node, hops in updates:
        if hops < minhops[node]:
            minhops[node] = hops


def _relax_long(minhops: List[float], edges: Sequence[Tuple[int, int]]) -> None:
    """Within-slot chaining: relax the slot graph to a fixpoint.

    The slot graph is sparse (about lambda * n / 2 edges), so a simple
    queue-driven relaxation is linear in practice.
    """
    adjacency: Dict[int, List[int]] = {}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    queue = [node for node in adjacency if minhops[node] < INF]
    while queue:
        next_queue = []
        for u in queue:
            base = minhops[u] + 1
            for v in adjacency.get(u, ()):
                if base < minhops[v]:
                    minhops[v] = base
                    next_queue.append(v)
        queue = next_queue


def first_passage(
    n: int,
    contact_rate: float,
    case: ContactCase,
    rng: np.random.Generator,
    max_slots: int,
    source: int = 0,
    destination: int = 1,
) -> FirstPassage:
    """Simulate one realisation until the destination is first reached.

    Returns the delay (in slots) and hop count of the delay-optimal path
    from ``source`` (message ready at time 0) to ``destination``.
    """
    if source == destination:
        raise ValueError("source and destination must differ")
    minhops: List[float] = [INF] * n
    minhops[source] = 0
    relax = _relax_short if case == "short" else _relax_long
    for t, edges in enumerate(slot_graphs(n, contact_rate, max_slots, rng)):
        relax(minhops, edges)
        if minhops[destination] < INF:
            return FirstPassage(True, t + 1, int(minhops[destination]))
    return FirstPassage(False, None, None)


def constrained_reach_trial(
    n: int,
    contact_rate: float,
    case: ContactCase,
    rng: np.random.Generator,
    max_slots: int,
    max_hops: float,
    source: int = 0,
    destination: int = 1,
) -> bool:
    """Whether a path with delay <= max_slots and hops <= max_hops exists."""
    minhops: List[float] = [INF] * n
    minhops[source] = 0
    relax = _relax_short if case == "short" else _relax_long
    for edges in slot_graphs(n, contact_rate, max_slots, rng):
        relax(minhops, edges)
        if minhops[destination] <= max_hops:
            return True
    return minhops[destination] <= max_hops


@dataclass(frozen=True)
class FirstPassageStats:
    """Aggregated Monte Carlo results for one parameter point."""

    n: int
    contact_rate: float
    case: ContactCase
    trials: int
    delivered: int
    mean_delay_slots: float
    mean_hops: float
    #: sample standard deviations (0 when fewer than 2 deliveries)
    std_delay_slots: float
    std_hops: float

    @property
    def delay_over_log_n(self) -> float:
        return self.mean_delay_slots / math.log(self.n)

    @property
    def hops_over_log_n(self) -> float:
        return self.mean_hops / math.log(self.n)


def first_passage_stats(
    n: int,
    contact_rate: float,
    case: ContactCase,
    rng: np.random.Generator,
    trials: int,
    max_slots: Optional[int] = None,
) -> FirstPassageStats:
    """Monte Carlo estimate of delay/hops of the delay-optimal path.

    ``max_slots`` defaults to a generous multiple of the predicted delay
    so that essentially every trial delivers.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    if max_slots is None:
        # 10x the predicted critical delay, at least 50 slots.
        from .theory import expected_delay

        try:
            predicted = expected_delay(n, contact_rate, case)
        except ValueError:
            predicted = 0.0
        max_slots = max(50, int(10 * predicted) + 10)
    delays: List[int] = []
    hops: List[int] = []
    for _ in range(trials):
        result = first_passage(n, contact_rate, case, rng, max_slots)
        if result.delivered:
            delays.append(result.delay_slots)
            hops.append(result.hops)
    delivered = len(delays)
    if delivered == 0:
        return FirstPassageStats(
            n, contact_rate, case, trials, 0, math.nan, math.nan, 0.0, 0.0
        )
    delay_arr = np.asarray(delays, dtype=float)
    hop_arr = np.asarray(hops, dtype=float)
    return FirstPassageStats(
        n=n,
        contact_rate=contact_rate,
        case=case,
        trials=trials,
        delivered=delivered,
        mean_delay_slots=float(delay_arr.mean()),
        mean_hops=float(hop_arr.mean()),
        std_delay_slots=float(delay_arr.std(ddof=1)) if delivered > 1 else 0.0,
        std_hops=float(hop_arr.std(ddof=1)) if delivered > 1 else 0.0,
    )


def reach_probability(
    n: int,
    contact_rate: float,
    tau: float,
    gamma: float,
    case: ContactCase,
    rng: np.random.Generator,
    trials: int,
) -> float:
    """Empirical P[path exists with delay <= tau ln N, hops <= gamma tau ln N].

    The Monte Carlo counterpart of Corollary 1: in the subcritical regime
    this tends to 0 as N grows; in the supercritical regime it tends away
    from 0 (the paper proves the expected path count diverges).
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    log_n = math.log(n)
    max_slots = max(1, int(math.floor(tau * log_n)))
    max_hops = gamma * tau * log_n
    hits = sum(
        constrained_reach_trial(n, contact_rate, case, rng, max_slots, max_hops)
        for _ in range(trials)
    )
    return hits / trials
