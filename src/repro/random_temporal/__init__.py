"""Random temporal networks: the analytical model of paper Section 3.

Closed-form phase-transition analysis (:mod:`.theory`), generators for the
discrete-time slot-graph process (:mod:`.discrete`) and the continuous-time
Poisson pair process (:mod:`.continuous`), and Monte Carlo validation
(:mod:`.simulate`).
"""

from .continuous import (
    as_temporal_network as continuous_temporal_network,
    contact_instants,
    pair_intensity,
)
from .discrete import (
    as_temporal_network as discrete_temporal_network,
    empirical_contact_rate,
    slot_graphs,
)
from .renewal import (
    ExponentialGaps,
    GammaGaps,
    LogNormalGaps,
    compare_gap_models,
    first_passage_renewal,
    renewal_instants,
    renewal_temporal_network,
)
from .simulate import (
    FirstPassage,
    FirstPassageStats,
    constrained_reach_trial,
    first_passage,
    first_passage_stats,
    reach_probability,
)
from .theory import (
    ContactCase,
    PhasePoint,
    boundary_maximum,
    classify,
    critical_tau,
    entropy_g,
    entropy_h,
    expected_delay,
    expected_delay_constant,
    expected_hop_constant,
    expected_hops,
    is_supercritical,
    optimal_gamma,
    phase_boundary,
    supercritical_gamma_interval,
)

__all__ = [
    "ContactCase",
    "ExponentialGaps",
    "FirstPassage",
    "FirstPassageStats",
    "GammaGaps",
    "LogNormalGaps",
    "compare_gap_models",
    "first_passage_renewal",
    "renewal_instants",
    "renewal_temporal_network",
    "PhasePoint",
    "boundary_maximum",
    "classify",
    "constrained_reach_trial",
    "contact_instants",
    "continuous_temporal_network",
    "critical_tau",
    "discrete_temporal_network",
    "empirical_contact_rate",
    "entropy_g",
    "entropy_h",
    "expected_delay",
    "expected_delay_constant",
    "expected_hop_constant",
    "expected_hops",
    "first_passage",
    "first_passage_stats",
    "is_supercritical",
    "optimal_gamma",
    "pair_intensity",
    "phase_boundary",
    "reach_probability",
    "slot_graphs",
    "supercritical_gamma_interval",
]
