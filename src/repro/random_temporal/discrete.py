"""Discrete-time random temporal networks (paper Section 3.1.1).

A sequence of independent uniform random graphs: during each time slot t,
every unordered pair of the N nodes is in contact with probability
p = lambda / N, independently across pairs and slots.  This generalises
the Erdos-Renyi graph to a graph process, and is the object of the paper's
phase-transition analysis.

Two products are offered:

* :func:`slot_graphs` — the raw sequence of per-slot edge sets, which the
  Monte Carlo first-passage simulations consume directly (they need
  short-contact vs long-contact semantics that a flat contact list cannot
  express);
* :func:`as_temporal_network` — the same process flattened to contacts of
  duration one slot, for feeding the trace pipeline (long-contact
  semantics then emerge from the core path machinery, because contacts of
  a slot share the interval [t, t+1]).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..core.contact import Contact
from ..core.temporal_network import TemporalNetwork

Edge = Tuple[int, int]


def _check_params(n: int, contact_rate: float) -> float:
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    if contact_rate <= 0:
        raise ValueError(f"contact rate must be positive, got {contact_rate}")
    p = contact_rate / n
    if p > 1.0:
        raise ValueError(
            f"edge probability lambda/N = {p} exceeds 1; lower the rate or "
            f"raise N"
        )
    return p


def slot_graphs(
    n: int,
    contact_rate: float,
    num_slots: int,
    rng: np.random.Generator,
) -> Iterator[List[Edge]]:
    """Yield the edge list of each slot of the graph process.

    Each slot is G(n, p = contact_rate / n); edges are (i, j) with i < j.
    Sampling draws Binomial(#pairs, p) then chooses that many distinct
    pairs, which is exact and O(edges) per slot instead of O(n^2).
    """
    p = _check_params(n, contact_rate)
    num_pairs = n * (n - 1) // 2
    for _ in range(num_slots):
        count = int(rng.binomial(num_pairs, p))
        if count == 0:
            yield []
            continue
        codes = rng.choice(num_pairs, size=count, replace=False)
        edges: List[Edge] = []
        for code in codes:
            # Unrank pair code in row-major upper-triangular order.
            i = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * code)) // 2)
            offset = code - (i * (2 * n - i - 1)) // 2
            j = int(i + 1 + offset)
            edges.append((i, j))
        yield edges


def as_temporal_network(
    n: int,
    contact_rate: float,
    num_slots: int,
    rng: np.random.Generator,
    slot_duration: float = 1.0,
) -> TemporalNetwork:
    """The graph process flattened to a contact trace.

    A contact in slot t spans ``[t, t + 1) * slot_duration``; contacts of
    the same slot therefore overlap, which gives the long-contact
    semantics of Section 3.1.3 when analysed by the core machinery.
    """
    contacts = []
    for t, edges in enumerate(slot_graphs(n, contact_rate, num_slots, rng)):
        beg = t * slot_duration
        end = (t + 1) * slot_duration
        for u, v in edges:
            contacts.append(Contact(beg, end, u, v))
    return TemporalNetwork(contacts, nodes=range(n), directed=False)


def empirical_contact_rate(net: TemporalNetwork, num_slots: int) -> float:
    """Average contacts per node per slot — the lambda the trace realises."""
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    n = len(net)
    if n == 0:
        return 0.0
    return 2.0 * net.num_contacts / (n * num_slots)
