"""Continuous-time random temporal networks (paper Section 3.1.2).

For every unordered pair of nodes, contact instants form an independent
Poisson process; the per-pair intensity is chosen so that each node makes
``contact_rate`` contacts per unit of time on average, i.e.
``pair_rate = contact_rate / (n - 1)``.  Contacts have negligible duration
in the model; for feeding the trace pipeline a (small) duration can be
attached to each contact instant.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..core.contact import Contact
from ..core.temporal_network import TemporalNetwork


def pair_intensity(n: int, contact_rate: float) -> float:
    """Per-pair Poisson intensity giving each node ``contact_rate`` contacts
    per unit time: ``contact_rate / (n - 1)`` (each node has n-1 pairs)."""
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    if contact_rate <= 0:
        raise ValueError(f"contact rate must be positive, got {contact_rate}")
    return contact_rate / (n - 1)


def contact_instants(
    n: int,
    contact_rate: float,
    horizon: float,
    rng: np.random.Generator,
) -> Iterator[Tuple[float, int, int]]:
    """Yield (time, u, v) contact instants over [0, horizon), time-sorted.

    Implemented as a single merged Poisson process of intensity
    ``num_pairs * pair_rate`` whose marks are uniform pairs — exactly
    equivalent to independent per-pair processes, and O(total contacts).
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    rate = pair_intensity(n, contact_rate)
    num_pairs = n * (n - 1) // 2
    total_rate = rate * num_pairs
    count = int(rng.poisson(total_rate * horizon))
    times = np.sort(rng.uniform(0.0, horizon, size=count))
    codes = rng.integers(0, num_pairs, size=count)
    for t, code in zip(times, codes):
        i = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * int(code))) // 2)
        offset = int(code) - (i * (2 * n - i - 1)) // 2
        yield (float(t), i, int(i + 1 + offset))


def as_temporal_network(
    n: int,
    contact_rate: float,
    horizon: float,
    rng: np.random.Generator,
    contact_duration: float = 0.0,
) -> TemporalNetwork:
    """A Poisson pair-process trace with fixed per-contact duration.

    ``contact_duration = 0`` gives the paper's negligible-duration model
    (contacts are single instants; multi-hop exchange within one instant
    is still possible through the long-contact path semantics when two
    instants coincide, which happens with probability zero).
    """
    if contact_duration < 0:
        raise ValueError("contact duration cannot be negative")
    contacts: List[Contact] = [
        Contact(t, min(t + contact_duration, horizon), u, v)
        for t, u, v in contact_instants(n, contact_rate, horizon, rng)
    ]
    return TemporalNetwork(contacts, nodes=range(n), directed=False)
