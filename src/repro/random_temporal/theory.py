"""Closed-form analysis of random temporal networks (paper Section 3).

The model: N nodes; during each time slot every (unordered) pair is in
contact independently with probability p = lambda / N, so each node makes
lambda contacts per slot on average.  Paths bounded by ``t_N = tau ln N``
slots and ``k_N = gamma tau ln N`` hops exist (in expectation, many) or do
not exist (almost surely) according to a phase transition:

* short contacts (one contact per slot along a path):
    supercritical  iff  1/tau < gamma ln(lambda) + h(gamma),
    h(x) = -x ln x - (1 - x) ln(1 - x)            (Lemma 1 / Corollary 1);
* long contacts (a whole connected chain can be crossed within one slot):
    supercritical  iff  1/tau < gamma ln(lambda) + g(gamma),
    g(x) = (1 + x) ln(1 + x) - x ln x.

Maximising the right-hand side over gamma yields the critical delay
constant and the hop count of the delay-optimal path:

* short: max M = ln(1 + lambda) at gamma* = lambda / (1 + lambda);
* long, lambda < 1: M = -ln(1 - lambda) at gamma* = lambda / (1 - lambda);
* long, lambda > 1: the boundary is unbounded (the slot graph has a giant
  component), paths exist for any tau > 0, with k ~ ln N / ln lambda.

All functions here are pure and vectorised-friendly (accept floats).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

ContactCase = Literal["short", "long"]

_CASES = ("short", "long")


def entropy_h(x: float) -> float:
    """Binary entropy ``h(x) = -x ln x - (1-x) ln(1-x)`` on [0, 1].

    Appears in the short-contact path count: choosing which of the
    ``t_N`` slots carry the ``k_N = gamma t_N`` hops contributes
    ``binom(t_N, k_N) ~ exp(t_N h(gamma))`` combinations.
    """
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"h is defined on [0, 1], got {x}")
    if x in (0.0, 1.0):
        return 0.0
    return -x * math.log(x) - (1.0 - x) * math.log(1.0 - x)


def entropy_g(x: float) -> float:
    """``g(x) = (1+x) ln(1+x) - x ln x`` on [0, inf).

    The long-contact analogue of :func:`entropy_h`: hops may share slots,
    so the combinatorial factor counts weak compositions,
    ``binom(t_N + k_N, k_N) ~ exp(t_N g(gamma))``.
    """
    if x < 0.0:
        raise ValueError(f"g is defined on [0, inf), got {x}")
    if x == 0.0:
        return 0.0
    return (1.0 + x) * math.log(1.0 + x) - x * math.log(x)


def _check_case(case: str) -> None:
    if case not in _CASES:
        raise ValueError(f"contact case must be one of {_CASES}, got {case!r}")


def _check_lambda(contact_rate: float) -> None:
    if contact_rate <= 0.0:
        raise ValueError(f"contact rate must be positive, got {contact_rate}")


def phase_boundary(gamma: float, contact_rate: float, case: ContactCase) -> float:
    """The exponent function ``gamma ln(lambda) + h_or_g(gamma)``.

    Paths with delay ``tau ln N`` and ``gamma tau ln N`` hops exist iff
    ``1 / tau`` is below this value (Corollary 1).
    """
    _check_case(case)
    _check_lambda(contact_rate)
    entropy = entropy_h(gamma) if case == "short" else entropy_g(gamma)
    return gamma * math.log(contact_rate) + entropy


def is_supercritical(
    tau: float, gamma: float, contact_rate: float, case: ContactCase
) -> bool:
    """Whether the constraint pair (tau, gamma) admits paths (many of them).

    True when ``1/tau < gamma ln(lambda) + h_or_g(gamma)``: the expected
    number of constrained paths diverges with N.  False in the subcritical
    regime where almost surely no such path exists.
    """
    if tau <= 0.0:
        raise ValueError(f"tau must be positive, got {tau}")
    return 1.0 / tau < phase_boundary(gamma, contact_rate, case)


def optimal_gamma(contact_rate: float, case: ContactCase) -> float:
    """The arg-max of the phase boundary: hops-per-slot of optimal paths.

    * short: ``lambda / (1 + lambda)`` — at most one hop per slot, so < 1;
    * long, lambda < 1: ``lambda / (1 - lambda)``;
    * long, lambda >= 1: the boundary increases without bound (ValueError).
    """
    _check_case(case)
    _check_lambda(contact_rate)
    if case == "short":
        return contact_rate / (1.0 + contact_rate)
    if contact_rate >= 1.0:
        raise ValueError(
            "long-contact boundary is unbounded for lambda >= 1 "
            "(the slot graph percolates); no finite optimal gamma"
        )
    return contact_rate / (1.0 - contact_rate)


def boundary_maximum(contact_rate: float, case: ContactCase) -> float:
    """``M``, the maximum of the phase boundary over gamma.

    ``M = ln(1 + lambda)`` (short) or ``-ln(1 - lambda)`` (long, lambda<1);
    infinite in the long case with lambda >= 1.
    """
    _check_case(case)
    _check_lambda(contact_rate)
    if case == "short":
        return math.log1p(contact_rate)
    if contact_rate >= 1.0:
        return math.inf
    return -math.log1p(-contact_rate)


def critical_tau(contact_rate: float, case: ContactCase) -> float:
    """Smallest delay constant tau for which paths exist: ``1 / M``.

    Below ``tau ln N`` with ``tau < 1/M``, almost surely no path satisfies
    the constraints; above, the expected number of paths diverges.  Zero in
    the long case with lambda >= 1 (paths exist at any time scale).
    """
    maximum = boundary_maximum(contact_rate, case)
    if math.isinf(maximum):
        return 0.0
    return 1.0 / maximum


def expected_delay_constant(contact_rate: float, case: ContactCase) -> float:
    """Delay of the delay-optimal path, as a multiple of ln N.

    The heuristic of Section 3.2.2: the delay-optimal path appears at the
    critical tau, so ``t ~ ln N / ln(1 + lambda)`` (short) or
    ``ln N / (-ln(1 - lambda))`` (long, lambda < 1).  For the long case
    with lambda >= 1 the network is essentially connected and the constant
    is 0.
    """
    return critical_tau(contact_rate, case)


def expected_hop_constant(contact_rate: float, case: ContactCase) -> float:
    """Hop count of the delay-optimal path, as a multiple of ln N.

    ``k ~ gamma* tau* ln N``:

    * short: ``lambda / ((1 + lambda) ln(1 + lambda))``;
    * long, lambda < 1: ``lambda / ((1 - lambda) (-ln(1 - lambda)))``;
    * long, lambda > 1: ``1 / ln(lambda)`` (from the asymptote of g);
    * long, lambda = 1: the singular point — +inf (paper Figure 3 shows
      the divergence at lambda = 1).

    As lambda -> 0 both cases converge to 1: the hop count of the
    delay-optimal path is insensitive to the contact rate (Section 3.3).
    """
    _check_case(case)
    _check_lambda(contact_rate)
    if case == "short":
        return contact_rate / ((1.0 + contact_rate) * math.log1p(contact_rate))
    if contact_rate < 1.0:
        return contact_rate / ((1.0 - contact_rate) * -math.log1p(-contact_rate))
    if contact_rate == 1.0:
        return math.inf
    return 1.0 / math.log(contact_rate)


def expected_delay(n: int, contact_rate: float, case: ContactCase) -> float:
    """Predicted delay (in slots) of the delay-optimal path at size N."""
    if n < 2:
        raise ValueError("need at least two nodes")
    return expected_delay_constant(contact_rate, case) * math.log(n)


def expected_hops(n: int, contact_rate: float, case: ContactCase) -> float:
    """Predicted hop count of the delay-optimal path at size N."""
    if n < 2:
        raise ValueError("need at least two nodes")
    return expected_hop_constant(contact_rate, case) * math.log(n)


@dataclass(frozen=True)
class PhasePoint:
    """A classified (tau, gamma) constraint point (for sweep tables)."""

    tau: float
    gamma: float
    contact_rate: float
    case: ContactCase
    boundary: float
    supercritical: bool


def classify(
    tau: float, gamma: float, contact_rate: float, case: ContactCase
) -> PhasePoint:
    """Bundle the boundary value and the regime of a constraint point."""
    boundary = phase_boundary(gamma, contact_rate, case)
    return PhasePoint(
        tau=tau,
        gamma=gamma,
        contact_rate=contact_rate,
        case=case,
        boundary=boundary,
        supercritical=(1.0 / tau < boundary),
    )


def supercritical_gamma_interval(
    tau: float, contact_rate: float, case: ContactCase, tol: float = 1e-12
) -> "tuple[float, float] | None":
    """The interval [gamma_1, gamma_2] where (tau, gamma) is supercritical.

    Section 3.2.2: for ``tau > 1/M`` the supercritical condition holds on
    an interval of gamma values containing gamma*.  Found by bisection on
    each side of gamma*; None when tau is below the critical value.
    For the long case with lambda >= 1 the interval is unbounded above and
    the returned upper end is +inf.
    """
    _check_case(case)
    _check_lambda(contact_rate)
    target = 1.0 / tau

    def above(gamma: float) -> bool:
        return phase_boundary(gamma, contact_rate, case) > target

    if case == "long" and contact_rate >= 1.0:
        # Boundary is increasing in gamma and unbounded: a single crossing.
        lo, hi = tol, 1.0
        while not above(hi):
            hi *= 2.0
            if hi > 1e9:  # pragma: no cover - defensive
                return None
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if above(mid):
                hi = mid
            else:
                lo = mid
        return (hi, math.inf)

    peak = optimal_gamma(contact_rate, case)
    if boundary_maximum(contact_rate, case) <= target:
        return None
    upper_limit = 1.0 if case == "short" else peak * 8.0 + 8.0

    def bisect(lo: float, hi: float, want_above_at_lo: bool) -> float:
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if above(mid) == want_above_at_lo:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    gamma_low = bisect(tol, peak, want_above_at_lo=False)
    gamma_high = bisect(peak, upper_limit, want_above_at_lo=True)
    return (gamma_low, gamma_high)
