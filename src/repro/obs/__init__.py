"""Observability: metrics, span tracing and run manifests.

This package gives the whole pipeline — trace synthesis/ingestion, the
optimal-path dynamic programming, the flooding baselines, the forwarding
simulator, and the benchmark harness — a shared instrumentation layer:

* :mod:`repro.obs.metrics` — counters, gauges, histograms and timers in
  a mergeable registry, with an allocation-free no-op mode;
* :mod:`repro.obs.spans` — nested wall/CPU-timed spans exported as
  JSON Lines;
* :mod:`repro.obs.manifest` — a run-provenance document (seed, dataset,
  scale, versions, git SHA, peak RSS, total runtime);
* :mod:`repro.obs.runtime` — the session switch: a disabled-by-default
  active bundle, enabled via :func:`observed`;
* :mod:`repro.obs.tracectx` — request-scoped trace contexts
  (W3C-traceparent ids) that stitch spans recorded in different threads
  and processes into one trace;
* :mod:`repro.obs.tracestore` — the ring-buffered store of reassembled
  traces behind the service's ``GET /debug/traces`` endpoints, with
  ``repro.trace/1`` JSONL export and validation;
* :mod:`repro.obs.log` — structured JSONL logging with correlation ids
  (replaces ad-hoc stderr prints in the CLI and the service);
* :mod:`repro.obs.lockwatch` — a test-time watchdog wrapping the
  ``threading`` lock factories to observe lock ordering and hold times,
  with ``repro.lockwatch/1`` JSONL export (the runtime twin of the
  REP006–REP008 static rules).

Typical use::

    from repro import obs

    with obs.observed(seed=1, dataset="infocom05", scale=0.15) as run:
        net = traces.datasets.build("infocom05", seed=1, scale=0.15)
        profiles = core.compute_profiles(net)
    run.metrics.write("metrics.json")
    run.tracer.write("spans.jsonl")
    run.manifest.write("manifest.json")

When nothing is activated, every instrumented call site sees the shared
:data:`NULL_OBS` bundle and skips its bookkeeping — the hot loops run at
uninstrumented speed.
"""

from .lockwatch import (
    LOCKWATCH_SCHEMA,
    LockWatch,
    LockWatchError,
    validate_lockwatch_jsonl,
)
from .log import StructuredLogger, configure as configure_logging, get_logger
from .manifest import RunManifest
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
)
from .runtime import (
    NULL_OBS,
    Instrumentation,
    get_obs,
    observed,
    set_obs,
)
from .spans import NullTracer, Span, SpanTracer
from .tracectx import TraceContext, bind_records, derive_span_id, now_unix
from .tracestore import TRACE_SCHEMA, TraceStore, validate_trace_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "LOCKWATCH_SCHEMA",
    "LockWatch",
    "LockWatchError",
    "MetricsRegistry",
    "NULL_OBS",
    "NullRegistry",
    "NullTracer",
    "RunManifest",
    "Span",
    "SpanTracer",
    "StructuredLogger",
    "TRACE_SCHEMA",
    "Timer",
    "TraceContext",
    "TraceStore",
    "bind_records",
    "configure_logging",
    "derive_span_id",
    "get_logger",
    "get_obs",
    "now_unix",
    "observed",
    "set_obs",
    "validate_lockwatch_jsonl",
    "validate_trace_jsonl",
]
