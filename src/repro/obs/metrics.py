"""Lightweight metrics: counters, gauges, histograms and timers.

The registry is deliberately tiny — a dictionary of named instruments with
a JSON-friendly snapshot — because it sits next to the hottest loops of
the repository (the frontier dynamic programming, the flooding sweeps).
Two design rules follow:

* **No-op mode costs nothing.**  :class:`NullRegistry` hands out shared
  immutable singletons whose mutating methods are empty; callers can hold
  a counter reference and ``inc()`` it unconditionally without ever
  allocating or recording.  Hot paths additionally check
  ``registry.enabled`` once and skip their bookkeeping entirely.
* **Instruments merge.**  Per-source / per-worker measurements are
  accumulated locally and folded into the session registry afterwards
  (:meth:`MetricsRegistry.merge`), so instrumentation never adds
  synchronisation to parallel code.

Labels: every instrument accessor accepts keyword labels
(``registry.counter("optimal.frontier_insertions", hop=3)``); each label
combination is a distinct instrument, rendered in snapshots as
``name{hop=3}`` — the per-hop-bound counters of the profile DP use this.
Label values containing the structural characters ``, = { } " \\`` are
rendered double-quoted with ``\\``-escaping, so distinct label sets can
never collide into one snapshot key.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]

#: characters in a label value that would make `k=v,k2=v2` ambiguous.
_NEEDS_QUOTING = frozenset('\\,={}"')


def _key(name: str, labels: Dict[str, object]) -> _Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _render_value(value: str) -> str:
    if not _NEEDS_QUOTING.intersection(value):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _render(key: _Key) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={_render_value(v)}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _prometheus_value(value: str) -> str:
    escaped = (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )
    return f'"{escaped}"'


def _render_prometheus(key: _Key, suffix: str = "") -> str:
    """Render a key in Prometheus exposition syntax.

    Metric names swap the registry's dotted convention for underscores
    (``profiles.cache.hit`` -> ``profiles_cache_hit``) and label values
    are always double-quoted with ``\\``/``"``/newline escaping, per the
    text format.
    """
    name, labels = key
    name = name.replace(".", "_").replace("-", "_") + suffix
    if not labels:
        return name
    inner = ",".join(f"{k}={_prometheus_value(v)}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        if other.value is not None:
            self.value = other.value

    def snapshot(self) -> Optional[float]:
        return self.value


class Histogram:
    """Summary statistics (count/sum/min/max) of observed values.

    Full value retention would be unbounded on long runs; count, sum and
    extrema are enough for the throughput/latency shapes the benchmarks
    report, and they merge exactly.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def merge(self, other: "Histogram") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum
        ):
            self.maximum = other.maximum

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def snapshot(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class Timer:
    """A histogram of wall durations plus the matching CPU total.

    Use as a context manager (``with registry.timer("load"):``); nested
    uses accumulate independently.
    """

    __slots__ = ("wall", "cpu_total", "_wall0", "_cpu0")

    def __init__(self) -> None:
        self.wall = Histogram()
        self.cpu_total = 0.0
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "Timer":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc: object) -> None:
        self.wall.observe(time.perf_counter() - self._wall0)
        self.cpu_total += time.process_time() - self._cpu0

    def record(self, wall_seconds: float, cpu_seconds: float = 0.0) -> None:
        self.wall.observe(wall_seconds)
        self.cpu_total += cpu_seconds

    def merge(self, other: "Timer") -> None:
        self.wall.merge(other.wall)
        self.cpu_total += other.cpu_total

    def snapshot(self) -> Dict[str, Optional[float]]:
        snap = {f"wall_{k}": v for k, v in self.wall.snapshot().items()}
        snap["cpu_sum"] = self.cpu_total
        return snap


class MetricsRegistry:
    """A named collection of instruments with a JSON snapshot."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[_Key, Counter] = {}
        self._gauges: Dict[_Key, Gauge] = {}
        self._histograms: Dict[_Key, Histogram] = {}
        self._timers: Dict[_Key, Timer] = {}

    # -- accessors (create on first use) -------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def timer(self, name: str, **labels: object) -> Timer:
        key = _key(name, labels)
        instrument = self._timers.get(key)
        if instrument is None:
            instrument = self._timers[key] = Timer()
        return instrument

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        for key, counter in other._counters.items():
            self.counter(key[0], **dict(key[1])).merge(counter)
        for key, gauge in other._gauges.items():
            self.gauge(key[0], **dict(key[1])).merge(gauge)
        for key, histogram in other._histograms.items():
            self.histogram(key[0], **dict(key[1])).merge(histogram)
        for key, timer in other._timers.items():
            self.timer(key[0], **dict(key[1])).merge(timer)

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """A JSON-serialisable snapshot of every instrument."""
        return {
            "counters": {
                _render(k): c.snapshot() for k, c in sorted(self._counters.items())
            },
            "gauges": {
                _render(k): g.snapshot() for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                _render(k): h.snapshot() for k, h in sorted(self._histograms.items())
            },
            "timers": {
                _render(k): t.snapshot() for k, t in sorted(self._timers.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        """The registry in Prometheus text exposition format.

        Counters and gauges render one sample each; histograms render
        ``_count``/``_sum``/``_min``/``_max`` samples and timers the
        same over their wall histogram plus ``_cpu_sum``.  Unset gauges
        and empty histograms are omitted (no sample to report), so the
        output is scrape-ready for ``GET /metrics``.
        """
        lines: list[str] = []
        for key, counter in sorted(self._counters.items()):
            lines.append(f"{_render_prometheus(key)} {counter.value}")
        for key, gauge in sorted(self._gauges.items()):
            if gauge.value is not None:
                lines.append(f"{_render_prometheus(key)} {gauge.value}")
        for key, histogram in sorted(self._histograms.items()):
            lines.extend(self._histogram_samples(key, histogram, ""))
        for key, timer in sorted(self._timers.items()):
            lines.extend(self._histogram_samples(key, timer.wall, "_wall"))
            lines.append(
                f"{_render_prometheus(key, '_cpu_sum')} {timer.cpu_total}"
            )
        return "\n".join(lines) + "\n" if lines else ""

    @staticmethod
    def _histogram_samples(
        key: _Key, histogram: "Histogram", prefix: str
    ) -> "list[str]":
        samples = [
            f"{_render_prometheus(key, prefix + '_count')} {histogram.count}",
            f"{_render_prometheus(key, prefix + '_sum')} {histogram.total}",
        ]
        if histogram.minimum is not None:
            samples.append(
                f"{_render_prometheus(key, prefix + '_min')} {histogram.minimum}"
            )
        if histogram.maximum is not None:
            samples.append(
                f"{_render_prometheus(key, prefix + '_max')} {histogram.maximum}"
            )
        return samples

    def write(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json())
            stream.write("\n")

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
            + len(self._timers)
        )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, *exc: object) -> None:
        pass

    def record(self, wall_seconds: float, cpu_seconds: float = 0.0) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer()


class NullRegistry(MetricsRegistry):
    """The disabled registry: shared inert singletons, no allocation.

    Every accessor returns the same pre-built instrument regardless of
    name or labels, and those instruments ignore all mutation — holding
    one on a hot path is free, and ``registry.enabled`` lets the path
    skip its measurement code altogether.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: object) -> Histogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str, **labels: object) -> Timer:
        return _NULL_TIMER

    def merge(self, other: MetricsRegistry) -> None:
        pass
