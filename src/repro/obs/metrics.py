"""Lightweight metrics: counters, gauges, histograms and timers.

The registry is deliberately tiny — a dictionary of named instruments with
a JSON-friendly snapshot — because it sits next to the hottest loops of
the repository (the frontier dynamic programming, the flooding sweeps).
Three design rules follow:

* **No-op mode costs nothing.**  :class:`NullRegistry` hands out shared
  immutable singletons whose mutating methods are empty; callers can hold
  a counter reference and ``inc()`` it unconditionally without ever
  allocating, recording, or locking.  Hot paths additionally check
  ``registry.enabled`` once and skip their bookkeeping entirely.
* **Instruments merge.**  Per-source / per-worker measurements are
  accumulated locally and folded into the session registry afterwards
  (:meth:`MetricsRegistry.merge`); worker registries ride the result
  envelope across the process boundary, so every instrument pickles
  (locks are dropped on the way out and recreated on the way in).
* **Enabled instruments are thread-safe.**  The service's HTTP threads
  and the pool supervisor share one registry, and ``+=`` on a plain
  attribute loses updates under that contention; every mutation and
  snapshot goes through a per-instrument lock (``# guarded-by: _lock``,
  reprolint REP006), and a :class:`Timer` keeps its start stamps in
  thread-local storage so concurrent ``with`` blocks on one shared timer
  cannot corrupt each other.

Labels: every instrument accessor accepts keyword labels
(``registry.counter("optimal.frontier_insertions", hop=3)``); each label
combination is a distinct instrument, rendered in snapshots as
``name{hop=3}`` — the per-hop-bound counters of the profile DP use this.
Label values containing the structural characters ``, = { } " \\`` are
rendered double-quoted with ``\\``-escaping, so distinct label sets can
never collide into one snapshot key.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]

#: characters in a label value that would make `k=v,k2=v2` ambiguous.
_NEEDS_QUOTING = frozenset('\\,={}"')


def _key(name: str, labels: Dict[str, object]) -> _Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _render_value(value: str) -> str:
    if not _NEEDS_QUOTING.intersection(value):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _render(key: _Key) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={_render_value(v)}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _prometheus_value(value: str) -> str:
    escaped = (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )
    return f'"{escaped}"'


def _render_prometheus(key: _Key, suffix: str = "") -> str:
    """Render a key in Prometheus exposition syntax.

    Metric names swap the registry's dotted convention for underscores
    (``profiles.cache.hit`` -> ``profiles_cache_hit``) and label values
    are always double-quoted with ``\\``/``"``/newline escaping, per the
    text format.
    """
    name, labels = key
    name = name.replace(".", "_").replace("-", "_") + suffix
    if not labels:
        return name
    inner = ",".join(f"{k}={_prometheus_value(v)}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def merge(self, other: "Counter") -> None:
        self.inc(other.snapshot())

    def snapshot(self) -> int:
        with self._lock:
            return self.value

    def __getstate__(self) -> int:
        return self.snapshot()

    def __setstate__(self, state: int) -> None:
        self.value = state
        self._lock = threading.Lock()


class Gauge:
    """A last-write-wins instantaneous value (thread-safe)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value: Optional[float] = None  # guarded-by: _lock
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def merge(self, other: "Gauge") -> None:
        value = other.snapshot()
        if value is not None:
            self.set(value)

    def snapshot(self) -> Optional[float]:
        with self._lock:
            return self.value

    def __getstate__(self) -> Optional[float]:
        return self.snapshot()

    def __setstate__(self, state: Optional[float]) -> None:
        self.value = state
        self._lock = threading.Lock()


class Histogram:
    """Summary statistics (count/sum/min/max) of observed values.

    Full value retention would be unbounded on long runs; count, sum and
    extrema are enough for the throughput/latency shapes the benchmarks
    report, and they merge exactly.  Mutation and snapshotting are
    thread-safe; ``merge`` snapshots the source first so two instrument
    locks are never held at once.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_lock")

    def __init__(self) -> None:
        self.count = 0  # guarded-by: _lock
        self.total = 0.0  # guarded-by: _lock
        self.minimum: Optional[float] = None  # guarded-by: _lock
        self.maximum: Optional[float] = None  # guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def _values(self) -> Tuple[int, float, Optional[float], Optional[float]]:
        with self._lock:
            return (self.count, self.total, self.minimum, self.maximum)

    def merge(self, other: "Histogram") -> None:
        count, total, minimum, maximum = other._values()
        if count == 0:
            return
        with self._lock:
            self.count += count
            self.total += total
            if minimum is not None and (
                self.minimum is None or minimum < self.minimum
            ):
                self.minimum = minimum
            if maximum is not None and (
                self.maximum is None or maximum > self.maximum
            ):
                self.maximum = maximum

    @property
    def mean(self) -> Optional[float]:
        count, total, _, _ = self._values()
        return total / count if count else None

    def snapshot(self) -> Dict[str, Optional[float]]:
        count, total, minimum, maximum = self._values()
        return {
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
            "mean": total / count if count else None,
        }

    def __getstate__(
        self,
    ) -> Tuple[int, float, Optional[float], Optional[float]]:
        return self._values()

    def __setstate__(
        self, state: Tuple[int, float, Optional[float], Optional[float]]
    ) -> None:
        self.count, self.total, self.minimum, self.maximum = state
        self._lock = threading.Lock()


class Timer:
    """A histogram of wall durations plus the matching CPU total.

    Use as a context manager (``with registry.timer("load"):``).  The
    start stamps live in thread-local storage: the service binds one
    shared latency timer per endpoint, and concurrent requests entering
    the same instrument must not clobber each other's ``t0`` (a real
    race lockwatch surfaced — shared-attribute stamps made overlapping
    requests report each other's latencies).
    """

    __slots__ = ("wall", "cpu_total", "_lock", "_starts")

    def __init__(self) -> None:
        self.wall = Histogram()
        self.cpu_total = 0.0  # guarded-by: _lock
        self._lock = threading.Lock()
        self._starts = threading.local()

    def __enter__(self) -> "Timer":
        self._starts.wall0 = time.perf_counter()
        self._starts.cpu0 = time.process_time()
        return self

    def __exit__(self, *exc: object) -> None:
        self.record(
            time.perf_counter() - self._starts.wall0,
            time.process_time() - self._starts.cpu0,
        )

    def record(self, wall_seconds: float, cpu_seconds: float = 0.0) -> None:
        self.wall.observe(wall_seconds)
        with self._lock:
            self.cpu_total += cpu_seconds

    def cpu_snapshot(self) -> float:
        with self._lock:
            return self.cpu_total

    def merge(self, other: "Timer") -> None:
        self.wall.merge(other.wall)
        cpu = other.cpu_snapshot()
        with self._lock:
            self.cpu_total += cpu

    def snapshot(self) -> Dict[str, Optional[float]]:
        snap = {f"wall_{k}": v for k, v in self.wall.snapshot().items()}
        snap["cpu_sum"] = self.cpu_snapshot()
        return snap

    def __getstate__(self) -> Tuple[Histogram, float]:
        return (self.wall, self.cpu_snapshot())

    def __setstate__(self, state: Tuple[Histogram, float]) -> None:
        self.wall, self.cpu_total = state
        self._lock = threading.Lock()
        self._starts = threading.local()


class MetricsRegistry:
    """A named collection of instruments with a JSON snapshot.

    Accessor lookups and the instrument dicts are guarded by the
    registry lock; snapshots (``to_dict``/``render_text``) copy the item
    lists under it and then read each instrument through its own lock,
    so no two locks are ever held together.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[_Key, Counter] = {}  # guarded-by: _lock
        self._gauges: Dict[_Key, Gauge] = {}  # guarded-by: _lock
        self._histograms: Dict[_Key, Histogram] = {}  # guarded-by: _lock
        self._timers: Dict[_Key, Timer] = {}  # guarded-by: _lock

    # -- accessors (create on first use) -------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = _key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = _key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram()
        return instrument

    def timer(self, name: str, **labels: object) -> Timer:
        key = _key(name, labels)
        with self._lock:
            instrument = self._timers.get(key)
            if instrument is None:
                instrument = self._timers[key] = Timer()
        return instrument

    def _instrument_items(
        self,
    ) -> Tuple[
        List[Tuple[_Key, Counter]],
        List[Tuple[_Key, Gauge]],
        List[Tuple[_Key, Histogram]],
        List[Tuple[_Key, Timer]],
    ]:
        """Stable item lists of every instrument dict."""
        with self._lock:
            return (
                list(self._counters.items()),
                list(self._gauges.items()),
                list(self._histograms.items()),
                list(self._timers.items()),
            )

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        counters, gauges, histograms, timers = other._instrument_items()
        for key, counter in counters:
            self.counter(key[0], **dict(key[1])).merge(counter)
        for key, gauge in gauges:
            self.gauge(key[0], **dict(key[1])).merge(gauge)
        for key, histogram in histograms:
            self.histogram(key[0], **dict(key[1])).merge(histogram)
        for key, timer in timers:
            self.timer(key[0], **dict(key[1])).merge(timer)

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """A JSON-serialisable snapshot of every instrument."""
        counters, gauges, histograms, timers = self._instrument_items()
        return {
            "counters": {_render(k): c.snapshot() for k, c in sorted(counters)},
            "gauges": {_render(k): g.snapshot() for k, g in sorted(gauges)},
            "histograms": {
                _render(k): h.snapshot() for k, h in sorted(histograms)
            },
            "timers": {_render(k): t.snapshot() for k, t in sorted(timers)},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        """The registry in Prometheus text exposition format.

        Counters and gauges render one sample each; histograms render
        ``_count``/``_sum``/``_min``/``_max`` samples and timers the
        same over their wall histogram plus ``_cpu_sum``.  Unset gauges
        and empty histograms are omitted (no sample to report), so the
        output is scrape-ready for ``GET /metrics``.
        """
        counters, gauges, histograms, timers = self._instrument_items()
        lines: list[str] = []
        for key, counter in sorted(counters):
            lines.append(f"{_render_prometheus(key)} {counter.snapshot()}")
        for key, gauge in sorted(gauges):
            value = gauge.snapshot()
            if value is not None:
                lines.append(f"{_render_prometheus(key)} {value}")
        for key, histogram in sorted(histograms):
            lines.extend(self._histogram_samples(key, histogram, ""))
        for key, timer in sorted(timers):
            lines.extend(self._histogram_samples(key, timer.wall, "_wall"))
            lines.append(
                f"{_render_prometheus(key, '_cpu_sum')} {timer.cpu_snapshot()}"
            )
        return "\n".join(lines) + "\n" if lines else ""

    @staticmethod
    def _histogram_samples(
        key: _Key, histogram: "Histogram", prefix: str
    ) -> "list[str]":
        count, total, minimum, maximum = histogram._values()
        samples = [
            f"{_render_prometheus(key, prefix + '_count')} {count}",
            f"{_render_prometheus(key, prefix + '_sum')} {total}",
        ]
        if minimum is not None:
            samples.append(
                f"{_render_prometheus(key, prefix + '_min')} {minimum}"
            )
        if maximum is not None:
            samples.append(
                f"{_render_prometheus(key, prefix + '_max')} {maximum}"
            )
        return samples

    def write(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json())
            stream.write("\n")

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
                + len(self._timers)
            )

    def __getstate__(self) -> Dict[str, object]:
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, *exc: object) -> None:
        pass

    def record(self, wall_seconds: float, cpu_seconds: float = 0.0) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer()


class NullRegistry(MetricsRegistry):
    """The disabled registry: shared inert singletons, no allocation.

    Every accessor returns the same pre-built instrument regardless of
    name or labels, and those instruments ignore all mutation — holding
    one on a hot path is free (the no-op mutators never touch a lock),
    and ``registry.enabled`` lets the path skip its measurement code
    altogether.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: object) -> Histogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str, **labels: object) -> Timer:
        return _NULL_TIMER

    def merge(self, other: MetricsRegistry) -> None:
        pass
