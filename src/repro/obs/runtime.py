"""The session-wide instrumentation switch.

The library is instrumented at fixed points (the profile DP, the
flooding baselines, the trace builders, the forwarding simulator), but
whether those points *record* anything is decided here: a single active
:class:`Instrumentation` bundle that defaults to a shared disabled
instance.  Instrumented code does

    obs = get_obs()
    with obs.span("optimal.compute_profiles", sources=n):
        ...
        if obs.enabled:
            ...accumulate and flush counters...

and pays one attribute check when observability is off.

Activation is scoped: ``with observed(seed=1, dataset="infocom05") as
obs: ...`` installs a fresh bundle (metrics registry + span tracer +
run manifest), restores the previous one on exit, and seals the
manifest.  Nesting is allowed; the innermost bundle wins, which lets a
benchmark session wrap an already-instrumented CLI call without
double-recording.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .manifest import RunManifest
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
)
from .spans import NullTracer, Span, SpanTracer


class Instrumentation:
    """One bundle of metrics + spans + manifest, enabled or not."""

    __slots__ = ("metrics", "tracer", "manifest", "enabled")

    def __init__(
        self,
        metrics: MetricsRegistry,
        tracer: SpanTracer,
        manifest: Optional[RunManifest],
        enabled: bool,
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.manifest = manifest
        self.enabled = enabled

    @classmethod
    def started(
        cls,
        seed: Optional[int] = None,
        dataset: Optional[str] = None,
        scale: Optional[float] = None,
        params: Optional[Dict[str, object]] = None,
    ) -> "Instrumentation":
        """A fresh enabled bundle with a just-started manifest."""
        return cls(
            metrics=MetricsRegistry(),
            tracer=SpanTracer(),
            manifest=RunManifest(seed=seed, dataset=dataset, scale=scale, params=params),
            enabled=True,
        )

    @classmethod
    def disabled(cls) -> "Instrumentation":
        return cls(
            metrics=NullRegistry(), tracer=NullTracer(), manifest=None, enabled=False
        )

    # Convenience delegates, so call sites read `obs.span(...)` /
    # `obs.counter(...)` without reaching into the bundle.
    def span(self, name: str, **attrs: object) -> Span:
        return self.tracer.span(name, **attrs)

    def counter(self, name: str, **labels: object) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self.metrics.histogram(name, **labels)

    def timer(self, name: str, **labels: object) -> Timer:
        return self.metrics.timer(name, **labels)


#: The shared disabled bundle — also the reset target.
NULL_OBS = Instrumentation.disabled()

_active = NULL_OBS


def get_obs() -> Instrumentation:
    """The currently active instrumentation bundle (never None)."""
    return _active


def set_obs(bundle: Optional[Instrumentation]) -> Instrumentation:
    """Install a bundle (None resets to disabled); returns the previous."""
    global _active
    previous = _active
    _active = bundle if bundle is not None else NULL_OBS
    return previous


@contextmanager
def observed(
    seed: Optional[int] = None,
    dataset: Optional[str] = None,
    scale: Optional[float] = None,
    params: Optional[Dict[str, object]] = None,
) -> Iterator[Instrumentation]:
    """Scope with instrumentation enabled; seals the manifest on exit."""
    bundle = Instrumentation.started(
        seed=seed, dataset=dataset, scale=scale, params=params
    )
    previous = set_obs(bundle)
    try:
        yield bundle
    finally:
        if bundle.manifest is not None:
            bundle.manifest.finish()
        set_obs(previous)
