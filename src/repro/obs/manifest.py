"""Run manifests: one JSON document answering "what exactly ran?".

Every instrumented run — a benchmark, a CLI invocation, a notebook
session — can emit a manifest capturing the inputs (seed, dataset,
scale, free-form parameters), the code identity (git SHA, package
version), the environment (Python/numpy versions, platform) and the
resource outcome (total runtime, peak RSS).  Together with the metrics
snapshot and the span trace this makes any ``BENCH_*.json`` number
attributable and reproducible.

The manifest is started at construction and sealed by :meth:`finish`;
:meth:`to_dict` works at any point (resource fields are ``None`` until
sealed).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, cast

SCHEMA = "repro.manifest/1"


def _git_sha() -> Optional[str]:
    """The current git commit, or None outside a repository."""
    env = os.environ.get("REPRO_GIT_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _numpy_version() -> Optional[str]:
    try:
        import numpy

        return numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        return None


def _peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, in bytes."""
    try:
        import resource
    except ImportError:  # pragma: no cover - Windows
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return peak if sys.platform == "darwin" else peak * 1024


class RunManifest:
    """Provenance record of one instrumented run."""

    def __init__(
        self,
        seed: Optional[int] = None,
        dataset: Optional[str] = None,
        scale: Optional[float] = None,
        params: Optional[Dict[str, object]] = None,
    ) -> None:
        from .. import __version__

        self.seed = seed
        self.dataset = dataset
        self.scale = scale
        self.params: Dict[str, object] = dict(params or {})
        self.started_unix = time.time()
        self._wall0 = time.perf_counter()
        self.runtime_s: Optional[float] = None
        self.peak_rss_bytes: Optional[int] = None
        self.git_sha = _git_sha()
        self.package_version = __version__
        self.python_version = platform.python_version()
        self.numpy_version = _numpy_version()
        self.platform = platform.platform()
        self.argv = list(sys.argv)

    def update(self, **params: object) -> "RunManifest":
        """Record extra run parameters (overwrites on key collision)."""
        self.params.update(params)
        return self

    def finish(self) -> "RunManifest":
        """Seal the manifest: total runtime and peak RSS become final."""
        self.runtime_s = time.perf_counter() - self._wall0
        self.peak_rss_bytes = _peak_rss_bytes()
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "dataset": self.dataset,
            "scale": self.scale,
            "params": self.params,
            "started_unix": self.started_unix,
            "runtime_s": self.runtime_s,
            "peak_rss_bytes": self.peak_rss_bytes,
            "git_sha": self.git_sha,
            "package_version": self.package_version,
            "python_version": self.python_version,
            "numpy_version": self.numpy_version,
            "platform": self.platform,
            "argv": self.argv,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunManifest":
        """Rehydrate a manifest from its JSON form (for tooling/tests)."""
        manifest = cls.__new__(cls)
        manifest.seed = cast(Optional[int], data.get("seed"))
        manifest.dataset = cast(Optional[str], data.get("dataset"))
        manifest.scale = cast(Optional[float], data.get("scale"))
        manifest.params = dict(
            cast(Optional[Dict[str, object]], data.get("params")) or {}
        )
        manifest.started_unix = cast(float, data.get("started_unix", 0.0))
        manifest._wall0 = 0.0
        manifest.runtime_s = cast(Optional[float], data.get("runtime_s"))
        manifest.peak_rss_bytes = cast(
            Optional[int], data.get("peak_rss_bytes")
        )
        manifest.git_sha = cast(Optional[str], data.get("git_sha"))
        manifest.package_version = cast(str, data.get("package_version"))
        manifest.python_version = cast(str, data.get("python_version"))
        manifest.numpy_version = cast(
            Optional[str], data.get("numpy_version")
        )
        manifest.platform = cast(str, data.get("platform"))
        manifest.argv = list(cast(Optional[List[str]], data.get("argv")) or [])
        return manifest

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=repr)

    def write(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json())
            stream.write("\n")
