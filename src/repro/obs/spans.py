"""Nested span tracing with JSONL export.

A *span* is one timed region of the pipeline — "load the trace", "run the
profile DP for source 17" — opened as a context manager:

    with tracer.span("traces.build", dataset="infocom05") as span:
        net = ...
        span.set(contacts=net.num_contacts)

Spans nest lexically: a span opened while another is active records the
active one as its parent, so the exported trace reconstructs the call
tree.  Each record captures wall time (``time.perf_counter``), CPU time
(``time.process_time``) and arbitrary JSON-serialisable attributes.

Export is JSON Lines — one object per completed span, in completion
order (children before parents, like a flame graph unwinding)::

    {"id": 2, "parent": 1, "depth": 1, "name": "optimal.compute_profiles",
     "start_unix": 1722950000.1, "wall_s": 3.2, "cpu_s": 3.1,
     "attrs": {"sources": 41}}

The tracer is deliberately single-threaded (the pipeline is; worker
processes get their own tracer whose spans are merged post-hoc).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from types import TracebackType
from typing import Dict, List, Optional, Type


class Span:
    """One open timed region; created via :meth:`SpanTracer.span`."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "attrs",
        "start_unix",
        "wall_s",
        "cpu_s",
        "_tracer",
        "_wall0",
        "_cpu0",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs
        self.start_unix = 0.0
        self.wall_s: Optional[float] = None
        self.cpu_s: Optional[float] = None
        self._tracer = tracer
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start_unix = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._tracer._push(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)

    def to_record(self) -> Dict[str, object]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start_unix": self.start_unix,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "attrs": self.attrs,
        }


class SpanTracer:
    """Collects completed spans; exports them as JSONL."""

    enabled = True

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []
        self._stack: List[Span] = []
        self._next_id = 1

    def span(self, name: str, **attrs: object) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            tracer=self,
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._next_id += 1
        return span

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (generators suspended mid-span).
        if span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        self.records.append(span.to_record())

    def merge(self, other: "SpanTracer") -> None:
        """Append another tracer's completed spans (ids are re-numbered)."""
        # Records arrive in completion order (children before parents),
        # so build the full id remap before rewriting parent links.
        remap: Dict[object, int] = {}
        for record in other.records:
            remap[record["id"]] = self._next_id
            self._next_id += 1
        for record in other.records:
            clone = dict(record)
            clone["id"] = remap[record["id"]]
            clone["parent"] = remap.get(record["parent"])
            self.records.append(clone)

    def to_jsonl(self) -> str:
        return "".join(json.dumps(r, default=repr) + "\n" for r in self.records)

    def write(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_jsonl())

    def summary(self, top: int = 20) -> List[Dict[str, object]]:
        """Wall-time totals per span name, heaviest first."""
        totals: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            entry = totals.setdefault(
                str(record["name"]), {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            entry["count"] += 1
            wall_s, cpu_s = record["wall_s"], record["cpu_s"]
            entry["wall_s"] += wall_s if isinstance(wall_s, float) else 0.0
            entry["cpu_s"] += cpu_s if isinstance(cpu_s, float) else 0.0
        ranked = sorted(totals.items(), key=lambda kv: -kv[1]["wall_s"])
        return [{"name": name, **stats} for name, stats in ranked[:top]]


class _NullSpan(Span):
    """Shared inert span: enter/exit/set do nothing, record nothing."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(
            tracer=SpanTracer(),
            name="",
            span_id=0,
            parent_id=None,
            depth=0,
            attrs={},
        )

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(SpanTracer):
    """The disabled tracer: one shared no-op span, nothing recorded."""

    enabled = False

    def span(self, name: str, **attrs: object) -> Span:
        return _NULL_SPAN

    def merge(self, other: SpanTracer) -> None:
        pass
