"""Request-scoped trace context: W3C-traceparent ids across processes.

The PR-1 span layer (:mod:`repro.obs.spans`) records one process's call
tree with small local integer ids; that is enough for a batch run, but a
service request crosses *three* execution contexts — the HTTP handler
thread, the pool supervisor thread, and a worker process — and its spans
must reassemble into one trace afterwards.  This module provides the
glue:

* :class:`TraceContext` — an immutable ``(trace_id, span_id)`` pair with
  W3C ``traceparent`` encoding (``00-<32 hex>-<16 hex>-<flags>``), so the
  context survives HTTP headers and pickled worker envelopes verbatim;
* :func:`derive_span_id` — deterministic child-span ids
  (``sha256(parent_span_id "/" qualifier)[:16]``).  Each process derives
  the ids of the spans it will record from the random id it was handed,
  so no id allocator is shared across processes and a retried attempt
  gets a distinct id from its attempt number;
* :func:`bind_records` — rewrites one :class:`~repro.obs.spans.SpanTracer`
  export (local integer ids) into trace-scoped records carrying
  ``trace_id`` / ``span_id`` / ``parent_span_id`` hex ids plus an
  ``origin`` tag (``server`` / ``supervisor`` / ``worker``).

Wall-clock reads live here on purpose: reprolint REP004 bans them in
``service/`` (clocks belong to :mod:`repro.obs`), so the pool timestamps
its attempt spans through :func:`now_unix`.
"""

from __future__ import annotations

import hashlib
import secrets
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, cast

#: hex digits of a trace id / span id (W3C trace context sizes).
_TRACE_ID_CHARS = 32
_SPAN_ID_CHARS = 16

_HEX = frozenset("0123456789abcdef")


def now_unix() -> float:
    """Wall-clock timestamp for span records built outside a tracer."""
    return time.time()


def _is_hex_id(value: str, length: int) -> bool:
    return (
        len(value) == length
        and set(value) <= _HEX
        and set(value) != {"0"}
    )


def new_trace_id() -> str:
    return secrets.token_hex(_TRACE_ID_CHARS // 2)


def new_span_id() -> str:
    return secrets.token_hex(_SPAN_ID_CHARS // 2)


def derive_span_id(parent_span_id: str, qualifier: object) -> str:
    """A deterministic 16-hex child id, namespaced under its parent.

    The parent id is random per request, so derived ids are unique as
    long as ``qualifier`` is unique *within* that parent (tracer-local
    span ids, attempt numbers, ...).
    """
    digest = hashlib.sha256(
        f"{parent_span_id}/{qualifier}".encode("utf-8")
    ).hexdigest()
    return digest[:_SPAN_ID_CHARS]


@dataclass(frozen=True)
class TraceContext:
    """One point in a distributed trace: the id pair children hang off."""

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (new trace, new root span id)."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self, qualifier: object) -> "TraceContext":
        """The context of a derived child span (same trace)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_span_id(self.span_id, qualifier),
            sampled=self.sampled,
        )

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"

    @classmethod
    def from_traceparent(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` value; None for anything malformed.

        Malformed inbound headers must never fail a request — the server
        simply starts a fresh trace — so this returns None instead of
        raising.
        """
        if not header or not isinstance(header, str):
            return None
        parts = header.strip().lower().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, flags = parts
        if version != "00" or len(flags) != 2 or not set(flags) <= _HEX:
            return None
        if not _is_hex_id(trace_id, _TRACE_ID_CHARS):
            return None
        if not _is_hex_id(span_id, _SPAN_ID_CHARS):
            return None
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            sampled=bool(int(flags, 16) & 1),
        )


#: where a trace-scoped span record was produced.
ORIGINS = ("server", "supervisor", "worker", "client")


def span_record(
    ctx: TraceContext,
    name: str,
    parent_span_id: Optional[str],
    origin: str,
    start_unix: float,
    wall_s: float,
    attrs: Optional[Dict[str, object]] = None,
    cpu_s: Optional[float] = None,
) -> Dict[str, object]:
    """One trace-scoped span record built by hand (no tracer involved).

    The pool supervisor uses this for its per-attempt spans: attempts
    interleave across worker slots, so they cannot share the tracer's
    lexically-nested stack.
    """
    return {
        "trace_id": ctx.trace_id,
        "span_id": ctx.span_id,
        "parent_span_id": parent_span_id,
        "name": name,
        "origin": origin,
        "start_unix": start_unix,
        "wall_s": wall_s,
        "cpu_s": cpu_s,
        "attrs": dict(attrs or {}),
    }


def bind_records(
    ctx: TraceContext,
    records: Iterable[Dict[str, object]],
    origin: str,
    parent_span_id: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Rewrite one tracer's local-id records into trace-scoped records.

    The tracer's (single) root span takes ``ctx.span_id`` itself — the
    context *is* that span's address, which is what lets another process
    parent its own spans under it before these records even exist.
    Every other local id maps to ``derive_span_id(ctx.span_id, local_id)``
    and local parent links are rewritten through the same mapping; root
    spans parent at ``parent_span_id`` (the remote parent, or None for a
    trace root).
    """
    materialized = list(records)
    root_ids = {r["id"] for r in materialized if r["parent"] is None}
    single_root = len(root_ids) == 1
    mapping: Dict[object, str] = {}
    for record in materialized:
        local_id = record["id"]
        if single_root and local_id in root_ids:
            mapping[local_id] = ctx.span_id
        else:
            mapping[local_id] = derive_span_id(ctx.span_id, local_id)
    bound: List[Dict[str, object]] = []
    for record in materialized:
        parent = record["parent"]
        bound.append(
            {
                "trace_id": ctx.trace_id,
                "span_id": mapping[record["id"]],
                "parent_span_id": (
                    parent_span_id if parent is None else mapping.get(parent)
                ),
                "name": record["name"],
                "origin": origin,
                "start_unix": record["start_unix"],
                "wall_s": record["wall_s"],
                "cpu_s": record["cpu_s"],
                "attrs": dict(cast(Dict[str, object], record["attrs"])),
            }
        )
    return bound
