"""Runtime lock-order watchdog: observe lock discipline under real traffic.

The static rules (reprolint REP006–REP008) prove lock discipline about
the *code*; this module observes it in a *running* process.  While a
:class:`LockWatch` is installed, every lock created through
``threading.Lock`` / ``threading.RLock`` / ``threading.Condition`` is
wrapped so each acquisition records the per-thread stack of locks
already held.  From those observations the watch maintains:

* a **lock-order graph** — one node per lock *creation site* (all locks
  born at ``service/jobs.py:335`` form one node), one edge per observed
  "held A while acquiring B" pair;
* **inversions** — an A→B edge observed when B→A already exists: the
  classic ABBA deadlock precursor, reported with both acquisition
  stacks;
* **long holds** — a lock held longer than ``long_hold_threshold_s``:
  under ThreadingHTTPServer, the difference between one slow request
  and a stalled server.

Findings export as ``repro.lockwatch/1`` JSON Lines (header first, then
``lock`` / ``edge`` / ``inversion`` / ``long_hold`` records), checked by
:func:`validate_lockwatch_jsonl` and by
``benchmarks/validate_artifacts.py lockwatch``.

Test-time only by design: installation monkeypatches the threading
factory *functions* (never the lock types), so production code paths pay
nothing unless a test opts in::

    watch = LockWatch(long_hold_threshold_s=0.25)
    with watch.watching():
        service = build_service(...)   # locks created here are watched
        drive_traffic(service)
    assert watch.inversions() == []
    Path("LOCKWATCH_run.jsonl").write_text(watch.to_jsonl())

Wrapped locks implement the private Condition protocol
(``_release_save`` / ``_acquire_restore`` / ``_is_owned``), so stdlib
machinery that builds conditions over patched locks — ``queue.Queue``,
``multiprocessing``'s thread-side feeders — keeps working while watched.
"""

from __future__ import annotations

import json
import sys
import threading
import traceback
from contextlib import contextmanager
from pathlib import Path
from time import monotonic as _monotonic
from typing import Any, Dict, Iterator, List, Optional, Tuple

LOCKWATCH_SCHEMA = "repro.lockwatch/1"

#: record kinds a ``repro.lockwatch/1`` export may contain.
_KINDS = ("header", "lock", "edge", "inversion", "long_hold")


def _site_of_caller() -> str:
    """``path:line`` of the nearest frame outside this module.

    The path keeps only its last three parts — enough to identify
    ``src/repro/service/jobs.py`` without baking absolute tmp paths into
    artifacts.
    """
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    parts = Path(frame.f_code.co_filename).as_posix().split("/")
    return f"{'/'.join(parts[-3:])}:{frame.f_lineno}"


def _thread_name() -> str:
    """The current thread's name, without ``current_thread()``.

    ``threading.current_thread()`` constructs a ``_DummyThread`` for a
    not-yet-registered thread, and that constructor builds an ``Event``
    — whose Condition would be a *watched* lock re-entering this module
    and recursing forever.  Reading the registry directly (with a plain
    fallback) breaks the loop and is safe during thread bootstrap.
    """
    ident = threading.get_ident()
    thread = getattr(threading, "_active", {}).get(ident)
    if thread is not None:
        return str(thread.name)
    return f"thread-{ident}"


def _stack_outside_watch(limit: int = 12) -> List[str]:
    """A trimmed formatted stack, lockwatch frames removed."""
    lines = traceback.format_stack(limit=limit + 4)
    return [
        line.rstrip("\n")
        for line in lines
        if "/lockwatch.py" not in line.split(",", 1)[0]
    ][-limit:]


class _Held:
    """One entry of a thread's held-lock stack."""

    __slots__ = ("lock", "acquire_site", "t0", "depth")

    def __init__(self, lock: "_WatchedLock", acquire_site: str, t0: float) -> None:
        self.lock = lock
        self.acquire_site = acquire_site
        self.t0 = t0
        self.depth = 1


class _WatchedLock:
    """A Lock/RLock wrapper reporting acquisitions to its LockWatch."""

    __slots__ = ("_watch", "_inner", "site", "kind")

    def __init__(
        self, watch: "LockWatch", inner: Any, kind: str, site: str
    ) -> None:
        self._watch = watch
        self._inner = inner
        self.kind = kind
        self.site = site

    # -- lock protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            self._watch._note_acquire(self, _site_of_caller())
        return acquired

    def release(self) -> None:
        self._watch._note_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return bool(self._inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    # -- Condition protocol ---------------------------------------------
    # threading.Condition drops the lock around wait() through these
    # private hooks when the lock provides them (RLocks do; we always
    # do, so a Condition over a watched plain Lock behaves like one over
    # a watched RLock: bookkeeping survives the release/reacquire).
    def _release_save(self) -> Tuple[Any, int]:
        depth = self._watch._forget(self)
        if hasattr(self._inner, "_release_save"):
            return (self._inner._release_save(), depth)
        self._inner.release()
        return (None, depth)

    def _acquire_restore(self, state: Tuple[Any, int]) -> None:
        inner_state, depth = state
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(inner_state)
        else:
            self._inner.acquire()
        self._watch._note_acquire(self, _site_of_caller(), depth=depth)

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return bool(self._inner._is_owned())
        # A plain lock cannot say who owns it; CPython's Condition uses
        # the same "held by somebody, assume us" approximation.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:
        return f"<watched {self.kind} from {self.site}>"


class LockWatch:
    """Wrap lock creation, record ordering/holding behaviour, report.

    The watch's own bookkeeping lock is created from the *real*
    ``threading.Lock`` captured at construction, so it is never watched
    and never recurses.
    """

    def __init__(
        self,
        long_hold_threshold_s: float = 0.25,
        max_events: int = 1000,
        stack_limit: int = 12,
    ) -> None:
        self.long_hold_threshold_s = long_hold_threshold_s
        self.max_events = max_events
        self.stack_limit = stack_limit
        self._real_lock = threading.Lock
        self._real_rlock = threading.RLock
        self._real_condition = threading.Condition
        self._monotonic = _monotonic
        self._state_lock = self._real_lock()
        self._tls = threading.local()
        self._sites: Dict[str, Dict[str, Any]] = {}  # guarded-by: _state_lock
        self._edges: Dict[Tuple[str, str], Dict[str, Any]] = {}  # guarded-by: _state_lock
        self._inversions: List[Dict[str, Any]] = []  # guarded-by: _state_lock
        self._long_holds: List[Dict[str, Any]] = []  # guarded-by: _state_lock
        self._installed = False
        self._previous: Optional[Tuple[Any, Any, Any]] = None

    # -- installation ---------------------------------------------------
    def install(self) -> None:
        """Monkeypatch the threading lock factories to produce wrappers."""
        if self._installed:
            raise RuntimeError("LockWatch is already installed")
        self._previous = (
            threading.Lock,
            threading.RLock,
            threading.Condition,
        )
        threading.Lock = self._make_lock  # type: ignore[assignment]
        threading.RLock = self._make_rlock  # type: ignore[assignment]
        threading.Condition = self._make_condition  # type: ignore[assignment, misc]
        self._installed = True

    def uninstall(self) -> None:
        """Restore whatever factories were active at :meth:`install`.

        Already-created wrapped locks keep working (their bookkeeping
        just keeps flowing into this watch); nested installs restore
        correctly because each watch puts back what it displaced.
        """
        if not self._installed:
            raise RuntimeError("LockWatch is not installed")
        assert self._previous is not None
        threading.Lock, threading.RLock, threading.Condition = (  # type: ignore[misc]
            self._previous
        )
        self._previous = None
        self._installed = False

    @contextmanager
    def watching(self) -> Iterator["LockWatch"]:
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    def _make_lock(self) -> _WatchedLock:
        site = _site_of_caller()
        self._register_site(site, "Lock")
        return _WatchedLock(self, self._real_lock(), "Lock", site)

    def _make_rlock(self) -> _WatchedLock:
        site = _site_of_caller()
        self._register_site(site, "RLock")
        return _WatchedLock(self, self._real_rlock(), "RLock", site)

    def _make_condition(self, lock: Optional[Any] = None) -> Any:
        if lock is None:
            lock = self._make_rlock()
        return self._real_condition(lock)

    # -- bookkeeping ----------------------------------------------------
    def _stack(self) -> List[_Held]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack  # type: ignore[no-any-return]

    def _register_site(self, site: str, kind: str) -> None:
        with self._state_lock:
            record = self._sites.get(site)
            if record is None:
                record = self._sites[site] = {
                    "kind": kind,
                    "locks": 0,
                    "acquisitions": 0,
                    "max_hold_s": 0.0,
                }
            record["locks"] += 1

    def _note_acquire(
        self, lock: _WatchedLock, acquire_site: str, depth: int = 1
    ) -> None:
        stack = self._stack()
        for held in stack:
            if held.lock is lock:
                held.depth += 1
                return
        entry = _Held(lock, acquire_site, self._monotonic())
        entry.depth = depth
        held_sites = []
        for held in stack:
            if held.lock.site not in held_sites:
                held_sites.append(held.lock.site)
        thread = _thread_name()
        with self._state_lock:
            site_record = self._sites.get(lock.site)
            if site_record is not None:
                site_record["acquisitions"] += 1
            for held_site in held_sites:
                if held_site == lock.site:
                    # Two instances from one creation site (e.g. two
                    # Counter locks): direction is meaningless, skip.
                    continue
                edge_key = (held_site, lock.site)
                edge = self._edges.get(edge_key)
                if edge is None:
                    edge = self._edges[edge_key] = {
                        "count": 0,
                        "first_thread": thread,
                        "first_stack": _stack_outside_watch(self.stack_limit),
                    }
                    reverse = self._edges.get((lock.site, held_site))
                    if reverse is not None and len(self._inversions) < self.max_events:
                        self._inversions.append(
                            {
                                "first": [lock.site, held_site],
                                "second": [held_site, lock.site],
                                "thread": thread,
                                "stack": edge["first_stack"],
                                "earlier_thread": reverse["first_thread"],
                                "earlier_stack": reverse["first_stack"],
                            }
                        )
                edge["count"] += 1
        stack.append(entry)

    def _note_release(self, lock: _WatchedLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            held = stack[index]
            if held.lock is not lock:
                continue
            held.depth -= 1
            if held.depth == 0:
                del stack[index]
                self._record_hold(held)
            return
        # Releasing a lock acquired before the watch saw it: ignore.

    def _forget(self, lock: _WatchedLock) -> int:
        """Drop a lock from the held stack entirely (Condition.wait)."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            held = stack[index]
            if held.lock is lock:
                del stack[index]
                self._record_hold(held)
                return held.depth
        return 1

    def _record_hold(self, held: _Held) -> None:
        hold_s = self._monotonic() - held.t0
        with self._state_lock:
            site_record = self._sites.get(held.lock.site)
            if site_record is not None and hold_s > site_record["max_hold_s"]:
                site_record["max_hold_s"] = hold_s
            if (
                hold_s >= self.long_hold_threshold_s
                and len(self._long_holds) < self.max_events
            ):
                self._long_holds.append(
                    {
                        "site": held.lock.site,
                        "acquire_site": held.acquire_site,
                        "hold_s": hold_s,
                        "thread": _thread_name(),
                    }
                )

    # -- reporting ------------------------------------------------------
    def inversions(self) -> List[Dict[str, Any]]:
        with self._state_lock:
            return [dict(record) for record in self._inversions]

    def long_holds(self) -> List[Dict[str, Any]]:
        with self._state_lock:
            return [dict(record) for record in self._long_holds]

    def summary(self) -> Dict[str, Any]:
        with self._state_lock:
            return {
                "locks": len(self._sites),
                "edges": len(self._edges),
                "inversions": len(self._inversions),
                "long_holds": len(self._long_holds),
            }

    def to_jsonl(self) -> str:
        """The findings as ``repro.lockwatch/1`` JSON Lines."""
        with self._state_lock:
            sites = {site: dict(rec) for site, rec in self._sites.items()}
            edges = {key: dict(rec) for key, rec in self._edges.items()}
            inversions = [dict(rec) for rec in self._inversions]
            long_holds = [dict(rec) for rec in self._long_holds]
        lines = [
            {
                "kind": "header",
                "schema": LOCKWATCH_SCHEMA,
                "long_hold_threshold_s": self.long_hold_threshold_s,
                "locks": len(sites),
                "edges": len(edges),
                "inversions": len(inversions),
                "long_holds": len(long_holds),
            }
        ]
        for site in sorted(sites):
            record = sites[site]
            lines.append(
                {
                    "kind": "lock",
                    "site": site,
                    "lock_kind": record["kind"],
                    "locks": record["locks"],
                    "acquisitions": record["acquisitions"],
                    "max_hold_s": record["max_hold_s"],
                }
            )
        for held_site, acquired_site in sorted(edges):
            record = edges[(held_site, acquired_site)]
            lines.append(
                {
                    "kind": "edge",
                    "held": held_site,
                    "acquired": acquired_site,
                    "count": record["count"],
                    "first_thread": record["first_thread"],
                }
            )
        for inversion in inversions:
            lines.append({"kind": "inversion", **inversion})
        for long_hold in long_holds:
            lines.append({"kind": "long_hold", **long_hold})
        return "\n".join(json.dumps(line, sort_keys=True) for line in lines) + "\n"

    def export_jsonl(self, path: "str | Path") -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_jsonl(), encoding="utf-8")
        return target


class LockWatchError(ValueError):
    """A ``repro.lockwatch/1`` export that fails validation."""


def validate_lockwatch_jsonl(
    text: str,
    forbid_inversions: bool = False,
    max_long_holds: Optional[int] = None,
) -> Dict[str, int]:
    """Check a ``repro.lockwatch/1`` export; returns its summary counts.

    Structural checks: header first with the right schema and counts
    matching the body; every edge/long-hold references a declared lock
    site; record kinds are known.  Policy checks are opt-in:
    ``forbid_inversions`` fails on any inversion record (the CI gate for
    the service stress run), ``max_long_holds`` bounds long-hold events.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise LockWatchError("empty lockwatch export")
    try:
        records = [json.loads(line) for line in lines]
    except json.JSONDecodeError as exc:
        raise LockWatchError(f"invalid JSON line: {exc}") from exc
    header = records[0]
    if header.get("kind") != "header":
        raise LockWatchError("first record must be the header")
    if header.get("schema") != LOCKWATCH_SCHEMA:
        raise LockWatchError(
            f"schema mismatch: {header.get('schema')!r} != {LOCKWATCH_SCHEMA!r}"
        )
    counts = {"lock": 0, "edge": 0, "inversion": 0, "long_hold": 0}
    sites = set()
    for record in records[1:]:
        kind = record.get("kind")
        if kind not in _KINDS or kind == "header":
            raise LockWatchError(f"unknown record kind {kind!r}")
        counts[kind] += 1
        if kind == "lock":
            site = record.get("site")
            if not isinstance(site, str) or not site:
                raise LockWatchError("lock record without a site")
            sites.add(site)
    for record in records[1:]:
        kind = record["kind"]
        if kind == "edge":
            for end in ("held", "acquired"):
                if record.get(end) not in sites:
                    raise LockWatchError(
                        f"edge references unknown lock site {record.get(end)!r}"
                    )
        elif kind == "long_hold":
            if record.get("site") not in sites:
                raise LockWatchError(
                    f"long_hold references unknown lock site "
                    f"{record.get('site')!r}"
                )
    expected = {
        "lock": header.get("locks"),
        "edge": header.get("edges"),
        "inversion": header.get("inversions"),
        "long_hold": header.get("long_holds"),
    }
    for kind, declared in expected.items():
        if declared != counts[kind]:
            raise LockWatchError(
                f"header declares {declared} {kind} record(s), body has "
                f"{counts[kind]}"
            )
    if forbid_inversions and counts["inversion"]:
        raise LockWatchError(
            f"{counts['inversion']} lock-order inversion(s) observed"
        )
    if max_long_holds is not None and counts["long_hold"] > max_long_holds:
        raise LockWatchError(
            f"{counts['long_hold']} long-hold event(s) exceed the allowed "
            f"{max_long_holds}"
        )
    return counts
