"""A ring-buffered store of reassembled traces, with JSONL export.

The service's three execution contexts each contribute trace-scoped span
records (see :mod:`repro.obs.tracectx`): the HTTP handler binds its
request tracer, the pool supervisor hands in per-attempt records, and a
worker process ships its spans back inside the result envelope.  The
:class:`TraceStore` is where they meet — records are grouped by
``trace_id``, coalesce fan-in is kept as *link* records, and the whole
trace exports as JSON Lines under schema ``repro.trace/1``::

    {"kind": "header", "schema": "repro.trace/1", "trace_id": ..., ...}
    {"kind": "span", "trace_id": ..., "span_id": ..., "parent_span_id": ...,
     "name": "service.http.request", "origin": "server", "start_unix": ...,
     "wall_s": ..., "cpu_s": ..., "attrs": {...}}
    {"kind": "link", "type": "coalesce", "trace_id": ..., "span_id": ...,
     "linked_trace_id": ..., "linked_span_id": ...}

The store is a bounded ring: once ``capacity`` traces are held, the
oldest trace is dropped for each new one, so a long-lived server's
``GET /debug/traces`` stays O(capacity) forever.  :func:`validate_trace_jsonl`
is the matching checker — ``benchmarks/validate_artifacts.py trace``
and the tests run exported artefacts through it.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, cast

TRACE_SCHEMA = "repro.trace/1"

#: span-record keys every bound record must carry.
_SPAN_KEYS = (
    "trace_id",
    "span_id",
    "parent_span_id",
    "name",
    "origin",
    "start_unix",
    "wall_s",
    "attrs",
)

#: link-record keys (a link lives in one trace and points at another span,
#: possibly in a different trace).
_LINK_KEYS = ("type", "trace_id", "span_id", "linked_trace_id", "linked_span_id")

_HEX = frozenset("0123456789abcdef")


class _TraceEntry:
    """One trace under assembly: its spans and links, in arrival order."""

    __slots__ = ("spans", "links")

    def __init__(self) -> None:
        self.spans: List[Dict[str, object]] = []
        self.links: List[Dict[str, object]] = []


class TraceStore:
    """Completed/in-flight traces keyed by trace id, ring-bounded."""

    def __init__(self, capacity: int = 256, max_spans_per_trace: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.max_spans_per_trace = max_spans_per_trace
        self.evicted = 0  # guarded-by: _lock
        self.dropped_spans = 0  # guarded-by: _lock
        self._traces: "OrderedDict[str, _TraceEntry]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()

    # guarded-by: _lock
    def _entry(self, trace_id: str) -> _TraceEntry:
        entry = self._traces.get(trace_id)
        if entry is None:
            entry = self._traces[trace_id] = _TraceEntry()
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self.evicted += 1
        return entry

    def add_spans(
        self, trace_id: str, records: Iterable[Dict[str, object]]
    ) -> None:
        """Append span records to a trace (created on first touch)."""
        with self._lock:
            entry = self._entry(trace_id)
            for record in records:
                if len(entry.spans) >= self.max_spans_per_trace:
                    self.dropped_spans += 1
                    continue
                entry.spans.append(record)

    def add_link(self, trace_id: str, link: Dict[str, object]) -> None:
        """Record a span link (e.g. coalesce fan-in) on a trace."""
        document = dict(link)
        document["trace_id"] = trace_id
        with self._lock:
            self._entry(trace_id).links.append(document)

    def get(self, trace_id: str) -> Optional[Dict[str, object]]:
        """The assembled trace document, or None if unknown/evicted."""
        with self._lock:
            entry = self._traces.get(trace_id)
            if entry is None:
                return None
            spans = list(entry.spans)
            links = list(entry.links)
        return {
            "schema": TRACE_SCHEMA,
            "trace_id": trace_id,
            "spans": spans,
            "links": links,
        }

    def summaries(self) -> List[Dict[str, object]]:
        """One summary row per held trace, newest first."""
        with self._lock:
            items = list(self._traces.items())
        rows: List[Dict[str, object]] = []
        for trace_id, entry in reversed(items):
            root = next(
                (s for s in entry.spans if s.get("parent_span_id") is None),
                None,
            )
            rows.append(
                {
                    "trace_id": trace_id,
                    "spans": len(entry.spans),
                    "links": len(entry.links),
                    "root": None if root is None else root.get("name"),
                    "start_unix": (
                        None if root is None else root.get("start_unix")
                    ),
                    "wall_s": None if root is None else root.get("wall_s"),
                }
            )
        return rows

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "traces": len(self._traces),
                "capacity": self.capacity,
                "evicted": self.evicted,
                "dropped_spans": self.dropped_spans,
            }

    def export_jsonl(self, trace_id: str) -> Optional[str]:
        """The trace as ``repro.trace/1`` JSON Lines (header first)."""
        document = self.get(trace_id)
        if document is None:
            return None
        spans = cast(List[Dict[str, object]], document["spans"])
        links = cast(List[Dict[str, object]], document["links"])
        lines = [
            json.dumps(
                {
                    "kind": "header",
                    "schema": TRACE_SCHEMA,
                    "trace_id": trace_id,
                    "spans": len(spans),
                    "links": len(links),
                },
                sort_keys=True,
            )
        ]
        for span in spans:
            lines.append(
                json.dumps({"kind": "span", **span}, sort_keys=True, default=repr)
            )
        for link in links:
            lines.append(
                json.dumps({"kind": "link", **link}, sort_keys=True, default=repr)
            )
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


def _require_hex(value: object, length: int, what: str) -> str:
    if (
        not isinstance(value, str)
        or len(value) != length
        or not set(value) <= _HEX
    ):
        raise ValueError(f"{what} is not a {length}-hex id: {value!r}")
    return value


def validate_trace_jsonl(
    text: str,
    require_names: Sequence[str] = (),
    require_origins: Sequence[str] = (),
    require_link_types: Sequence[str] = (),
) -> Dict[str, object]:
    """Validate one exported ``repro.trace/1`` JSONL document.

    Checks the header, every span record (ids well-formed and unique,
    parents resolve inside the trace, non-negative timings), every link
    record (the local end resolves, the remote end is well-formed), and
    that the header's counts match.  The ``require_*`` arguments assert
    coverage — e.g. CI requires a ``worker``-origin span and a
    ``coalesce`` link so a silently server-only trace fails loudly.

    Returns a summary dict; raises ValueError on the first violation.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty trace export")
    try:
        parsed = [json.loads(line) for line in lines]
    except ValueError as exc:
        raise ValueError(f"unparseable trace line: {exc}") from exc
    header = parsed[0]
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise ValueError("first line is not a trace header")
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"schema {header.get('schema')!r}, expected {TRACE_SCHEMA!r}"
        )
    trace_id = _require_hex(header.get("trace_id"), 32, "header trace_id")

    spans: List[Dict[str, object]] = []
    links: List[Dict[str, object]] = []
    for record in parsed[1:]:
        if not isinstance(record, dict):
            raise ValueError(f"trace line is not an object: {record!r}")
        kind = record.get("kind")
        if kind == "span":
            spans.append(record)
        elif kind == "link":
            links.append(record)
        else:
            raise ValueError(f"unknown record kind: {kind!r}")
    if not spans:
        raise ValueError("trace contains no spans")

    span_ids: Dict[str, Dict[str, object]] = {}
    for span in spans:
        missing = [key for key in _SPAN_KEYS if key not in span]
        if missing:
            raise ValueError(f"span missing keys {missing}: {span!r}")
        if span["trace_id"] != trace_id:
            raise ValueError(
                f"span trace_id {span['trace_id']!r} != header {trace_id!r}"
            )
        span_id = _require_hex(span["span_id"], 16, "span_id")
        if span_id in span_ids:
            raise ValueError(f"duplicate span_id {span_id}")
        if not isinstance(span["name"], str) or not span["name"]:
            raise ValueError(f"span has no name: {span!r}")
        wall_s = span["wall_s"]
        if not isinstance(wall_s, (int, float)) or wall_s < 0:
            raise ValueError(f"span wall_s invalid: {span!r}")
        start_unix = span["start_unix"]
        if not isinstance(start_unix, (int, float)) or start_unix <= 0:
            raise ValueError(f"span start_unix invalid: {span!r}")
        if not isinstance(span["attrs"], dict):
            raise ValueError(f"span attrs is not an object: {span!r}")
        span_ids[span_id] = span
    for span in spans:
        parent = span["parent_span_id"]
        if parent is None:
            continue
        parent_id = _require_hex(parent, 16, "parent_span_id")
        if parent_id not in span_ids:
            raise ValueError(
                f"span {span['span_id']} parent {parent_id} not in trace"
            )

    for link in links:
        missing = [key for key in _LINK_KEYS if key not in link]
        if missing:
            raise ValueError(f"link missing keys {missing}: {link!r}")
        if link["trace_id"] != trace_id:
            raise ValueError(
                f"link trace_id {link['trace_id']!r} != header {trace_id!r}"
            )
        local = _require_hex(link["span_id"], 16, "link span_id")
        if local not in span_ids:
            raise ValueError(f"link span_id {local} not in trace")
        _require_hex(link["linked_trace_id"], 32, "linked_trace_id")
        _require_hex(link["linked_span_id"], 16, "linked_span_id")

    if header.get("spans") != len(spans) or header.get("links") != len(links):
        raise ValueError(
            f"header counts ({header.get('spans')} spans, "
            f"{header.get('links')} links) do not match the export "
            f"({len(spans)} spans, {len(links)} links)"
        )

    names = {cast(str, span["name"]) for span in spans}
    origins = {cast(str, span["origin"]) for span in spans}
    link_types = {str(link["type"]) for link in links}
    for name in require_names:
        if name not in names:
            raise ValueError(f"required span {name!r} absent; have {sorted(names)}")
    for origin in require_origins:
        if origin not in origins:
            raise ValueError(
                f"required origin {origin!r} absent; have {sorted(origins)}"
            )
    for link_type in require_link_types:
        if link_type not in link_types:
            raise ValueError(
                f"required link type {link_type!r} absent; "
                f"have {sorted(link_types)}"
            )
    roots = [s for s in spans if s["parent_span_id"] is None]
    return {
        "trace_id": trace_id,
        "spans": len(spans),
        "links": len(links),
        "roots": len(roots),
        "names": sorted(names),
        "origins": sorted(origins),
        "link_types": sorted(link_types),
    }
