"""Structured JSONL logging with correlation ids.

Ad-hoc ``print(..., file=sys.stderr)`` lines cannot be grepped by trace
id, filtered by level, or shipped to a collector; this module replaces
them across the CLI and the service.  One log record is one JSON object
per line on stderr::

    {"ts": 1722950000.123, "level": "warning", "logger": "repro.service",
     "event": "service.job.slow", "trace_id": "4bf9...", "wall_s": 31.2}

Design points:

* **Lazy streams.**  A logger bound to ``stream=None`` resolves
  ``sys.stderr`` at *emit* time, so ``redirect_stderr`` (used by the
  worker pool to capture job stderr) and pytest's capture both see log
  lines without any re-plumbing.
* **Level threshold.**  ``debug < info < warning < error``; the shared
  default comes from :func:`configure` (the CLIs wire ``--log-level`` /
  ``REPRO_LOG`` into it, validated by :func:`coerce_level` the way
  ``positive_int`` validates counts).
* **Bound fields.**  ``logger.bind(trace_id=...)`` returns a child whose
  every record carries the correlation id — request handlers bind once
  and log freely.

Emission is serialised by a module lock and written as a single
``write`` call, so concurrent handler threads never interleave lines.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Dict, Optional, TextIO

#: ordered severity levels (names are the public API).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

DEFAULT_LEVEL = "info"

#: environment variable consulted by the CLIs for the default level.
ENV_VAR = "REPRO_LOG"

_emit_lock = threading.Lock()
_registry_lock = threading.Lock()
_default_level = DEFAULT_LEVEL
_loggers: Dict[str, "StructuredLogger"] = {}


def coerce_level(value: object) -> str:
    """Normalise a level name; raise ValueError for anything unknown."""
    if not isinstance(value, str):
        raise ValueError(f"log level must be a string, got {value!r}")
    level = value.strip().lower()
    if level not in LEVELS:
        raise ValueError(
            f"unknown log level {value!r}; choose from {', '.join(LEVELS)}"
        )
    return level


def level_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[str]:
    """The ``REPRO_LOG`` level, or None if unset/invalid.

    An invalid value in the environment must not crash an otherwise
    correct invocation; callers that want strictness (the ``--log-level``
    flags) validate explicitly via :func:`coerce_level`.
    """
    env: Dict[str, str] = dict(os.environ) if environ is None else environ
    raw = env.get(ENV_VAR)
    if raw is None:
        return None
    try:
        return coerce_level(raw)
    except ValueError:
        return None


class StructuredLogger:
    """A named JSONL logger with a level threshold and bound fields."""

    __slots__ = ("name", "level", "_stream", "_bound")

    def __init__(
        self,
        name: str,
        level: Optional[str] = None,
        stream: Optional[TextIO] = None,
        bound: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.level = coerce_level(level) if level is not None else _default_level
        self._stream = stream
        self._bound: Dict[str, object] = dict(bound or {})

    def bind(self, **fields: object) -> "StructuredLogger":
        """A child logger whose every record carries ``fields``."""
        merged = dict(self._bound)
        merged.update(fields)
        return StructuredLogger(
            self.name, level=self.level, stream=self._stream, bound=merged
        )

    def enabled_for(self, level: str) -> bool:
        return LEVELS[level] >= LEVELS[self.level]

    def log(self, level: str, event: str, **fields: object) -> None:
        level = coerce_level(level)
        if not self.enabled_for(level):
            return
        record: Dict[str, object] = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(self._bound)
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=repr) + "\n"
        stream = self._stream if self._stream is not None else sys.stderr
        with _emit_lock:
            stream.write(line)
            try:
                stream.flush()
            except (OSError, ValueError):  # closed/broken stream: drop, not die
                pass

    def debug(self, event: str, **fields: object) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log("error", event, **fields)


def get_logger(name: str) -> StructuredLogger:
    """The shared logger for ``name`` (created at the default level)."""
    with _registry_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = StructuredLogger(name)
        return logger


def configure(
    level: Optional[str] = None, stream: Optional[TextIO] = None
) -> str:
    """Set the process-wide default level (and optionally the stream).

    Updates every logger already handed out by :func:`get_logger`, so a
    CLI can parse ``--log-level`` after modules imported their loggers.
    Returns the level now in force.
    """
    global _default_level
    with _registry_lock:
        if level is not None:
            _default_level = coerce_level(level)
        for logger in _loggers.values():
            if level is not None:
                logger.level = _default_level
            if stream is not None:
                logger._stream = stream
        return _default_level
