"""Tests for benchmarks/validate_artifacts.py — the artefact checks CI
runs after the smoke benchmarks (extracted from inline workflow
heredocs so they can be exercised here)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "validate_artifacts", _ROOT / "benchmarks" / "validate_artifacts.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


va = _load_validator()


def _bench_payload(**overrides):
    payload = {
        "schema": "repro.bench/1",
        "bench": "fig9_delay_cdf",
        "seed": 7,
        "scale": 0.05,
        "exit_code": 0,
        "metrics": {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timers": {},
        },
        "manifest": {
            "runtime_s": 1.25,
            "python_version": "3.11.0",
            "started_unix": 1700000000.0,
        },
    }
    payload.update(overrides)
    return payload


def _write(path, payload):
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestBenchDir:
    def test_valid_directory_reports_each_artifact(self, tmp_path):
        _write(tmp_path / "BENCH_a.json", _bench_payload(bench="a"))
        _write(tmp_path / "BENCH_b.json", _bench_payload(bench="b"))
        lines = va.validate_bench_dir(tmp_path)
        assert len(lines) == 2
        assert all("ok" in line for line in lines)

    def test_empty_directory_fails(self, tmp_path):
        with pytest.raises(va.ValidationError, match="no BENCH_"):
            va.validate_bench_dir(tmp_path)

    def test_malformed_payload_fails(self, tmp_path):
        _write(tmp_path / "BENCH_bad.json", _bench_payload(schema="wrong"))
        with pytest.raises(va.ValidationError, match="bad schema"):
            va.validate_bench_dir(tmp_path)

    def test_unparseable_json_fails(self, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        with pytest.raises(va.ValidationError, match="cannot load"):
            va.validate_bench_dir(tmp_path)


def _cached_payload(counters):
    metrics = {"counters": counters, "gauges": {}, "histograms": {}, "timers": {}}
    return _bench_payload(metrics=metrics)


class TestCacheRerun:
    def _pair(self, tmp_path, cold_counters, warm_counters):
        cold = _write(tmp_path / "cold.json", _cached_payload(cold_counters))
        warm = _write(tmp_path / "warm.json", _cached_payload(warm_counters))
        return cold, warm

    def test_clean_cold_warm_pair_passes(self, tmp_path):
        cold, warm = self._pair(
            tmp_path,
            {"profiles.cache.miss": 6},
            {"profiles.cache.hit": 6, "profiles.cache.miss": 0},
        )
        lines = va.validate_cache_rerun(cold, warm)
        assert any("misses: 6" in line for line in lines)
        assert any("hits:   6" in line for line in lines)

    def test_cold_run_without_misses_fails(self, tmp_path):
        cold, warm = self._pair(tmp_path, {}, {"profiles.cache.hit": 6})
        with pytest.raises(va.ValidationError, match="no cache misses"):
            va.validate_cache_rerun(cold, warm)

    def test_warm_run_with_misses_fails(self, tmp_path):
        cold, warm = self._pair(
            tmp_path,
            {"profiles.cache.miss": 6},
            {"profiles.cache.hit": 4, "profiles.cache.miss": 2},
        )
        with pytest.raises(va.ValidationError, match="still missed"):
            va.validate_cache_rerun(cold, warm)

    def test_warm_run_with_invalidations_fails(self, tmp_path):
        cold, warm = self._pair(
            tmp_path,
            {"profiles.cache.miss": 6},
            {"profiles.cache.hit": 6, "profiles.cache.invalid": 1},
        )
        with pytest.raises(va.ValidationError, match="invalidated"):
            va.validate_cache_rerun(cold, warm)

    def test_nonzero_exit_code_fails(self, tmp_path):
        cold = _write(
            tmp_path / "cold.json",
            _bench_payload(exit_code=3),
        )
        warm = _write(tmp_path / "warm.json", _cached_payload({}))
        with pytest.raises(va.ValidationError, match="exit_code"):
            va.validate_cache_rerun(cold, warm)


def _service_summary(**overrides):
    summary = {
        "coalesce": {
            "concurrency": 8,
            "computed": 1,
            "coalesced": 7,
            "coalesce_ratio": 7 / 8,
            "byte_identical": True,
            "wall_s": 1.0,
        },
        "throughput": {
            "requests": 60,
            "throughput_rps": 500.0,
            "latency_p50_s": 0.002,
            "latency_p99_s": 0.003,
            "latency_percentiles_s": {
                "p10": 0.001,
                "p50": 0.002,
                "p90": 0.0025,
                "p99": 0.003,
            },
            "store_hits": 60,
            "store_hit_ratio": 1.0,
        },
        "backpressure": {
            "rejected_status": 429,
            "retry_after_s": 30,
            "pool_rejected": 1,
        },
        "sharded": {
            "shards": 4,
            "shards_total": 4,
            "shards_done": 4,
            "byte_identical": True,
            "wall_s": 1.5,
            "monolithic_wall_s": 1.2,
            "shards_completed": 4,
            "shards_dispatched": 4,
        },
        "recovery": {
            "shards": 4,
            "shards_done_before_kill": 1,
            "events_before_restart": 3,
            "events_replayed": 3,
            "requeued": 1,
            "shards_skipped": 1,
            "recovery_s": 0.01,
            "drain_s": 1.5,
            "byte_identical": True,
            "journal_valid": True,
            "fsync": {
                "appends": 256,
                "fsync_appends_per_s": 5000.0,
                "nofsync_appends_per_s": 80000.0,
                "fsync_overhead_x": 16.0,
            },
        },
    }
    summary.update(overrides)
    return summary


def _service_payload(tmp_path, summary=None, counters=None):
    payload = _bench_payload(bench="service_load")
    payload["manifest"]["params"] = {
        "service_load": _service_summary() if summary is None else summary
    }
    payload["metrics"]["counters"] = (
        {
            "service.pool.rejected": 1,
            "service.shards.completed": 4,
            "service.shards.dispatched": 4,
            "service.recovery.requeued": 1,
        }
        if counters is None
        else counters
    )
    return _write(tmp_path / "BENCH_service_load.json", payload)


class TestServiceLoad:
    def test_clean_record_passes(self, tmp_path):
        lines = va.validate_service_load(_service_payload(tmp_path))
        assert any("coalesce: 7/8" in line for line in lines)
        assert any("429" in line for line in lines)

    def test_multiple_computations_fail(self, tmp_path):
        summary = _service_summary()
        summary["coalesce"] = dict(summary["coalesce"], computed=3)
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="expected exactly 1"):
            va.validate_service_load(path)

    def test_low_coalesce_ratio_fails(self, tmp_path):
        summary = _service_summary()
        summary["coalesce"] = dict(
            summary["coalesce"], coalesced=4, coalesce_ratio=0.5
        )
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="coalesce ratio"):
            va.validate_service_load(path)

    def test_byte_divergence_fails(self, tmp_path):
        summary = _service_summary()
        summary["coalesce"] = dict(summary["coalesce"], byte_identical=False)
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="byte-identical"):
            va.validate_service_load(path)

    def test_missing_rejection_fails(self, tmp_path):
        summary = _service_summary()
        summary["backpressure"] = dict(
            summary["backpressure"], rejected_status=200
        )
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="429"):
            va.validate_service_load(path)

    def test_clean_record_reports_shards(self, tmp_path):
        lines = va.validate_service_load(_service_payload(tmp_path))
        assert any("sharded: 4/4" in line for line in lines)

    def test_sharded_byte_divergence_fails(self, tmp_path):
        summary = _service_summary()
        summary["sharded"] = dict(summary["sharded"], byte_identical=False)
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="sharded"):
            va.validate_service_load(path)

    def test_incomplete_shard_progress_fails(self, tmp_path):
        summary = _service_summary()
        summary["sharded"] = dict(summary["sharded"], shards_done=3)
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="progress incomplete"):
            va.validate_service_load(path)

    def test_missing_sharded_section_fails(self, tmp_path):
        summary = _service_summary()
        del summary["sharded"]
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="sharded"):
            va.validate_service_load(path)

    def test_missing_shard_counters_fail(self, tmp_path):
        path = _service_payload(
            tmp_path, counters={"service.pool.rejected": 1}
        )
        with pytest.raises(
            va.ValidationError, match="service.shards.completed"
        ):
            va.validate_service_load(path)

    def test_missing_summary_fails(self, tmp_path):
        payload = _bench_payload(bench="service_load")
        path = _write(tmp_path / "BENCH_service_load.json", payload)
        with pytest.raises(va.ValidationError, match="manifest params"):
            va.validate_service_load(path)
        payload["manifest"]["params"] = {}
        path = _write(tmp_path / "BENCH_service_load.json", payload)
        with pytest.raises(va.ValidationError, match="service_load"):
            va.validate_service_load(path)

    def test_missing_rejected_counter_fails(self, tmp_path):
        path = _service_payload(tmp_path, counters={})
        with pytest.raises(va.ValidationError, match="rejected"):
            va.validate_service_load(path)

    def test_missing_latency_percentiles_fail(self, tmp_path):
        summary = _service_summary()
        summary["throughput"] = dict(summary["throughput"])
        del summary["throughput"]["latency_percentiles_s"]
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="latency_percentiles_s"):
            va.validate_service_load(path)

    def test_non_monotone_percentiles_fail(self, tmp_path):
        summary = _service_summary()
        summary["throughput"] = dict(
            summary["throughput"],
            latency_percentiles_s={
                "p10": 0.003, "p50": 0.002, "p90": 0.004, "p99": 0.005,
            },
        )
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="not monotone at p50"):
            va.validate_service_load(path)

    def test_clean_record_reports_recovery(self, tmp_path):
        lines = va.validate_service_load(_service_payload(tmp_path))
        assert any("recovery: 3 events replayed" in line for line in lines)
        assert any("fsync probe" in line for line in lines)

    def test_missing_recovery_section_fails(self, tmp_path):
        summary = _service_summary()
        del summary["recovery"]
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="recovery"):
            va.validate_service_load(path)

    def test_recovery_byte_divergence_fails(self, tmp_path):
        summary = _service_summary()
        summary["recovery"] = dict(summary["recovery"], byte_identical=False)
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="byte-identical"):
            va.validate_service_load(path)

    def test_recovery_recomputed_checkpointed_shards_fails(self, tmp_path):
        summary = _service_summary()
        summary["recovery"] = dict(
            summary["recovery"], shards_skipped=0, shards_done_before_kill=1
        )
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="checkpointed shards"):
            va.validate_service_load(path)

    def test_recovery_without_replayed_events_fails(self, tmp_path):
        summary = _service_summary()
        summary["recovery"] = dict(summary["recovery"], events_replayed=0)
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="replayed no"):
            va.validate_service_load(path)

    def test_recovery_without_fsync_probe_fails(self, tmp_path):
        summary = _service_summary()
        summary["recovery"] = dict(summary["recovery"])
        del summary["recovery"]["fsync"]
        path = _service_payload(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="fsync probe"):
            va.validate_service_load(path)

    def test_missing_requeued_counter_fails(self, tmp_path):
        path = _service_payload(
            tmp_path,
            counters={
                "service.pool.rejected": 1,
                "service.shards.completed": 4,
                "service.shards.dispatched": 4,
            },
        )
        with pytest.raises(
            va.ValidationError, match="service.recovery.requeued"
        ):
            va.validate_service_load(path)


def _journal_dir(tmp_path, close_episode=True):
    """Write a real one-episode journal and return its directory."""
    sys.path.insert(0, str(_ROOT / "src"))
    from repro.service.journal import JournalWriter

    root = tmp_path / "journal"
    writer = JournalWriter(root, fsync=False)
    key = "a" * 64
    writer.append("submitted", key, spec={"command": "delay-cdf"})
    writer.append("running", key, attempts=1)
    if close_episode:
        writer.append("completed", key, exit_code=0)
    writer.close()
    return root


class TestJournalArtifact:
    def test_valid_journal_passes(self, tmp_path):
        lines = va.validate_journal_artifact(_journal_dir(tmp_path))
        assert any("3 events" in line for line in lines)
        assert any("1 closed" in line for line in lines)

    def test_open_episode_passes_without_forbid_open(self, tmp_path):
        root = _journal_dir(tmp_path, close_episode=False)
        lines = va.validate_journal_artifact(root)
        assert any("1 open" in line for line in lines)

    def test_open_episode_fails_with_forbid_open(self, tmp_path):
        root = _journal_dir(tmp_path, close_episode=False)
        with pytest.raises(va.ValidationError, match="still open"):
            va.validate_journal_artifact(root, forbid_open=True)

    def test_corrupt_stream_fails(self, tmp_path):
        root = _journal_dir(tmp_path)
        segment = sorted(root.glob("journal-*.jsonl"))[0]
        lines = segment.read_text(encoding="utf-8").splitlines(True)
        # Swap the first two records: running now precedes submitted
        # (and seq runs 2, 1, 3) — both journal invariants broken.
        segment.write_text(
            lines[1] + lines[0] + lines[2], encoding="utf-8"
        )
        with pytest.raises(va.ValidationError):
            va.validate_journal_artifact(root)

    def test_missing_directory_fails(self, tmp_path):
        with pytest.raises(va.ValidationError, match="no journal segments"):
            va.validate_journal_artifact(tmp_path / "nope")


def _trace_export(tmp_path, mutate=None):
    """Write a real two-span trace export and return its path."""
    from repro.obs.tracectx import TraceContext, derive_span_id, span_record
    from repro.obs.tracestore import TraceStore

    store = TraceStore()
    ctx = TraceContext.new()
    worker = derive_span_id(ctx.span_id, "worker")
    store.add_spans(
        ctx.trace_id,
        [
            span_record(
                ctx, "service.http.request", None, "server",
                start_unix=100.0, wall_s=1.0,
            ),
            span_record(
                TraceContext(ctx.trace_id, worker),
                "worker.execute",
                parent_span_id=ctx.span_id,
                origin="worker",
                start_unix=100.1,
                wall_s=0.9,
            ),
        ],
    )
    other = TraceContext.new()
    store.add_link(
        ctx.trace_id,
        {
            "type": "coalesce-fan-in",
            "span_id": ctx.span_id,
            "linked_trace_id": other.trace_id,
            "linked_span_id": other.span_id,
        },
    )
    text = store.export_jsonl(ctx.trace_id)
    if mutate is not None:
        text = mutate(text)
    path = tmp_path / "TRACE_service_load.jsonl"
    path.write_text(text, encoding="utf-8")
    return path


class TestTraceExport:
    def test_valid_export_passes_with_requirements(self, tmp_path):
        path = _trace_export(tmp_path)
        lines = va.validate_trace_export(
            path,
            require_spans=("service.http.request", "worker.execute"),
            require_origins=("server", "worker"),
            require_links=("coalesce-fan-in",),
        )
        assert any("ok" in line for line in lines)
        assert any("worker" in line for line in lines)

    def test_missing_required_span_fails(self, tmp_path):
        path = _trace_export(tmp_path)
        with pytest.raises(va.ValidationError, match="optimal.compute"):
            va.validate_trace_export(
                path, require_spans=("optimal.compute_profiles",)
            )

    def test_missing_required_origin_fails(self, tmp_path):
        path = _trace_export(tmp_path)
        with pytest.raises(va.ValidationError, match="supervisor"):
            va.validate_trace_export(path, require_origins=("supervisor",))

    def test_missing_required_link_fails(self, tmp_path):
        path = _trace_export(tmp_path)
        with pytest.raises(va.ValidationError, match="coalesce"):
            va.validate_trace_export(path, require_links=("coalesce",))

    def test_truncated_document_fails(self, tmp_path):
        path = _trace_export(
            tmp_path,
            mutate=lambda text: "\n".join(text.splitlines()[:-1]) + "\n",
        )
        with pytest.raises(va.ValidationError, match="do not match"):
            va.validate_trace_export(path)

    def test_missing_file_fails(self, tmp_path):
        with pytest.raises(va.ValidationError, match="cannot read"):
            va.validate_trace_export(tmp_path / "absent.jsonl")


def _lint_report(tmp_path, source="x = 1\n", path_name="clean.py", jobs=1):
    from repro.lint import lint_paths, render_json

    tree = tmp_path / "tree" / "src" / "repro" / "core"
    tree.mkdir(parents=True, exist_ok=True)
    (tree / path_name).write_text(source, encoding="utf-8")
    findings, files = lint_paths([str(tmp_path / "tree")], jobs=jobs)
    target = tmp_path / "lint-report.json"
    target.write_text(render_json(findings, files), encoding="utf-8")
    return target


class TestLintReport:
    def test_clean_report_passes(self, tmp_path):
        path = _lint_report(tmp_path)
        lines = va.validate_lint_report(path, expect_clean=True)
        assert any("ok" in line for line in lines)

    def test_report_with_findings_passes_without_expect_clean(self, tmp_path):
        path = _lint_report(
            tmp_path, source="import time\n\ndef f():\n    return time.time()\n"
        )
        lines = va.validate_lint_report(path)
        # REP004 (wall clock) + REP005 (missing annotations) both fire.
        assert any("2 finding(s)" in line for line in lines)
        with pytest.raises(va.ValidationError, match="expected a clean"):
            va.validate_lint_report(path, expect_clean=True)

    def test_wrong_schema_fails(self, tmp_path):
        path = _lint_report(tmp_path)
        payload = json.loads(path.read_text())
        payload["schema"] = "repro.lint/0"
        path.write_text(json.dumps(payload))
        with pytest.raises(va.ValidationError, match="schema"):
            va.validate_lint_report(path)

    def test_stale_registry_version_fails(self, tmp_path):
        path = _lint_report(tmp_path)
        payload = json.loads(path.read_text())
        payload["registry"]["version"] = 1
        path.write_text(json.dumps(payload))
        with pytest.raises(va.ValidationError, match="registry version"):
            va.validate_lint_report(path)

    def test_rule_list_mismatch_fails(self, tmp_path):
        path = _lint_report(tmp_path)
        payload = json.loads(path.read_text())
        payload["registry"]["rules"] = payload["registry"]["rules"][:-1]
        path.write_text(json.dumps(payload))
        with pytest.raises(va.ValidationError, match="registry rules"):
            va.validate_lint_report(path)

    def test_counts_mismatch_fails(self, tmp_path):
        path = _lint_report(
            tmp_path, source="import time\n\ndef f():\n    return time.time()\n"
        )
        payload = json.loads(path.read_text())
        payload["counts"] = {}
        path.write_text(json.dumps(payload))
        with pytest.raises(va.ValidationError, match="do not match"):
            va.validate_lint_report(path)


def _lockwatch_export(tmp_path):
    import threading

    from repro.obs import LockWatch

    watch = LockWatch()
    with watch.watching():
        a = threading.Lock()
        b = threading.Lock()
        with a:
            with b:
                pass
    return watch.export_jsonl(tmp_path / "LOCKWATCH_unit.jsonl")


class TestLockwatchExport:
    def test_valid_export_passes(self, tmp_path):
        path = _lockwatch_export(tmp_path)
        lines = va.validate_lockwatch_export(path, forbid_inversions=True)
        assert any("0 inversions" in line for line in lines)

    def test_truncated_export_fails(self, tmp_path):
        path = _lockwatch_export(tmp_path)
        text = path.read_text(encoding="utf-8")
        path.write_text("\n".join(text.splitlines()[:-1]) + "\n")
        with pytest.raises(va.ValidationError, match="declares"):
            va.validate_lockwatch_export(path)

    def test_missing_file_fails(self, tmp_path):
        with pytest.raises(va.ValidationError, match="cannot read"):
            va.validate_lockwatch_export(tmp_path / "absent.jsonl")


def _engine_summary(phase, **overrides):
    datasets = {
        "infocom05": {
            "nodes": 41, "contacts": 22459, "sources": 41,
            "scalar_s": 4.0, "vec_s": 1.0, "speedup": 4.0,
            "parity_sha256": "a" * 64,
        },
        "reality": {
            "nodes": 97, "contacts": 54667, "sources": 97,
            "scalar_s": 6.0, "vec_s": 2.0, "speedup": 3.0,
            "parity_sha256": "b" * 64,
        },
    }
    summary = {
        "phase": phase,
        "workers": 4,
        "hop_bounds": [1, 2, 3],
        "datasets": datasets,
        "scalar_s": 10.0,
        "vec_s": 3.0,
        "speedup": 10.0 / 3.0,
        "parity_ok": True,
    }
    summary.update(overrides)
    return summary


def _engine_counters(phase):
    if phase == "cold":
        return {
            "engine.pool.broadcasts": 2,
            "engine.pool.broadcast_bytes": 900_000,
            "engine.pool.broadcast_reused": 2,
            "engine.pool.task_bytes": 7_000,
            "engine.pool.spawns": 4,
        }
    return {
        "engine.pool.broadcasts": 0,
        "engine.pool.broadcast_reused": 4,
        "engine.pool.task_bytes": 7_000,
    }


def _engine_artifact(tmp_path, phase, summary=None, counters=None):
    payload = _bench_payload(bench=f"engine.{phase}")
    payload["manifest"]["params"] = {
        "engine": _engine_summary(phase) if summary is None else summary
    }
    payload["metrics"]["counters"] = (
        _engine_counters(phase) if counters is None else counters
    )
    return _write(tmp_path / f"BENCH_engine.{phase}.json", payload)


class TestEnginePair:
    def _pair(self, tmp_path, **kwargs):
        cold = _engine_artifact(tmp_path, "cold", **kwargs)
        warm = _engine_artifact(tmp_path, "warm")
        return cold, warm

    def test_clean_pair_passes(self, tmp_path):
        cold, warm = self._pair(tmp_path)
        lines = va.validate_engine_pair(cold, warm, min_speedup=2.0)
        assert any("cold: 3.33x" in line for line in lines)
        assert any("0 re-broadcasts" in line for line in lines)
        assert any("2 dataset hash(es)" in line for line in lines)

    def test_missing_summary_fails(self, tmp_path):
        payload = _bench_payload(bench="engine.cold")
        payload["manifest"]["params"] = {}
        cold = _write(tmp_path / "cold.json", payload)
        warm = _engine_artifact(tmp_path, "warm")
        with pytest.raises(va.ValidationError, match="engine summary"):
            va.validate_engine_pair(cold, warm)

    def test_parity_flag_false_fails(self, tmp_path):
        summary = _engine_summary("cold", parity_ok=False)
        cold, warm = self._pair(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="parity_ok"):
            va.validate_engine_pair(cold, warm)

    def test_nonpositive_speedup_fails(self, tmp_path):
        summary = _engine_summary("cold")
        summary["datasets"] = dict(summary["datasets"])
        summary["datasets"]["reality"] = dict(
            summary["datasets"]["reality"], vec_s=0.0
        )
        cold, warm = self._pair(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="positive"):
            va.validate_engine_pair(cold, warm)

    def test_missing_parity_hash_fails(self, tmp_path):
        summary = _engine_summary("cold")
        summary["datasets"] = dict(summary["datasets"])
        summary["datasets"]["reality"] = dict(summary["datasets"]["reality"])
        del summary["datasets"]["reality"]["parity_sha256"]
        cold, warm = self._pair(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="parity_sha256"):
            va.validate_engine_pair(cold, warm)

    def test_hash_drift_between_runs_fails(self, tmp_path):
        summary = _engine_summary("cold")
        summary["datasets"] = dict(summary["datasets"])
        summary["datasets"]["reality"] = dict(
            summary["datasets"]["reality"], parity_sha256="c" * 64
        )
        cold, warm = self._pair(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="deterministic"):
            va.validate_engine_pair(cold, warm)

    def test_dataset_roster_mismatch_fails(self, tmp_path):
        summary = _engine_summary("cold")
        summary["datasets"] = {
            "infocom05": summary["datasets"]["infocom05"]
        }
        cold, warm = self._pair(tmp_path, summary=summary)
        with pytest.raises(va.ValidationError, match="roster"):
            va.validate_engine_pair(cold, warm)

    def test_wrong_cold_broadcast_count_fails(self, tmp_path):
        counters = dict(_engine_counters("cold"))
        counters["engine.pool.broadcasts"] = 4
        cold, warm = self._pair(tmp_path, counters=counters)
        with pytest.raises(va.ValidationError, match="exactly one"):
            va.validate_engine_pair(cold, warm)

    def test_task_traffic_exceeding_broadcast_fails(self, tmp_path):
        counters = dict(_engine_counters("cold"))
        counters["engine.pool.task_bytes"] = 10_000_000
        cold, warm = self._pair(tmp_path, counters=counters)
        with pytest.raises(va.ValidationError, match="dwarfed"):
            va.validate_engine_pair(cold, warm)

    def test_warm_rebroadcast_fails(self, tmp_path):
        cold = _engine_artifact(tmp_path, "cold")
        warm = _engine_artifact(
            tmp_path, "warm", counters=_engine_counters("cold")
        )
        with pytest.raises(va.ValidationError, match="re-broadcast"):
            va.validate_engine_pair(cold, warm)

    def test_warm_without_reuse_fails(self, tmp_path):
        cold = _engine_artifact(tmp_path, "cold")
        warm = _engine_artifact(
            tmp_path, "warm", counters={"engine.pool.broadcasts": 0}
        )
        with pytest.raises(va.ValidationError, match="reused fewer"):
            va.validate_engine_pair(cold, warm)

    def test_min_speedup_gate_fails(self, tmp_path):
        cold, warm = self._pair(tmp_path)
        with pytest.raises(va.ValidationError, match="below the required"):
            va.validate_engine_pair(cold, warm, min_speedup=5.0)


class TestCli:
    def test_bench_subcommand_exit_codes(self, tmp_path, capsys):
        _write(tmp_path / "BENCH_a.json", _bench_payload())
        assert va.main(["bench", str(tmp_path)]) == 0
        assert "ok" in capsys.readouterr().out
        empty = tmp_path / "empty"
        empty.mkdir()
        assert va.main(["bench", str(empty)]) == 1
        assert "no BENCH_" in capsys.readouterr().err

    def test_cache_rerun_subcommand(self, tmp_path, capsys):
        cold = _write(
            tmp_path / "cold.json", _cached_payload({"profiles.cache.miss": 2})
        )
        warm = _write(
            tmp_path / "warm.json", _cached_payload({"profiles.cache.hit": 2})
        )
        assert va.main(["cache-rerun", str(cold), str(warm)]) == 0
        assert "warm run hits" in capsys.readouterr().out

    def test_trace_subcommand_exit_codes(self, tmp_path, capsys):
        path = _trace_export(tmp_path)
        argv = [
            "trace", str(path),
            "--require-span", "worker.execute",
            "--require-origin", "worker",
            "--require-link", "coalesce-fan-in",
        ]
        assert va.main(argv) == 0
        assert "ok" in capsys.readouterr().out
        assert va.main(["trace", str(path), "--require-span", "nope"]) == 1
        assert "nope" in capsys.readouterr().err

    def test_lint_subcommand_exit_codes(self, tmp_path, capsys):
        clean = _lint_report(tmp_path)
        assert va.main(["lint", str(clean), "--expect-clean"]) == 0
        assert "ok" in capsys.readouterr().out
        dirty = _lint_report(
            tmp_path,
            source="import time\n\ndef f():\n    return time.time()\n",
            path_name="dirty.py",
        )
        assert va.main(["lint", str(dirty), "--expect-clean"]) == 1
        assert "expected a clean" in capsys.readouterr().err

    def test_engine_subcommand_exit_codes(self, tmp_path, capsys):
        cold = _engine_artifact(tmp_path, "cold")
        warm = _engine_artifact(tmp_path, "warm")
        argv = ["engine", str(cold), str(warm), "--min-speedup", "2.0"]
        assert va.main(argv) == 0
        assert "parity" in capsys.readouterr().out
        argv = ["engine", str(cold), str(warm), "--min-speedup", "5.0"]
        assert va.main(argv) == 1
        assert "below the required" in capsys.readouterr().err

    def test_lockwatch_subcommand_exit_codes(self, tmp_path, capsys):
        path = _lockwatch_export(tmp_path)
        assert va.main(["lockwatch", str(path), "--forbid-inversions"]) == 0
        assert "ok" in capsys.readouterr().out
        assert (
            va.main(["lockwatch", str(path), "--max-long-holds", "-1"]) == 1
        )
        assert "long-hold" in capsys.readouterr().err
