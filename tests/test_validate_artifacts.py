"""Tests for benchmarks/validate_artifacts.py — the artefact checks CI
runs after the smoke benchmarks (extracted from inline workflow
heredocs so they can be exercised here)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "validate_artifacts", _ROOT / "benchmarks" / "validate_artifacts.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


va = _load_validator()


def _bench_payload(**overrides):
    payload = {
        "schema": "repro.bench/1",
        "bench": "fig9_delay_cdf",
        "seed": 7,
        "scale": 0.05,
        "exit_code": 0,
        "metrics": {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timers": {},
        },
        "manifest": {
            "runtime_s": 1.25,
            "python_version": "3.11.0",
            "started_unix": 1700000000.0,
        },
    }
    payload.update(overrides)
    return payload


def _write(path, payload):
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestBenchDir:
    def test_valid_directory_reports_each_artifact(self, tmp_path):
        _write(tmp_path / "BENCH_a.json", _bench_payload(bench="a"))
        _write(tmp_path / "BENCH_b.json", _bench_payload(bench="b"))
        lines = va.validate_bench_dir(tmp_path)
        assert len(lines) == 2
        assert all("ok" in line for line in lines)

    def test_empty_directory_fails(self, tmp_path):
        with pytest.raises(va.ValidationError, match="no BENCH_"):
            va.validate_bench_dir(tmp_path)

    def test_malformed_payload_fails(self, tmp_path):
        _write(tmp_path / "BENCH_bad.json", _bench_payload(schema="wrong"))
        with pytest.raises(va.ValidationError, match="bad schema"):
            va.validate_bench_dir(tmp_path)

    def test_unparseable_json_fails(self, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        with pytest.raises(va.ValidationError, match="cannot load"):
            va.validate_bench_dir(tmp_path)


def _cached_payload(counters):
    metrics = {"counters": counters, "gauges": {}, "histograms": {}, "timers": {}}
    return _bench_payload(metrics=metrics)


class TestCacheRerun:
    def _pair(self, tmp_path, cold_counters, warm_counters):
        cold = _write(tmp_path / "cold.json", _cached_payload(cold_counters))
        warm = _write(tmp_path / "warm.json", _cached_payload(warm_counters))
        return cold, warm

    def test_clean_cold_warm_pair_passes(self, tmp_path):
        cold, warm = self._pair(
            tmp_path,
            {"profiles.cache.miss": 6},
            {"profiles.cache.hit": 6, "profiles.cache.miss": 0},
        )
        lines = va.validate_cache_rerun(cold, warm)
        assert any("misses: 6" in line for line in lines)
        assert any("hits:   6" in line for line in lines)

    def test_cold_run_without_misses_fails(self, tmp_path):
        cold, warm = self._pair(tmp_path, {}, {"profiles.cache.hit": 6})
        with pytest.raises(va.ValidationError, match="no cache misses"):
            va.validate_cache_rerun(cold, warm)

    def test_warm_run_with_misses_fails(self, tmp_path):
        cold, warm = self._pair(
            tmp_path,
            {"profiles.cache.miss": 6},
            {"profiles.cache.hit": 4, "profiles.cache.miss": 2},
        )
        with pytest.raises(va.ValidationError, match="still missed"):
            va.validate_cache_rerun(cold, warm)

    def test_warm_run_with_invalidations_fails(self, tmp_path):
        cold, warm = self._pair(
            tmp_path,
            {"profiles.cache.miss": 6},
            {"profiles.cache.hit": 6, "profiles.cache.invalid": 1},
        )
        with pytest.raises(va.ValidationError, match="invalidated"):
            va.validate_cache_rerun(cold, warm)

    def test_nonzero_exit_code_fails(self, tmp_path):
        cold = _write(
            tmp_path / "cold.json",
            _bench_payload(exit_code=3),
        )
        warm = _write(tmp_path / "warm.json", _cached_payload({}))
        with pytest.raises(va.ValidationError, match="exit_code"):
            va.validate_cache_rerun(cold, warm)


class TestCli:
    def test_bench_subcommand_exit_codes(self, tmp_path, capsys):
        _write(tmp_path / "BENCH_a.json", _bench_payload())
        assert va.main(["bench", str(tmp_path)]) == 0
        assert "ok" in capsys.readouterr().out
        empty = tmp_path / "empty"
        empty.mkdir()
        assert va.main(["bench", str(empty)]) == 1
        assert "no BENCH_" in capsys.readouterr().err

    def test_cache_rerun_subcommand(self, tmp_path, capsys):
        cold = _write(
            tmp_path / "cold.json", _cached_payload({"profiles.cache.miss": 2})
        )
        warm = _write(
            tmp_path / "warm.json", _cached_payload({"profiles.cache.hit": 2})
        )
        assert va.main(["cache-rerun", str(cold), str(warm)]) == 0
        assert "warm run hits" in capsys.readouterr().out
