"""Property test: epidemic forwarding is exactly flooding.

Pure epidemic (no caps) must deliver at the same instant as the flooding
baseline for every start time — and with a hop cap k, at the same instant
as hop-bounded flooding... *no*: hop-capped epidemic is greedier than
optimal (a copy that arrives early with many hops can block a later copy
with fewer hops), so it can only be slower or equal.  Both invariants are
checked here.
"""

import math

from hypothesis import HealthCheck, given, settings

from repro.baselines.event_flooding import sample_times
from repro.baselines.flooding import earliest_delivery
from repro.forwarding import Epidemic, Message, simulate_forwarding

from ..conftest import small_networks

shared = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@shared
@given(net=small_networks(max_nodes=6, max_contacts=15))
def test_uncapped_epidemic_equals_flooding(net):
    probes = sample_times(net)[::3]
    for source in net.nodes:
        for destination in net.nodes:
            if source == destination:
                continue
            for t in probes:
                expected = earliest_delivery(net, source, destination, t)
                report = simulate_forwarding(
                    net, Message(source, destination, t), Epidemic()
                )
                if math.isinf(expected):
                    assert not report.delivered
                else:
                    assert report.delivered
                    assert report.delivery_time == expected


@shared
@given(net=small_networks(max_nodes=6, max_contacts=15))
def test_capped_epidemic_never_beats_optimal(net):
    probes = sample_times(net)[::4]
    for source in net.nodes:
        for destination in net.nodes:
            if source == destination:
                continue
            for t in probes[:4]:
                for cap in (1, 2, 3):
                    optimal = earliest_delivery(net, source, destination, t, cap)
                    report = simulate_forwarding(
                        net, Message(source, destination, t), Epidemic(max_hops=cap)
                    )
                    if report.delivered:
                        assert report.hops <= cap
                        assert report.delivery_time >= optimal - 1e-9
