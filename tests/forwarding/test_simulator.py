"""Unit tests for the forwarding simulator and algorithms."""

import math

import pytest

from repro.baselines.flooding import earliest_delivery
from repro.core import Contact, TemporalNetwork
from repro.forwarding import (
    DirectDelivery,
    Epidemic,
    Message,
    SprayAndWait,
    TwoHopRelay,
    simulate_forwarding,
    simulate_workload,
)


class TestMessage:
    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            Message(source=1, destination=1, created_at=0.0)


class TestEpidemic:
    def test_matches_flooding_on_line(self, line_network):
        message = Message(source=0, destination=3, created_at=0.0)
        report = simulate_forwarding(line_network, message, Epidemic())
        assert report.delivered
        assert report.delivery_time == earliest_delivery(line_network, 0, 3, 0.0)
        assert report.hops == 3
        assert report.delay == 40.0

    def test_matches_flooding_with_hop_cap(self, line_network):
        message = Message(source=0, destination=3, created_at=0.0)
        capped = simulate_forwarding(line_network, message, Epidemic(max_hops=2))
        assert not capped.delivered
        assert capped.delay == math.inf

    def test_long_contact_chain(self, overlap_network):
        message = Message(source=0, destination=3, created_at=15.0)
        report = simulate_forwarding(overlap_network, message, Epidemic())
        assert report.delivered
        assert report.delivery_time == 15.0
        assert report.hops == 3

    def test_timeout(self, line_network):
        message = Message(source=0, destination=3, created_at=0.0)
        report = simulate_forwarding(
            line_network, message, Epidemic(timeout=25.0)
        )
        # Relay to node 2 at t=20 is fine, but the final hop at t=40
        # exceeds the 25 s age limit.
        assert not report.delivered

    def test_copy_cost_counts_infected_nodes(self, overlap_network):
        message = Message(source=0, destination=3, created_at=15.0)
        report = simulate_forwarding(overlap_network, message, Epidemic())
        assert report.copies == 4  # source + relays + destination
        assert report.transmissions == 3

    def test_created_after_trace_fails(self, line_network):
        message = Message(source=0, destination=3, created_at=1000.0)
        report = simulate_forwarding(line_network, message, Epidemic())
        assert not report.delivered
        assert report.copies == 1

    def test_unknown_endpoints(self, line_network):
        with pytest.raises(KeyError):
            simulate_forwarding(
                line_network, Message(99, 3, 0.0), Epidemic()
            )
        with pytest.raises(KeyError):
            simulate_forwarding(
                line_network, Message(0, 99, 0.0), Epidemic()
            )

    def test_horizon_cuts_late_deliveries(self, line_network):
        message = Message(source=0, destination=3, created_at=0.0)
        report = simulate_forwarding(
            line_network, message, Epidemic(), horizon=30.0
        )
        assert not report.delivered


class TestDirectDelivery:
    def test_only_direct_contact_delivers(self, line_network):
        direct = simulate_forwarding(
            line_network, Message(0, 1, 0.0), DirectDelivery()
        )
        assert direct.delivered
        assert direct.hops == 1
        relayed = simulate_forwarding(
            line_network, Message(0, 2, 0.0), DirectDelivery()
        )
        assert not relayed.delivered

    def test_copy_cost_is_minimal(self, line_network):
        report = simulate_forwarding(
            line_network, Message(0, 1, 0.0), DirectDelivery()
        )
        assert report.copies == 2
        assert report.transmissions == 1


class TestTwoHopRelay:
    def test_two_hops_reachable(self, line_network):
        report = simulate_forwarding(
            line_network, Message(0, 2, 0.0), TwoHopRelay()
        )
        assert report.delivered
        assert report.hops == 2

    def test_three_hops_not_reachable(self, line_network):
        report = simulate_forwarding(
            line_network, Message(0, 3, 0.0), TwoHopRelay()
        )
        assert not report.delivered


class TestSprayAndWait:
    def test_validation(self):
        with pytest.raises(ValueError):
            SprayAndWait(copies=0)

    def test_copies_bounded_by_tokens(self):
        # A star where the hub (source) meets many spokes, then one spoke
        # meets the destination much later.
        contacts = [Contact(0.0, 10.0, 0, i) for i in range(1, 8)]
        contacts.append(Contact(50.0, 60.0, 1, 9))
        net = TemporalNetwork(contacts, nodes=list(range(10)))
        report = simulate_forwarding(
            net, Message(0, 9, 0.0), SprayAndWait(copies=4)
        )
        assert report.copies <= 4 + 1  # tokens bound relays; +1 for dest

    def test_single_copy_behaves_like_direct(self, line_network):
        report = simulate_forwarding(
            line_network, Message(0, 2, 0.0), SprayAndWait(copies=1)
        )
        assert not report.delivered

    def test_delivers_to_destination_regardless_of_tokens(self, line_network):
        report = simulate_forwarding(
            line_network, Message(0, 1, 0.0), SprayAndWait(copies=1)
        )
        assert report.delivered


class TestWorkload:
    def test_aggregates(self, line_network):
        messages = [
            Message(0, 3, 0.0),
            Message(0, 3, 11.0),  # misses the first contact: undeliverable
            Message(1, 3, 0.0),
        ]
        result = simulate_workload(line_network, messages, Epidemic())
        assert result.success_rate == pytest.approx(2 / 3)
        assert result.mean_delay() == pytest.approx((40.0 + 40.0) / 2)
        assert result.mean_hops() == pytest.approx(2.5)
        assert result.mean_copies() > 0

    def test_empty_workload(self, line_network):
        result = simulate_workload(line_network, [], Epidemic())
        assert result.success_rate == 0.0
        assert math.isnan(result.mean_delay())
