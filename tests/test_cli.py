"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.traces.format import read_contacts


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.txt"
    code = main(
        ["generate", "infocom05", str(path), "--seed", "2", "--scale", "0.02"]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_readable_trace(self, trace_file, capsys):
        net = read_contacts(trace_file)
        assert len(net) == 41
        assert net.num_contacts > 0


class TestSummarize:
    def test_prints_table(self, trace_file, capsys):
        assert main(["summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "devices" in out
        assert "41" in out


class TestDiameter:
    def test_computes_value(self, trace_file, capsys):
        # The tiny test-scale trace is very sparse, so contemporaneous
        # chains push the 99%-diameter above the paper's 4-6 range; allow
        # plenty of hops.
        code = main(
            ["diameter", str(trace_file), "--max-hops", "18", "--grid-points", "12"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "diameter:" in out

    def test_insufficient_bounds_extended_from_fixpoint(self, tmp_path, capsys):
        # A 3-hop chain with max-hops 1 cannot reach the flooding optimum
        # with the recorded bounds, but the unbounded fixpoint (3 rounds)
        # bounds the true diameter — the command must report it, exit 0.
        path = tmp_path / "chain.txt"
        path.write_text(
            "0 1 0 100\n1 2 0 100\n2 3 0 100\n"
        )
        code = main(["diameter", str(path), "--max-hops", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "extending hop bounds" in out
        assert "diameter: 3 hops" in out

    def test_workers_flag(self, tmp_path, capsys):
        path = tmp_path / "chain.txt"
        path.write_text("0 1 0 100\n1 2 0 100\n2 3 0 100\n")
        code = main(["diameter", str(path), "--max-hops", "4", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "diameter: 3 hops" in out

    def test_cache_dir_reuses_profiles(self, tmp_path, capsys):
        path = tmp_path / "chain.txt"
        path.write_text("0 1 0 100\n1 2 0 100\n2 3 0 100\n")
        cache = tmp_path / "cache"
        first = main(
            ["diameter", str(path), "--max-hops", "4", "--cache-dir", str(cache)]
        )
        out_first = capsys.readouterr().out
        entries = sorted(p.name for p in cache.iterdir())
        assert first == 0 and len(entries) == 1
        second = main(
            ["diameter", str(path), "--max-hops", "4", "--cache-dir", str(cache)]
        )
        out_second = capsys.readouterr().out
        assert second == 0
        assert out_first == out_second
        assert sorted(p.name for p in cache.iterdir()) == entries


class TestDelayCdf:
    def test_prints_columns(self, trace_file, capsys):
        assert main(["delay-cdf", str(trace_file), "--max-hops", "2"]) == 0
        out = capsys.readouterr().out
        assert "k=1" in out and "k=2" in out and "k=inf" in out


class TestArgumentValidation:
    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_workers_must_be_positive(self, trace_file, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["diameter", str(trace_file), "--workers", value])
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_workers_must_be_an_integer(self, trace_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["diameter", str(trace_file), "--workers", "two"])
        assert exc.value.code == 2
        assert "expected an integer" in capsys.readouterr().err


class TestLogLevel:
    """The shared ``--log-level`` flag (and its $REPRO_LOG fallback)."""

    @pytest.fixture(autouse=True)
    def _reset_level(self, monkeypatch):
        from repro.obs.log import DEFAULT_LEVEL, configure

        monkeypatch.delenv("REPRO_LOG", raising=False)
        yield
        configure(level=DEFAULT_LEVEL)

    def test_flag_sets_logger_threshold(self, trace_file):
        from repro.obs.log import get_logger

        assert main(["--log-level", "debug", "summarize", str(trace_file)]) == 0
        assert get_logger("repro.cli").level == "debug"

    def test_invalid_level_rejected_like_positive_int(self, trace_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--log-level", "loud", "summarize", str(trace_file)])
        assert exc.value.code == 2
        assert "unknown log level" in capsys.readouterr().err

    def test_env_var_fallback(self, trace_file, monkeypatch):
        from repro.obs.log import get_logger

        monkeypatch.setenv("REPRO_LOG", "warning")
        assert main(["summarize", str(trace_file)]) == 0
        assert get_logger("repro.cli").level == "warning"

    def test_flag_overrides_env(self, trace_file, monkeypatch):
        from repro.obs.log import get_logger

        monkeypatch.setenv("REPRO_LOG", "error")
        assert main(["--log-level", "debug", "summarize", str(trace_file)]) == 0
        assert get_logger("repro.cli").level == "debug"


class TestWorkerParity:
    """Parallel profile computation must be invisible in the output:
    ``--workers 2`` byte-identical to ``--workers 1``."""

    @pytest.mark.parametrize(
        "command,extra",
        [
            ("diameter", ["--max-hops", "6", "--grid-points", "8"]),
            ("delay-cdf", ["--max-hops", "3"]),
        ],
    )
    def test_workers_do_not_change_output(
        self, trace_file, capsys, command, extra
    ):
        assert main([command, str(trace_file), *extra, "--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([command, str(trace_file), *extra, "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestShardParity:
    """Source-sharded execution must be invisible in the output:
    ``--shards 4`` byte-identical to ``--shards 1``."""

    @pytest.mark.parametrize(
        "command,extra",
        [
            ("diameter", ["--max-hops", "6", "--grid-points", "8"]),
            ("delay-cdf", ["--max-hops", "3"]),
        ],
    )
    def test_shards_do_not_change_output(
        self, trace_file, capsys, command, extra
    ):
        assert main([command, str(trace_file), *extra, "--shards", "1"]) == 0
        monolithic = capsys.readouterr().out
        assert main([command, str(trace_file), *extra, "--shards", "4"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == monolithic

    def test_sharded_cache_checkpoints_and_resumes(
        self, trace_file, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        args = [
            "delay-cdf", str(trace_file), "--max-hops", "2",
            "--shards", "4", "--cache-dir", str(cache),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        # One content-addressed entry per shard: each is an independent
        # resume point.
        assert len(list(cache.glob("profiles-*.npz"))) == 4
        assert main(args) == 0
        assert capsys.readouterr().out == first

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_shards_must_be_positive(self, trace_file, value, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["diameter", str(trace_file), "--shards", value])
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err


class TestEngineParity:
    """Engine selection must be invisible in the output: ``--engine vec``
    byte-identical to ``--engine scalar`` (and to the default)."""

    @pytest.mark.parametrize(
        "command,extra",
        [
            ("diameter", ["--max-hops", "6", "--grid-points", "8"]),
            ("delay-cdf", ["--max-hops", "3"]),
        ],
    )
    def test_engine_does_not_change_output(
        self, trace_file, capsys, command, extra
    ):
        assert main(
            [command, str(trace_file), *extra, "--engine", "scalar"]
        ) == 0
        scalar = capsys.readouterr().out
        assert main(
            [command, str(trace_file), *extra, "--engine", "vec"]
        ) == 0
        vec = capsys.readouterr().out
        assert main([command, str(trace_file), *extra]) == 0
        auto = capsys.readouterr().out
        assert vec == scalar
        assert auto == scalar

    def test_engine_composes_with_workers_and_shards(
        self, trace_file, capsys
    ):
        args = ["delay-cdf", str(trace_file), "--max-hops", "3"]
        assert main([*args, "--engine", "scalar"]) == 0
        reference = capsys.readouterr().out
        assert main(
            [*args, "--engine", "vec", "--workers", "2", "--shards", "2"]
        ) == 0
        assert capsys.readouterr().out == reference

    def test_unknown_engine_rejected(self, trace_file, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["diameter", str(trace_file), "--engine", "turbo"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestDegenerateTrace:
    """An empty or zero-span trace must fail loudly, not emit nonsense
    statistics over a zero-measure observation window."""

    @pytest.mark.parametrize("command", ["diameter", "delay-cdf"])
    def test_empty_trace_rejected(self, tmp_path, command, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("# no contacts\n")
        assert main([command, str(empty)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "cli.trace.degenerate" in captured.err
        assert "no contacts" in captured.err

    @pytest.mark.parametrize("command", ["diameter", "delay-cdf"])
    def test_zero_span_trace_rejected(self, tmp_path, command, capsys):
        point = tmp_path / "point.txt"
        point.write_text("0 1 50 50\n")
        assert main([command, str(point)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "cli.trace.degenerate" in captured.err
        assert "zero length" in captured.err


class TestTheory:
    def test_prints_constants(self, capsys):
        assert main(["theory", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "short" in out and "long" in out
        assert "2.466" in out


class TestObservabilityFlags:
    def test_metrics_trace_manifest_written(self, trace_file, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        spans = tmp_path / "spans.jsonl"
        manifest = tmp_path / "manifest.json"
        code = main(
            [
                "--metrics", str(metrics),
                "--trace", str(spans),
                "--manifest", str(manifest),
                "delay-cdf", str(trace_file), "--max-hops", "2",
            ]
        )
        assert code == 0

        data = json.loads(metrics.read_text())
        counters = data["counters"]
        # Per-hop-bound frontier counters from the profile DP.
        assert counters["optimal.frontier_insertions{hop=1}"] > 0
        assert counters["optimal.frontier_insertions{hop=2}"] > 0
        assert counters["optimal.sources"] == 41
        # Span timings cover both the trace load and the computation.
        assert data["timers"]["traces.read_contacts"]["wall_count"] == 1
        assert data["timers"]["optimal.compute_profiles"]["wall_sum"] > 0

        names = set()
        for line in spans.read_text().splitlines():
            names.add(json.loads(line)["name"])
        assert {"traces.read_contacts", "optimal.compute_profiles"} <= names

        run = json.loads(manifest.read_text())
        assert run["schema"] == "repro.manifest/1"
        assert run["runtime_s"] > 0
        assert run["params"]["command"] == "delay-cdf"
        assert run["params"]["exit_code"] == 0
        assert run["python_version"]

    def test_flags_off_write_nothing(self, trace_file, tmp_path, capsys):
        assert main(["summarize", str(trace_file)]) == 0
        # Only the input trace written by the fixture — no obs artefacts.
        assert [p.name for p in tmp_path.iterdir()] == ["trace.txt"]


class TestJourneys:
    def test_prints_three_journeys(self, tmp_path, capsys):
        path = tmp_path / "chain.txt"
        path.write_text("0 1 0 100\n1 2 50 150\n")
        assert main(["journeys", str(path), "0", "2", "--at", "10"]) == 0
        out = capsys.readouterr().out
        assert "foremost" in out and "shortest" in out and "fastest" in out

    def test_unreachable_pair(self, tmp_path, capsys):
        path = tmp_path / "pair.txt"
        path.write_text("0 1 0 10\n2 3 0 10\n")
        assert main(["journeys", str(path), "0", "3"]) == 0
        assert "unreachable" in capsys.readouterr().out
