"""End-to-end integration tests across the whole pipeline.

Small-scale versions of the paper's workflow: synthesise a data set,
compute profiles, aggregate CDFs, measure the diameter, and check the
findings against the forwarding simulator.
"""

import math

import numpy as np
import pytest

from repro.analysis.grids import paper_delay_grid
from repro.core import compute_profiles, delay_cdf, diameter
from repro.forwarding import Epidemic, Message, simulate_forwarding
from repro.traces import datasets
from repro.traces.filters import remove_random, remove_short


@pytest.fixture(scope="module")
def conference():
    return datasets.infocom05(seed=2, scale=0.03)


@pytest.fixture(scope="module")
def profiles(conference):
    return compute_profiles(conference, hop_bounds=tuple(range(1, 13)))


@pytest.fixture(scope="module")
def grid(conference):
    return paper_delay_grid(points=15, t_min=120.0,
                            t_max=min(7 * 86400.0, conference.duration))


class TestDiameterPipeline:
    def test_diameter_is_small(self, profiles, grid):
        result = diameter(profiles, grid, eps=0.01,
                          hop_bounds=tuple(range(1, 13)))
        assert result.value is not None
        # "The network diameter generally varies between 3 and 6 hops"
        # at paper scale; tiny synthetic traces run a little higher but
        # stay far below the node count.
        assert result.value <= 12 < len(profiles.network)

    def test_relaxing_eps_never_increases_diameter(self, profiles, grid):
        strict = diameter(profiles, grid, eps=0.01,
                          hop_bounds=tuple(range(1, 13)))
        loose = diameter(profiles, grid, eps=0.10,
                         hop_bounds=tuple(range(1, 13)))
        assert loose.value <= strict.value

    def test_cdf_saturates_at_fixpoint_bound(self, profiles, grid):
        deep = delay_cdf(profiles, grid, max_hops=12)
        unbounded = delay_cdf(profiles, grid, max_hops=None)
        if profiles.max_rounds_run <= 12:
            assert np.allclose(deep.values, unbounded.values)

    def test_forwarding_agrees_with_profiles(self, conference, profiles):
        """Epidemic delivery time equals the profile's delivery function."""
        nodes = list(conference.nodes)
        t0, _ = conference.span
        rng = np.random.default_rng(3)
        for _ in range(10):
            s, d = rng.choice(len(nodes), size=2, replace=False)
            source, destination = nodes[int(s)], nodes[int(d)]
            created = t0 + float(rng.uniform(0, conference.duration / 2))
            promised = profiles.profile(source, destination, None).delivery_time(
                created
            )
            report = simulate_forwarding(
                conference, Message(source, destination, created), Epidemic()
            )
            if math.isinf(promised):
                assert not report.delivered
            else:
                assert report.delivered
                assert report.delivery_time == pytest.approx(promised)


class TestSectionSixPipeline:
    def test_random_removal_degrades_success(self, conference, grid):
        rng = np.random.default_rng(0)
        thinned = remove_random(conference, 0.9, rng)
        full_profiles = compute_profiles(conference, hop_bounds=(4,))
        thin_profiles = compute_profiles(thinned, hop_bounds=(4,))
        full = delay_cdf(full_profiles, grid, max_hops=None)
        thin = delay_cdf(thin_profiles, grid, max_hops=None)
        assert thin.values[0] <= full.values[0] + 1e-12
        assert thin.success_at_infinity <= full.success_at_infinity + 1e-12

    def test_duration_threshold_keeps_subset(self, conference):
        thinned = remove_short(conference, 600.0)
        assert thinned.num_contacts < conference.num_contacts
        original = set(conference.contacts)
        assert all(c in original for c in thinned.contacts)


class TestTraceRoundTripPipeline:
    def test_profiles_survive_file_round_trip(self, conference, tmp_path):
        from repro.traces.format import read_contacts, write_contacts

        path = tmp_path / "trace.txt"
        write_contacts(conference, path)
        loaded = read_contacts(path)
        a = compute_profiles(conference, hop_bounds=(2,),
                             sources=[conference.nodes[0]])
        b = compute_profiles(loaded, hop_bounds=(2,),
                             sources=[conference.nodes[0]])
        for d in conference.nodes:
            if d == conference.nodes[0]:
                continue
            fa = a.profile(conference.nodes[0], d, 2)
            fb = b.profile(conference.nodes[0], d, 2)
            assert [round(x, 6) for x in fa.lds] == [round(x, 6) for x in fb.lds]
            assert [round(x, 6) for x in fa.eas] == [round(x, 6) for x in fb.eas]
