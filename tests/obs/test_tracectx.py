"""Unit tests for the trace-context layer (ids, traceparent, binding)."""

import pytest

from repro.obs.spans import SpanTracer
from repro.obs.tracectx import (
    TraceContext,
    bind_records,
    derive_span_id,
    new_span_id,
    new_trace_id,
    span_record,
)


class TestIds:
    def test_fresh_ids_are_well_formed_and_distinct(self):
        trace_ids = {new_trace_id() for _ in range(32)}
        span_ids = {new_span_id() for _ in range(32)}
        assert len(trace_ids) == 32
        assert len(span_ids) == 32
        assert all(len(t) == 32 for t in trace_ids)
        assert all(len(s) == 16 for s in span_ids)

    def test_derive_is_deterministic_and_parent_namespaced(self):
        parent = new_span_id()
        a = derive_span_id(parent, "attempt-1")
        assert a == derive_span_id(parent, "attempt-1")
        assert a != derive_span_id(parent, "attempt-2")
        assert a != derive_span_id(new_span_id(), "attempt-1")
        assert len(a) == 16


class TestTraceparent:
    def test_round_trip(self):
        ctx = TraceContext.new()
        parsed = TraceContext.from_traceparent(ctx.to_traceparent())
        assert parsed == ctx

    def test_unsampled_flag_round_trips(self):
        ctx = TraceContext(new_trace_id(), new_span_id(), sampled=False)
        header = ctx.to_traceparent()
        assert header.endswith("-00")
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None and parsed.sampled is False

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-abc-def-01",
            "99-" + "a" * 32 + "-" + "b" * 16 + "-01",  # unknown version
            "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace id
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
            "00-" + "a" * 32 + "-" + "b" * 16,  # missing flags
            "00-" + "A" * 31 + "Z-" + "b" * 16 + "-01",  # non-hex
        ],
    )
    def test_malformed_headers_return_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_child_derivation_matches_derive_span_id(self):
        ctx = TraceContext.new()
        child = ctx.child("worker")
        assert child.trace_id == ctx.trace_id
        assert child.span_id == derive_span_id(ctx.span_id, "worker")


class TestBindRecords:
    def _traced(self):
        tracer = SpanTracer()
        with tracer.span("root", endpoint="diameter"):
            with tracer.span("child-a"):
                pass
            with tracer.span("child-b"):
                pass
        return tracer

    def test_single_root_takes_the_context_span_id(self):
        ctx = TraceContext.new()
        bound = bind_records(ctx, self._traced().records, origin="server")
        by_name = {r["name"]: r for r in bound}
        assert by_name["root"]["span_id"] == ctx.span_id
        assert by_name["root"]["parent_span_id"] is None
        assert by_name["root"]["origin"] == "server"
        for child in ("child-a", "child-b"):
            assert by_name[child]["parent_span_id"] == ctx.span_id
            assert by_name[child]["span_id"] != ctx.span_id
        assert len({r["span_id"] for r in bound}) == 3
        assert all(r["trace_id"] == ctx.trace_id for r in bound)

    def test_remote_parent_attaches_the_root(self):
        ctx = TraceContext.new()
        remote = new_span_id()
        bound = bind_records(
            ctx,
            self._traced().records,
            origin="worker",
            parent_span_id=remote,
        )
        root = next(r for r in bound if r["name"] == "root")
        assert root["parent_span_id"] == remote

    def test_binding_is_deterministic_across_processes(self):
        """Two bindings of the same records yield identical ids — the
        property that lets the server pre-compute the worker's ids."""
        ctx = TraceContext.new()
        records = self._traced().records
        first = bind_records(ctx, records, origin="worker")
        second = bind_records(ctx, records, origin="worker")
        assert [r["span_id"] for r in first] == [
            r["span_id"] for r in second
        ]

    def test_attrs_are_copied_not_aliased(self):
        ctx = TraceContext.new()
        records = self._traced().records
        bound = bind_records(ctx, records, origin="server")
        bound[0]["attrs"]["mutated"] = True
        assert "mutated" not in records[0]["attrs"]


class TestSpanRecord:
    def test_hand_built_record_shape(self):
        ctx = TraceContext.new()
        record = span_record(
            ctx,
            "service.pool.attempt",
            parent_span_id=new_span_id(),
            origin="supervisor",
            start_unix=123.0,
            wall_s=0.5,
            attrs={"attempt": 1},
        )
        assert record["trace_id"] == ctx.trace_id
        assert record["span_id"] == ctx.span_id
        assert record["name"] == "service.pool.attempt"
        assert record["origin"] == "supervisor"
        assert record["attrs"] == {"attempt": 1}
        assert record["cpu_s"] is None
