"""Unit tests for the structured JSONL logger."""

import io
import json

import pytest

from repro.obs.log import (
    DEFAULT_LEVEL,
    ENV_VAR,
    StructuredLogger,
    coerce_level,
    configure,
    get_logger,
    level_from_env,
)


@pytest.fixture(autouse=True)
def _reset_default_level():
    yield
    configure(level=DEFAULT_LEVEL)


def _lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestLevels:
    def test_coerce_normalises_case_and_whitespace(self):
        assert coerce_level(" Warning ") == "warning"

    @pytest.mark.parametrize("bad", ["verbose", "", 3, None])
    def test_coerce_rejects_unknown(self, bad):
        with pytest.raises(ValueError):
            coerce_level(bad)

    def test_level_from_env(self):
        assert level_from_env({}) is None
        assert level_from_env({ENV_VAR: "debug"}) == "debug"
        # Invalid values degrade to None instead of crashing startup.
        assert level_from_env({ENV_VAR: "shout"}) is None

    def test_threshold_filters_records(self):
        stream = io.StringIO()
        logger = StructuredLogger("t", level="warning", stream=stream)
        logger.info("quiet")
        logger.warning("loud")
        events = [r["event"] for r in _lines(stream)]
        assert events == ["loud"]


class TestEmission:
    def test_record_shape(self):
        stream = io.StringIO()
        logger = StructuredLogger("repro.test", stream=stream)
        logger.info("an.event", job="abc", wall_s=1.5)
        (record,) = _lines(stream)
        assert record["event"] == "an.event"
        assert record["logger"] == "repro.test"
        assert record["level"] == "info"
        assert record["job"] == "abc"
        assert record["wall_s"] == 1.5
        assert record["ts"] > 0

    def test_bound_fields_carry_and_override(self):
        stream = io.StringIO()
        logger = StructuredLogger("t", stream=stream).bind(trace_id="aa")
        logger.info("one")
        logger.bind(trace_id="bb", job="j").info("two")
        records = _lines(stream)
        assert records[0]["trace_id"] == "aa"
        assert records[1]["trace_id"] == "bb"
        assert records[1]["job"] == "j"

    def test_unserialisable_values_fall_back_to_repr(self):
        stream = io.StringIO()
        StructuredLogger("t", stream=stream).info("e", obj=object())
        (record,) = _lines(stream)
        assert "object" in record["obj"]


class TestConfigure:
    def test_configure_updates_existing_loggers(self):
        logger = get_logger("repro.test.configure")
        assert logger.level == DEFAULT_LEVEL
        assert configure(level="debug") == "debug"
        assert logger.level == "debug"
        assert get_logger("repro.test.configure") is logger

    def test_configure_rejects_bad_level(self):
        with pytest.raises(ValueError):
            configure(level="blaring")
