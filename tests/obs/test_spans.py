"""Span tracing: nesting, attributes, JSONL export, no-op mode."""

import json

from repro.obs import NullTracer, SpanTracer


class TestNesting:
    def test_parent_and_depth(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["depth"] == 0
        assert by_name["middle"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner"]["parent"] == by_name["middle"]["id"]
        assert by_name["inner"]["depth"] == 2
        assert by_name["sibling"]["parent"] == by_name["outer"]["id"]

    def test_children_complete_before_parents(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [r["name"] for r in tracer.records] == ["inner", "outer"]

    def test_timings_are_recorded(self):
        tracer = SpanTracer()
        with tracer.span("work"):
            sum(range(1000))
        record = tracer.records[0]
        assert record["wall_s"] > 0
        assert record["cpu_s"] >= 0
        assert record["start_unix"] > 0


class TestAttributes:
    def test_init_and_set(self):
        tracer = SpanTracer()
        with tracer.span("s", dataset="infocom05") as span:
            span.set(contacts=42, devices=41)
        assert tracer.records[0]["attrs"] == {
            "dataset": "infocom05",
            "contacts": 42,
            "devices": 41,
        }

    def test_exception_marks_span(self):
        tracer = SpanTracer()
        try:
            with tracer.span("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        record = tracer.records[0]
        assert record["attrs"]["error"] == "ValueError"
        assert record["wall_s"] is not None


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("a", k=1):
            with tracer.span("b"):
                pass
        path = tmp_path / "spans.jsonl"
        tracer.write(path)
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 2
        assert {r["name"] for r in records} == {"a", "b"}
        parents = {r["id"]: r["parent"] for r in records}
        b = next(r for r in records if r["name"] == "b")
        assert parents[b["id"]] is not None

    def test_summary_aggregates_by_name(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        with tracer.span("once"):
            pass
        summary = {row["name"]: row for row in tracer.summary()}
        assert summary["repeated"]["count"] == 3
        assert summary["once"]["count"] == 1
        assert summary["repeated"]["wall_s"] >= 0

    def test_merge_renumbers_and_keeps_structure(self):
        main = SpanTracer()
        with main.span("main_work"):
            pass
        worker = SpanTracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        main.merge(worker)
        assert len(main.records) == 3
        ids = [r["id"] for r in main.records]
        assert len(set(ids)) == 3
        merged = {r["name"]: r for r in main.records}
        assert merged["inner"]["parent"] == merged["outer"]["id"]


class TestNullTracer:
    def test_inert_and_allocation_free(self):
        tracer = NullTracer()
        first = tracer.span("a", x=1)
        second = tracer.span("b")
        assert first is second  # one shared no-op span
        with first as span:
            span.set(anything=True)
        assert tracer.records == []
        assert tracer.to_jsonl() == ""
