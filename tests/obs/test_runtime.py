"""The session switch, and the pipeline's instrumented call sites."""

from repro.baselines.flooding import flood
from repro.core import Contact, TemporalNetwork, compute_profiles
from repro.forwarding.algorithms import Epidemic
from repro.forwarding.simulator import Message, simulate_workload
from repro.obs import NULL_OBS, get_obs, observed, set_obs


def line_net():
    return TemporalNetwork(
        [
            Contact(0.0, 10.0, 0, 1),
            Contact(20.0, 30.0, 1, 2),
            Contact(40.0, 50.0, 2, 3),
        ],
        nodes=range(4),
    )


class TestSwitch:
    def test_disabled_by_default(self):
        assert get_obs() is NULL_OBS
        assert get_obs().enabled is False

    def test_observed_installs_and_restores(self):
        with observed(seed=3) as run:
            assert get_obs() is run
            assert run.enabled
        assert get_obs() is NULL_OBS

    def test_observed_nests(self):
        with observed() as outer:
            with observed() as inner:
                assert get_obs() is inner
            assert get_obs() is outer
        assert get_obs() is NULL_OBS

    def test_manifest_sealed_on_exit(self):
        with observed(seed=1) as run:
            assert run.manifest.runtime_s is None
        assert run.manifest.runtime_s is not None

    def test_restored_after_exception(self):
        try:
            with observed():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_obs() is NULL_OBS

    def test_set_obs_reset(self):
        with observed() as run:
            previous = set_obs(None)
            assert previous is run
            assert get_obs() is NULL_OBS
            set_obs(run)


class TestProfileInstrumentation:
    def test_per_hop_counters_and_span(self):
        with observed() as run:
            compute_profiles(line_net(), hop_bounds=(1, 2, 3))
        counters = run.metrics.to_dict()["counters"]
        assert counters["optimal.sources"] == 4
        assert counters["optimal.frontier_insertions{hop=1}"] > 0
        assert counters["optimal.frontier_insertions{hop=2}"] > 0
        assert "optimal.candidates_scanned" in counters
        assert "optimal.suffix_min_prunes" in counters
        names = [r["name"] for r in run.tracer.records]
        assert names == ["optimal.compute_profiles"]
        attrs = run.tracer.records[0]["attrs"]
        assert attrs["sources"] == 4 and attrs["contacts"] == 3
        timers = run.metrics.to_dict()["timers"]
        assert timers["optimal.compute_profiles"]["wall_count"] == 1

    def test_insertions_match_frontier_growth(self):
        """On a chain, round k inserts exactly one frontier point (the
        k-th node of the chain), and nothing is ever displaced."""
        with observed() as run:
            profiles = compute_profiles(
                line_net(), hop_bounds=(1, 2, 3), sources=[0]
            )
        counters = run.metrics.to_dict()["counters"]
        for hop in (1, 2, 3):
            assert counters[f"optimal.frontier_insertions{{hop={hop}}}"] == 1
        assert counters["optimal.frontier_points"] == 3
        assert profiles.source_profiles(0).stats.rounds == 3

    def test_disabled_mode_attaches_no_stats(self):
        profiles = compute_profiles(line_net(), hop_bounds=(1, 2))
        for source in range(4):
            assert profiles.source_profiles(source).stats is None

    def test_results_identical_with_and_without_instrumentation(self):
        net = line_net()
        plain = compute_profiles(net, hop_bounds=(1, 2))
        with observed():
            instrumented = compute_profiles(net, hop_bounds=(1, 2))
        for s in range(4):
            for d in range(4):
                if s == d:
                    continue
                for bound in (1, 2, None):
                    assert plain.profile(s, d, bound) == instrumented.profile(
                        s, d, bound
                    )


class TestBaselineInstrumentation:
    def test_flood_counters(self):
        with observed() as run:
            flood(line_net(), 0, 0.0)
        counters = run.metrics.to_dict()["counters"]
        assert counters["flooding.floods"] == 1
        assert counters["flooding.sweeps"] == 3  # three hops down the chain
        assert counters["flooding.infections"] == 3
        assert counters["flooding.events_processed"] > 0
        hist = run.metrics.to_dict()["histograms"]
        assert hist["flooding.infections_per_round"]["count"] == 3

    def test_forwarding_counters(self):
        with observed() as run:
            simulate_workload(
                line_net(),
                [Message(source=0, destination=3, created_at=0.0)],
                Epidemic(),
            )
        counters = run.metrics.to_dict()["counters"]
        assert counters["forwarding.messages"] == 1
        assert counters["forwarding.delivered"] == 1
        assert counters["forwarding.transmissions"] >= 3
        assert [r["name"] for r in run.tracer.records] == [
            "forwarding.simulate_workload"
        ]
