"""LockWatch: factory patching, order graph, inversions, long holds,
Condition protocol, and the ``repro.lockwatch/1`` validator."""

import json
import queue
import threading

import pytest

from repro.obs import (
    LOCKWATCH_SCHEMA,
    LockWatch,
    LockWatchError,
    validate_lockwatch_jsonl,
)
from repro.obs.lockwatch import _WatchedLock


def records_of(watch):
    return [json.loads(line) for line in watch.to_jsonl().splitlines()]


class TestInstallation:
    def test_watching_patches_and_restores_factories(self):
        watch = LockWatch()
        before = (threading.Lock, threading.RLock, threading.Condition)
        with watch.watching():
            assert isinstance(threading.Lock(), _WatchedLock)
            assert isinstance(threading.RLock(), _WatchedLock)
        assert (threading.Lock, threading.RLock, threading.Condition) == before
        assert type(threading.Lock()).__name__ == "lock"

    def test_locks_created_before_install_stay_plain(self):
        plain = threading.Lock()
        with LockWatch().watching():
            assert not isinstance(plain, _WatchedLock)
            with plain:
                pass

    def test_double_install_and_double_uninstall_raise(self):
        watch = LockWatch()
        watch.install()
        try:
            with pytest.raises(RuntimeError):
                watch.install()
        finally:
            watch.uninstall()
        with pytest.raises(RuntimeError):
            watch.uninstall()

    def test_wrapped_lock_still_excludes(self):
        with LockWatch().watching():
            lock = threading.Lock()
            assert not lock.locked()
            assert lock.acquire(blocking=False)
            assert lock.locked()
            assert not lock.acquire(blocking=False)
            lock.release()
            assert not lock.locked()


class TestOrderGraph:
    def test_nested_acquisition_records_edge(self):
        watch = LockWatch()
        with watch.watching():
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
        summary = watch.summary()
        assert summary["locks"] == 2
        assert summary["edges"] == 1
        assert summary["inversions"] == 0

    def test_abba_inversion_detected(self):
        watch = LockWatch()
        with watch.watching():
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        inversions = watch.inversions()
        assert len(inversions) == 1
        record = inversions[0]
        assert sorted(record["first"]) == sorted(record["second"])
        assert record["stack"], "inversion must carry the acquiring stack"
        assert record["earlier_stack"], "and the stack of the earlier order"
        with pytest.raises(LockWatchError, match="inversion"):
            validate_lockwatch_jsonl(watch.to_jsonl(), forbid_inversions=True)
        # Without the policy flag the same export is structurally valid.
        counts = validate_lockwatch_jsonl(watch.to_jsonl())
        assert counts["inversion"] == 1

    def test_same_creation_site_pairs_are_skipped(self):
        # Two locks born on one line (e.g. per-instrument locks in a
        # comprehension) give an ambiguous direction: no edge, and no
        # spurious inversion however they nest.
        watch = LockWatch()
        with watch.watching():
            a, b = [threading.Lock() for _ in range(2)]
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert watch.summary()["edges"] == 0
        assert watch.inversions() == []

    def test_rlock_reentry_is_not_an_edge(self):
        watch = LockWatch()
        with watch.watching():
            r = threading.RLock()
            with r:
                with r:
                    pass
        summary = watch.summary()
        assert summary["edges"] == 0
        assert summary["inversions"] == 0
        # Reentrant acquire/release bookkeeping balances: the lock is
        # free afterwards.
        assert r.acquire(blocking=False)
        r.release()


class TestHoldTimes:
    def test_long_hold_reported_with_sites(self):
        watch = LockWatch(long_hold_threshold_s=0.01)
        with watch.watching():
            lock = threading.Lock()
            with lock:
                t0 = watch._monotonic()
                while watch._monotonic() - t0 < 0.02:
                    pass
        holds = watch.long_holds()
        assert len(holds) == 1
        assert holds[0]["hold_s"] >= 0.01
        assert holds[0]["site"] == lock.site
        with pytest.raises(LockWatchError, match="long-hold"):
            validate_lockwatch_jsonl(watch.to_jsonl(), max_long_holds=0)

    def test_short_hold_not_reported(self):
        watch = LockWatch(long_hold_threshold_s=30.0)
        with watch.watching():
            with threading.Lock():
                pass
        assert watch.long_holds() == []


class TestConditionProtocol:
    def test_condition_wait_notify_across_threads(self):
        watch = LockWatch()
        with watch.watching():
            cond = threading.Condition()
            ready = []

            def waiter():
                with cond:
                    while not ready:
                        cond.wait(timeout=5.0)

            thread = threading.Thread(target=waiter)
            thread.start()
            with cond:
                ready.append(True)
                cond.notify_all()
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        assert watch.summary()["inversions"] == 0

    def test_queue_over_watched_locks(self):
        # queue.Queue builds Conditions over a patched Lock; the wrapper's
        # _release_save/_acquire_restore hooks must keep it working.
        watch = LockWatch()
        with watch.watching():
            q = queue.Queue()
            results = []

            def consumer():
                results.append(q.get(timeout=5.0))

            thread = threading.Thread(target=consumer)
            thread.start()
            q.put("payload")
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        assert results == ["payload"]
        assert watch.summary()["inversions"] == 0


class TestExportAndValidation:
    def test_export_round_trips(self, tmp_path):
        watch = LockWatch()
        with watch.watching():
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
        target = watch.export_jsonl(tmp_path / "out" / "LOCKWATCH_x.jsonl")
        text = target.read_text(encoding="utf-8")
        counts = validate_lockwatch_jsonl(text, forbid_inversions=True)
        assert counts == {"lock": 2, "edge": 1, "inversion": 0, "long_hold": 0}
        header = json.loads(text.splitlines()[0])
        assert header["schema"] == LOCKWATCH_SCHEMA

    def test_sites_are_relative_paths(self):
        watch = LockWatch()
        with watch.watching():
            lock = threading.Lock()
        assert not lock.site.startswith("/")
        assert "test_lockwatch.py:" in lock.site

    def test_validator_rejects_empty(self):
        with pytest.raises(LockWatchError, match="empty"):
            validate_lockwatch_jsonl("")

    def test_validator_rejects_bad_schema(self):
        line = json.dumps(
            {
                "kind": "header",
                "schema": "repro.lockwatch/0",
                "long_hold_threshold_s": 0.25,
                "locks": 0,
                "edges": 0,
                "inversions": 0,
                "long_holds": 0,
            }
        )
        with pytest.raises(LockWatchError, match="schema"):
            validate_lockwatch_jsonl(line + "\n")

    def test_validator_rejects_header_count_mismatch(self):
        watch = LockWatch()
        with watch.watching():
            with threading.Lock():
                pass
        records = records_of(watch)
        records[0]["locks"] = 7
        text = "\n".join(json.dumps(r) for r in records)
        with pytest.raises(LockWatchError, match="declares 7"):
            validate_lockwatch_jsonl(text)

    def test_validator_rejects_unknown_edge_site(self):
        watch = LockWatch()
        with watch.watching():
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
        records = records_of(watch)
        for record in records:
            if record["kind"] == "edge":
                record["acquired"] = "ghost.py:1"
        text = "\n".join(json.dumps(r) for r in records)
        with pytest.raises(LockWatchError, match="unknown lock site"):
            validate_lockwatch_jsonl(text)

    def test_validator_rejects_unknown_kind(self):
        watch = LockWatch()
        with watch.watching():
            with threading.Lock():
                pass
        text = watch.to_jsonl() + json.dumps({"kind": "mystery"}) + "\n"
        with pytest.raises(LockWatchError, match="unknown record kind"):
            validate_lockwatch_jsonl(text)


class TestThreads:
    def test_cross_thread_acquisitions_counted(self):
        watch = LockWatch()
        with watch.watching():
            lock = threading.Lock()

            def worker():
                for _ in range(5):
                    with lock:
                        pass

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
        records = records_of(watch)
        lock_records = [
            r
            for r in records
            if r["kind"] == "lock" and r["site"] == lock.site
        ]
        assert len(lock_records) == 1
        assert lock_records[0]["acquisitions"] == 20
        assert watch.summary()["inversions"] == 0
