"""Run manifests: capture, sealing, and JSON schema round-trip."""

import json

import pytest

from repro.obs import RunManifest
from repro.obs.manifest import SCHEMA


class TestCapture:
    def test_environment_fields(self):
        manifest = RunManifest(seed=7, dataset="infocom05", scale=0.15)
        data = manifest.to_dict()
        assert data["schema"] == SCHEMA
        assert data["seed"] == 7
        assert data["dataset"] == "infocom05"
        assert data["scale"] == 0.15
        assert data["python_version"].count(".") == 2
        assert data["numpy_version"] is not None
        assert data["package_version"] is not None
        assert isinstance(data["argv"], list)

    def test_unsealed_resource_fields_are_none(self):
        data = RunManifest().to_dict()
        assert data["runtime_s"] is None
        assert data["peak_rss_bytes"] is None

    def test_finish_seals_runtime_and_rss(self):
        manifest = RunManifest()
        manifest.finish()
        data = manifest.to_dict()
        assert data["runtime_s"] >= 0
        # Peak RSS is platform-dependent but must be a sane positive
        # number of bytes on Linux/macOS (> 1 MiB for a numpy process).
        assert data["peak_rss_bytes"] is None or data["peak_rss_bytes"] > 2**20

    def test_update_merges_params(self):
        manifest = RunManifest(params={"a": 1})
        manifest.update(b=2).update(a=3)
        assert manifest.to_dict()["params"] == {"a": 3, "b": 2}

    def test_git_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")
        assert RunManifest().git_sha == "deadbeef"


class TestRoundTrip:
    def test_json_round_trip_preserves_all_fields(self, tmp_path):
        manifest = RunManifest(
            seed=1, dataset="reality", scale=0.5, params={"bench": "fig9"}
        )
        manifest.finish()
        path = tmp_path / "manifest.json"
        manifest.write(path)
        data = json.loads(path.read_text())
        rehydrated = RunManifest.from_dict(data)
        assert rehydrated.to_dict() == manifest.to_dict()

    def test_to_json_is_valid_json(self):
        parsed = json.loads(RunManifest(seed=1).to_json())
        assert parsed["seed"] == 1
        # Every schema key is present even before sealing.
        expected = {
            "schema",
            "seed",
            "dataset",
            "scale",
            "params",
            "started_unix",
            "runtime_s",
            "peak_rss_bytes",
            "git_sha",
            "package_version",
            "python_version",
            "numpy_version",
            "platform",
            "argv",
        }
        assert set(parsed) == expected
