"""Registry semantics: instruments, labels, merging, and the no-op mode."""

import json
import pickle
import threading

import pytest

from repro.obs import MetricsRegistry, NullRegistry


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc()
        counter.inc(4)
        assert registry.counter("a").value == 5

    def test_labels_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("ins", hop=1).inc(10)
        registry.counter("ins", hop=2).inc(20)
        assert registry.counter("ins", hop=1).value == 10
        assert registry.counter("ins", hop=2).value == 20
        snap = registry.to_dict()["counters"]
        assert snap == {"ins{hop=1}": 10, "ins{hop=2}": 20}

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("c", a=1, b=2).inc()
        assert registry.counter("c", b=2, a=1).value == 1


class TestLabelRendering:
    def test_benign_values_render_bare(self):
        registry = MetricsRegistry()
        registry.counter("c", hop=3, trace="infocom06").inc()
        snap = registry.to_dict()["counters"]
        assert snap == {"c{hop=3,trace=infocom06}": 1}

    def test_structural_characters_are_quoted(self):
        registry = MetricsRegistry()
        registry.counter("c", path="a=b,c").inc(1)
        registry.counter("c", path="a", extra="b,c").inc(2)
        snap = registry.to_dict()["counters"]
        # Without quoting both keys would render as c{path=a=b,c...}-ish
        # ambiguous strings; with it they stay distinct.
        assert snap == {'c{path="a=b,c"}': 1, 'c{extra="b,c",path=a}': 2}

    def test_quotes_and_backslashes_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g", label='say "hi"\\now').set(1.0)
        snap = registry.to_dict()["gauges"]
        assert snap == {'g{label="say \\"hi\\"\\\\now"}': 1.0}

    def test_braces_trigger_quoting(self):
        registry = MetricsRegistry()
        registry.counter("c", pattern="{x}").inc()
        assert registry.to_dict()["counters"] == {'c{pattern="{x}"}': 1}

    def test_distinct_label_sets_never_collide(self):
        registry = MetricsRegistry()
        registry.counter("c", a="x=1,b=2").inc(1)
        registry.counter("c", a="x=1", b="2").inc(2)
        snap = registry.to_dict()["counters"]
        assert len(snap) == 2
        assert sorted(snap.values()) == [1, 2]


class TestHistograms:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe_many([2.0, 5.0, 3.0])
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(10.0)
        assert snap["min"] == 2.0
        assert snap["max"] == 5.0
        assert snap["mean"] == pytest.approx(10.0 / 3)

    def test_empty_histogram_snapshot(self):
        assert MetricsRegistry().histogram("h").snapshot()["count"] == 0


class TestTimers:
    def test_context_manager_records_wall_and_cpu(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            sum(range(1000))
        snap = registry.timer("t").snapshot()
        assert snap["wall_count"] == 1
        assert snap["wall_sum"] > 0
        assert snap["cpu_sum"] >= 0

    def test_nested_uses_accumulate(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.timer("t"):
                pass
        assert registry.timer("t").snapshot()["wall_count"] == 3


class TestMerge:
    def test_counters_add_histograms_combine(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.counter("c").inc(2)
        right.counter("c").inc(3)
        right.counter("only_right", hop=4).inc(7)
        left.histogram("h").observe_many([1.0, 9.0])
        right.histogram("h").observe(5.0)
        with right.timer("t"):
            pass
        left.merge(right)
        assert left.counter("c").value == 5
        assert left.counter("only_right", hop=4).value == 7
        hist = left.histogram("h").snapshot()
        assert hist["count"] == 3
        assert hist["min"] == 1.0 and hist["max"] == 9.0
        assert left.timer("t").snapshot()["wall_count"] == 1

    def test_gauge_merge_is_last_write(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.gauge("g").set(1.0)
        right.gauge("g").set(2.0)
        left.merge(right)
        assert left.gauge("g").value == 2.0
        # A gauge never set on the right leaves the left value alone.
        left.gauge("g2").set(3.0)
        left.merge(MetricsRegistry())
        assert left.gauge("g2").value == 3.0


class TestSnapshot:
    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c", hop=1).inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1.0)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["c{hop=1}"] == 1
        assert parsed["gauges"]["g"] == 2.5
        assert parsed["histograms"]["h"]["count"] == 1

    def test_write(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = tmp_path / "metrics.json"
        registry.write(path)
        assert json.loads(path.read_text())["counters"]["c"] == 1


class TestThreadSafety:
    def test_pickle_round_trip_and_independence(self):
        # Worker registries cross multiprocessing queues: pickling must
        # drop the locks and thread-locals, and the clone must be a
        # fully functional, independent registry.
        registry = MetricsRegistry()
        registry.counter("jobs", kind="a").inc(3)
        registry.gauge("depth").set(2.5)
        registry.histogram("sizes").observe(10.0)
        registry.timer("step").record(0.5, cpu_seconds=0.25)

        clone = pickle.loads(pickle.dumps(registry))
        assert clone.to_dict() == registry.to_dict()
        clone.counter("jobs", kind="a").inc()
        assert clone.counter("jobs", kind="a").snapshot() == 4
        assert registry.counter("jobs", kind="a").snapshot() == 3
        # The restored instruments still lock correctly (usable from a
        # fresh thread without sharing state with the original).
        with clone.timer("step"):
            pass

    def test_concurrent_counter_incs_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert counter.snapshot() == 8000

    def test_timer_start_stamps_are_thread_local(self):
        # Two threads sharing one Timer (a labelled endpoint timer) must
        # each record their own duration, not clobber a shared stamp.
        registry = MetricsRegistry()
        timer = registry.timer("endpoint")
        barrier = threading.Barrier(2)

        def use():
            barrier.wait(timeout=10.0)
            with timer:
                barrier.wait(timeout=10.0)

        threads = [threading.Thread(target=use) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert timer.wall._values()[0] == 2


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NullRegistry().enabled is False
        assert MetricsRegistry().enabled is True

    def test_accessors_return_shared_singletons(self):
        """No allocation on the hot path: every accessor call hands back
        the same pre-built inert instrument, whatever the name/labels."""
        null = NullRegistry()
        assert null.counter("a") is null.counter("b", hop=3)
        assert null.gauge("a") is null.gauge("b")
        assert null.histogram("a") is null.histogram("b")
        assert null.timer("a") is null.timer("b")
        # And across registries, too.
        assert null.counter("a") is NullRegistry().counter("z")

    def test_mutation_is_inert(self):
        null = NullRegistry()
        null.counter("c").inc(100)
        null.gauge("g").set(1.0)
        null.histogram("h").observe(1.0)
        with null.timer("t"):
            pass
        assert null.counter("c").value == 0
        assert null.gauge("g").value is None
        assert null.histogram("h").count == 0
        assert null.timer("t").snapshot()["wall_count"] == 0
        assert len(null) == 0
        assert null.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timers": {},
        }

    def test_merge_into_null_is_dropped(self):
        real = MetricsRegistry()
        real.counter("c").inc(5)
        null = NullRegistry()
        null.merge(real)
        assert len(null) == 0


class TestPrometheusRender:
    """``render_text`` backs ``GET /metrics`` on the query service."""

    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("service.jobs.computed").inc(3)
        registry.counter("service.http.requests", method="POST").inc()
        registry.gauge("service.pool.pending").set(2)
        lines = set(registry.render_text().strip().splitlines())
        assert "service_jobs_computed 3" in lines
        assert 'service_http_requests{method="POST"} 1' in lines
        assert "service_pool_pending 2" in lines

    def test_histogram_summary_samples(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        histogram.observe(1.0)
        histogram.observe(3.0)
        lines = dict(
            line.rsplit(" ", 1)
            for line in registry.render_text().strip().splitlines()
        )
        assert lines["lat_count"] == "2"
        assert float(lines["lat_sum"]) == 4.0
        assert float(lines["lat_min"]) == 1.0
        assert float(lines["lat_max"]) == 3.0

    def test_timer_samples(self):
        registry = MetricsRegistry()
        with registry.timer("step"):
            pass
        lines = dict(
            line.rsplit(" ", 1)
            for line in registry.render_text().strip().splitlines()
        )
        assert lines["step_wall_count"] == "1"
        assert float(lines["step_wall_sum"]) >= 0.0
        assert "step_cpu_sum" in lines

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c').inc()
        text = registry.render_text()
        assert 'c{path="a\\"b\\\\c"} 1' in text

    def test_unset_gauge_and_empty_registry_omitted(self):
        registry = MetricsRegistry()
        assert registry.render_text() == ""
        registry.gauge("g")  # created but never set: no sample
        assert registry.render_text() == ""

    def test_ends_with_newline_when_nonempty(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert registry.render_text().endswith("\n")
