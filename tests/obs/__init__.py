"""Tests of the observability layer (repro.obs)."""
