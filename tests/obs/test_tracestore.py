"""Unit tests for the trace ring store and the repro.trace/1 validator."""

import pytest

from repro.obs.tracectx import TraceContext, derive_span_id, span_record
from repro.obs.tracestore import TraceStore, validate_trace_jsonl


def _trace(store, name="service.http.request", links=0):
    """Install one tiny two-span trace; returns its context."""
    ctx = TraceContext.new()
    child = derive_span_id(ctx.span_id, 2)
    store.add_spans(
        ctx.trace_id,
        [
            span_record(
                ctx, name, None, "server", start_unix=100.0, wall_s=1.0
            ),
            span_record(
                TraceContext(ctx.trace_id, child),
                "service.execute",
                parent_span_id=ctx.span_id,
                origin="server",
                start_unix=100.1,
                wall_s=0.9,
            ),
        ],
    )
    for i in range(links):
        other = TraceContext.new()
        store.add_link(
            ctx.trace_id,
            {
                "type": "coalesce-fan-in",
                "span_id": ctx.span_id,
                "linked_trace_id": other.trace_id,
                "linked_span_id": other.span_id,
            },
        )
    return ctx


class TestRing:
    def test_capacity_evicts_oldest(self):
        store = TraceStore(capacity=2)
        first = _trace(store)
        _trace(store)
        _trace(store)
        assert len(store) == 2
        assert store.get(first.trace_id) is None
        assert store.stats()["evicted"] == 1

    def test_span_cap_drops_excess(self):
        store = TraceStore(capacity=4, max_spans_per_trace=1)
        ctx = _trace(store)
        document = store.get(ctx.trace_id)
        assert len(document["spans"]) == 1
        assert store.stats()["dropped_spans"] == 1

    def test_summaries_newest_first_with_root_info(self):
        store = TraceStore()
        _trace(store)
        newest = _trace(store)
        rows = store.summaries()
        assert rows[0]["trace_id"] == newest.trace_id
        assert rows[0]["root"] == "service.http.request"
        assert rows[0]["spans"] == 2

    def test_get_unknown_returns_none(self):
        assert TraceStore().get("ab" * 16) is None
        assert TraceStore().export_jsonl("ab" * 16) is None


class TestExportAndValidate:
    def test_round_trip_validates(self):
        store = TraceStore()
        ctx = _trace(store, links=2)
        export = store.export_jsonl(ctx.trace_id)
        summary = validate_trace_jsonl(
            export,
            require_names=("service.http.request", "service.execute"),
            require_origins=("server",),
            require_link_types=("coalesce-fan-in",),
        )
        assert summary["trace_id"] == ctx.trace_id
        assert summary["spans"] == 2
        assert summary["links"] == 2
        assert summary["roots"] == 1

    def test_missing_required_name_fails(self):
        store = TraceStore()
        ctx = _trace(store)
        export = store.export_jsonl(ctx.trace_id)
        with pytest.raises(ValueError, match="worker.execute"):
            validate_trace_jsonl(export, require_names=("worker.execute",))

    def test_unresolved_parent_fails(self):
        store = TraceStore()
        ctx = TraceContext.new()
        store.add_spans(
            ctx.trace_id,
            [
                span_record(
                    ctx,
                    "orphan",
                    parent_span_id="ab" * 8,
                    origin="server",
                    start_unix=1.0,
                    wall_s=0.1,
                )
            ],
        )
        export = store.export_jsonl(ctx.trace_id)
        with pytest.raises(ValueError, match="not in trace"):
            validate_trace_jsonl(export)

    def test_header_count_mismatch_fails(self):
        store = TraceStore()
        ctx = _trace(store)
        export = store.export_jsonl(ctx.trace_id)
        truncated = "\n".join(export.splitlines()[:-1]) + "\n"
        with pytest.raises(ValueError, match="do not match"):
            validate_trace_jsonl(truncated)

    @pytest.mark.parametrize(
        "text,match",
        [
            ("", "empty"),
            ("{}", "not a trace header"),
            ('{"kind": "header", "schema": "bogus/9"}', "schema"),
        ],
    )
    def test_malformed_documents_fail(self, text, match):
        with pytest.raises(ValueError, match=match):
            validate_trace_jsonl(text)
