"""Unit tests: request normalisation, job keys, single-flight table."""

import pytest

from repro.service import BadRequest, JobTable, job_key, normalize_request
from repro.service.jobs import NetworkCache, job_id_of
from repro.traces.format import read_contacts


@pytest.fixture
def trace(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("0 1 0 100\n1 2 0 100\n")
    return str(path)


class TestNormalizeRequest:
    def test_defaults_match_cli(self, trace):
        spec = normalize_request("diameter", {"trace": trace})
        # cli.py: --eps 0.01 --max-hops 8 --grid-points 40
        assert (spec.eps, spec.max_hops, spec.grid_points) == (0.01, 8, 40)
        spec = normalize_request("delay-cdf", {"trace": trace})
        # cli.py: --max-hops 4 --grid-points 12, no eps
        assert (spec.eps, spec.max_hops, spec.grid_points) == (None, 4, 12)

    def test_argv_round_trip(self, trace):
        spec = normalize_request(
            "diameter", {"trace": trace, "max_hops": 5, "eps": 0.05}
        )
        argv = spec.to_argv("/cache")
        assert argv[0] == "diameter"
        assert argv[1] == spec.trace
        assert argv[-2:] == ["--cache-dir", "/cache"]
        assert "--eps" in argv and "0.05" in argv

    def test_unknown_command(self, trace):
        with pytest.raises(BadRequest):
            normalize_request("summarize", {"trace": trace})

    def test_unknown_field_rejected_not_ignored(self, trace):
        with pytest.raises(BadRequest) as exc:
            normalize_request("diameter", {"trace": trace, "max_hop": 5})
        assert exc.value.field == "max_hop"

    def test_missing_trace(self):
        with pytest.raises(BadRequest) as exc:
            normalize_request("diameter", {})
        assert exc.value.field == "trace"

    def test_nonexistent_trace(self, tmp_path):
        with pytest.raises(BadRequest):
            normalize_request(
                "diameter", {"trace": str(tmp_path / "missing.txt")}
            )

    def test_body_must_be_object(self):
        with pytest.raises(BadRequest):
            normalize_request("diameter", ["not", "a", "dict"])

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.5, "a lot", True])
    def test_bad_eps(self, trace, eps):
        with pytest.raises(BadRequest):
            normalize_request("diameter", {"trace": trace, "eps": eps})

    @pytest.mark.parametrize("hops", [0, -1, 2.5, "8", True])
    def test_bad_max_hops(self, trace, hops):
        with pytest.raises(BadRequest):
            normalize_request("diameter", {"trace": trace, "max_hops": hops})

    def test_eps_rejected_for_delay_cdf(self, trace):
        with pytest.raises(BadRequest):
            normalize_request("delay-cdf", {"trace": trace, "eps": 0.01})

    def test_engine_default_and_explicit(self, trace):
        spec = normalize_request("diameter", {"trace": trace})
        assert spec.engine == "auto"
        assert "--engine" not in spec.to_argv()
        spec = normalize_request(
            "diameter", {"trace": trace, "engine": "vec"}
        )
        assert spec.engine == "vec"
        argv = spec.to_argv()
        assert argv[argv.index("--engine") + 1] == "vec"

    @pytest.mark.parametrize("engine", ["turbo", 3, None, True])
    def test_bad_engine(self, trace, engine):
        with pytest.raises(BadRequest) as exc:
            normalize_request(
                "diameter", {"trace": trace, "engine": engine}
            )
        assert exc.value.field == "engine"

    def test_engine_survives_document_round_trip(self, trace):
        from repro.service.jobs import JobSpec

        spec = normalize_request(
            "diameter", {"trace": trace, "engine": "scalar"}
        )
        assert JobSpec.from_document(spec.to_document()).engine == "scalar"

    def test_test_delay_gated(self, trace):
        with pytest.raises(BadRequest):
            normalize_request("diameter", {"trace": trace, "_test_delay_s": 1})
        spec = normalize_request(
            "diameter", {"trace": trace, "_test_delay_s": 1},
            allow_test_delay=True,
        )
        assert spec.test_delay_s == 1.0


class TestJobKey:
    def test_deterministic_and_parameter_sensitive(self, trace):
        net = read_contacts(trace)
        spec = normalize_request("diameter", {"trace": trace})
        base = job_key(spec, net)
        assert job_key(spec, net) == base
        for body in (
            {"trace": trace, "max_hops": 9},
            {"trace": trace, "grid_points": 41},
            {"trace": trace, "eps": 0.02},
        ):
            other = normalize_request("diameter", body)
            assert job_key(other, net) != base
        cdf = normalize_request("delay-cdf", {"trace": trace, "max_hops": 8,
                                              "grid_points": 40})
        assert job_key(cdf, net) != base

    def test_engine_excluded_from_key(self, trace):
        """Engines are byte-identical (the parity contract), so requests
        differing only in engine must coalesce into one job."""
        net = read_contacts(trace)
        auto = normalize_request("diameter", {"trace": trace})
        vec = normalize_request(
            "diameter", {"trace": trace, "engine": "vec"}
        )
        scalar = normalize_request(
            "diameter", {"trace": trace, "engine": "scalar"}
        )
        assert job_key(vec, net) == job_key(auto, net)
        assert job_key(scalar, net) == job_key(auto, net)

    def test_test_delay_excluded_from_key(self, trace):
        """The fault-injection knob cannot change response bytes, so it
        must coalesce with the undelayed query."""
        net = read_contacts(trace)
        plain = normalize_request("diameter", {"trace": trace})
        delayed = normalize_request(
            "diameter", {"trace": trace, "_test_delay_s": 2},
            allow_test_delay=True,
        )
        assert job_key(plain, net) == job_key(delayed, net)


class TestJobTable:
    def _spec(self, trace):
        return normalize_request("diameter", {"trace": trace})

    def test_single_flight(self, trace):
        table = JobTable()
        job, created = table.get_or_create("k1", self._spec(trace))
        dup, dup_created = table.get_or_create("k1", self._spec(trace))
        assert created and not dup_created
        assert dup is job
        assert job.waiters == 2

    def test_complete_moves_to_finished(self, trace):
        table = JobTable()
        job, _ = table.get_or_create("k1", self._spec(trace))
        assert not job.done.is_set()
        table.complete("k1", exit_code=0, output=b"body")
        assert job.done.is_set()
        assert job.state == "done"
        assert table.inflight_count() == 0
        assert table.lookup(job.id) is job
        # A fresh request for the same key is a new job, not a coalesce.
        again, created = table.get_or_create("k1", self._spec(trace))
        assert created and again is not job

    def test_failure_is_structured(self, trace):
        table = JobTable()
        job, _ = table.get_or_create("k1", self._spec(trace))
        table.complete("k1", error={"type": "timeout", "message": "too slow"})
        assert job.state == "failed"
        assert job.describe()["error"]["type"] == "timeout"

    def test_history_bounded(self, trace):
        table = JobTable(history=2)
        for i in range(4):
            table.get_or_create(f"key-{i:02d}{'0' * 62}", self._spec(trace))
            table.complete(f"key-{i:02d}{'0' * 62}", exit_code=0, output=b"")
        assert table.finished_count() == 2
        assert table.lookup(job_id_of("key-00" + "0" * 62)) is None
        assert table.lookup(job_id_of("key-03" + "0" * 62)) is not None


class TestNetworkCache:
    def test_reload_only_on_change(self, trace, tmp_path):
        cache = NetworkCache()
        first = cache.get(trace)
        assert cache.get(trace) is first
        # Rewriting the file (different size) invalidates the entry.
        with open(trace, "a") as stream:
            stream.write("2 3 0 100\n")
        second = cache.get(trace)
        assert second is not first
        assert second.num_contacts == first.num_contacts + 1
