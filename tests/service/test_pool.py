"""Fault injection and lifecycle tests of the worker pool.

These drive the full service (HTTP included) because the interesting
behaviour — a crashed worker failing a request cleanly, health flipping
degraded and back — only exists end to end.
"""

import os
import signal
import threading
import time

import pytest


def _kill_worker(service):
    """SIGKILL the service's (single) current worker; returns its pid."""
    pid = service.pool.worker_pids()[0]
    assert pid is not None
    os.kill(pid, signal.SIGKILL)
    return pid


def _wait_for(predicate, timeout_s=10.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestWorkerCrash:
    def test_crash_mid_job_retries_and_succeeds(
        self, service_factory, chain_trace
    ):
        service, client, bundle = service_factory(
            workers=1, respawn_delay_s=0.3
        )
        holder = [None]

        def issue():
            holder[0] = client.delay_cdf(
                chain_trace, max_hops=2, grid_points=6, _test_delay_s=1.0
            )

        thread = threading.Thread(target=issue)
        thread.start()
        time.sleep(0.4)  # the worker is inside the job's delay window
        old_pid = _kill_worker(service)

        # healthz flips degraded while the slot awaits respawn...
        assert _wait_for(
            lambda: client.health().json()["status"] == "degraded"
        ), "healthz never reported degraded after the worker was killed"

        thread.join()
        response = holder[0]
        # ...the job was retried on the respawned worker and succeeded...
        assert response.status == 200
        assert response.body.startswith(b"delay")

        # ...and the pool healed: fresh worker, healthy health.
        assert _wait_for(
            lambda: client.health().json()["status"] == "healthy"
        ), "healthz never recovered to healthy"
        assert service.pool.worker_pids()[0] != old_pid

        counters = bundle.metrics.to_dict()["counters"]
        assert counters["service.pool.crashes"] == 1
        assert counters["service.pool.retries"] == 1
        assert counters["service.pool.respawns"] == 1

    def test_repeated_crash_fails_cleanly(self, service_factory, chain_trace):
        """Both attempts killed: the client gets a structured error, not
        a hang, and the pool still respawns back to healthy."""
        service, client, bundle = service_factory(
            workers=1, max_attempts=2
        )
        holder = [None]

        def issue():
            holder[0] = client.delay_cdf(
                chain_trace, max_hops=3, grid_points=6, _test_delay_s=1.5
            )

        thread = threading.Thread(target=issue)
        thread.start()
        for _ in range(2):
            assert _wait_for(
                lambda: service.pool.health()["busy"] == 1
            ), "job never reached a worker"
            time.sleep(0.2)
            try:
                _kill_worker(service)
            except ProcessLookupError:
                pass
        thread.join()

        response = holder[0]
        assert response.status == 500
        error = response.json()["error"]
        assert error["type"] == "worker-crashed"
        assert error["attempts"] == 2
        assert _wait_for(
            lambda: client.health().json()["status"] == "healthy"
        )


class TestTimeout:
    def test_overrunning_job_killed_with_structured_error(
        self, service_factory, chain_trace
    ):
        service, client, bundle = service_factory(
            workers=1, job_timeout_s=0.5
        )
        response = client.delay_cdf(
            chain_trace, max_hops=2, grid_points=6, _test_delay_s=30.0
        )
        assert response.status == 500
        error = response.json()["error"]
        assert error["type"] == "timeout"
        assert error["timeout_s"] == 0.5
        counters = bundle.metrics.to_dict()["counters"]
        assert counters["service.pool.timeouts"] == 1
        # The killed worker's slot respawns.
        assert _wait_for(
            lambda: client.health().json()["status"] == "healthy"
        )


class TestDrain:
    def test_graceful_drain_finishes_queued_work(
        self, service_factory, chain_trace
    ):
        service, client, _ = service_factory(workers=1, queue_capacity=4)
        holders = [None, None]

        def issue(i):
            holders[i] = client.delay_cdf(
                chain_trace, max_hops=i + 2, grid_points=6, _test_delay_s=0.5
            )

        threads = [
            threading.Thread(target=issue, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.2)
        assert service.close(drain=True, timeout_s=30.0)
        for thread in threads:
            thread.join()
        assert [h.status for h in holders] == [200, 200]

    def test_submit_after_close_is_rejected(self, service_factory, chain_trace):
        from repro.service import PoolClosed

        service, _client, _ = service_factory(workers=1)
        service.close(drain=True, timeout_s=10.0)
        with pytest.raises(PoolClosed):
            service.pool.submit({"key": "k", "argv": []})
