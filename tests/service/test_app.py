"""End-to-end tests of the HTTP service over a real socket."""

import io
import json
import threading
from contextlib import redirect_stdout

import pytest

from repro.cli import main as cli_main


def cli_bytes(argv):
    """Capture the stdout bytes of one ``repro`` CLI invocation."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli_main(argv)
    assert code == 0
    return buffer.getvalue().encode("utf-8")


class TestByteParity:
    """The service is a front end to the engine, not a fork of it."""

    def test_diameter_byte_identical_to_cli(self, service_factory, chain_trace):
        _service, client, _ = service_factory()
        response = client.diameter(chain_trace, max_hops=4, grid_points=8)
        assert response.status == 200
        assert response.headers["X-Repro-Source"] == "computed"
        expected = cli_bytes(
            ["diameter", chain_trace, "--max-hops", "4", "--grid-points", "8"]
        )
        assert response.body == expected

    def test_delay_cdf_byte_identical_to_cli(self, service_factory, chain_trace):
        _service, client, _ = service_factory()
        response = client.delay_cdf(chain_trace, max_hops=2, grid_points=6)
        assert response.status == 200
        expected = cli_bytes(
            ["delay-cdf", chain_trace, "--max-hops", "2", "--grid-points", "6"]
        )
        assert response.body == expected

    def test_default_parameters_match_cli_defaults(
        self, service_factory, chain_trace
    ):
        _service, client, _ = service_factory()
        response = client.delay_cdf(chain_trace)
        assert response.body == cli_bytes(["delay-cdf", chain_trace])


class TestResultStore:
    def test_repeat_query_served_from_store(self, service_factory, chain_trace):
        _service, client, bundle = service_factory()
        first = client.diameter(chain_trace, max_hops=4, grid_points=8)
        second = client.diameter(chain_trace, max_hops=4, grid_points=8)
        assert first.headers["X-Repro-Source"] == "computed"
        assert second.headers["X-Repro-Source"] == "store"
        assert second.body == first.body
        counters = bundle.metrics.to_dict()["counters"]
        assert counters["service.jobs.computed"] == 1
        assert counters["service.store.hit"] == 1

    def test_distinct_queries_compute_separately(
        self, service_factory, chain_trace
    ):
        _service, client, bundle = service_factory()
        client.diameter(chain_trace, max_hops=4, grid_points=8)
        client.diameter(chain_trace, max_hops=5, grid_points=8)
        counters = bundle.metrics.to_dict()["counters"]
        assert counters["service.jobs.computed"] == 2


class TestCoalescing:
    def test_concurrent_identical_queries_compute_once(
        self, service_factory, chain_trace
    ):
        service, client, bundle = service_factory(workers=2)
        results = [None] * 8

        def issue(i):
            results[i] = client.delay_cdf(
                chain_trace, max_hops=3, grid_points=6, _test_delay_s=0.5
            )

        threads = [
            threading.Thread(target=issue, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sorted(r.status for r in results) == [200] * 8
        assert len({r.body for r in results}) == 1
        counters = bundle.metrics.to_dict()["counters"]
        assert counters["service.jobs.computed"] == 1
        assert counters["service.jobs.coalesced"] == 7
        sources = sorted(r.headers["X-Repro-Source"] for r in results)
        assert sources.count("computed") == 1
        assert sources.count("coalesced") == 7


class TestBackpressure:
    def test_saturated_pool_returns_429_with_retry_after(
        self, service_factory, chain_trace
    ):
        # 1 worker + 1 queue slot: the third *distinct* in-flight query
        # must be shed, not buffered without bound.
        _service, client, _ = service_factory(workers=1, queue_capacity=1)
        results = [None] * 3
        barrier = threading.Barrier(3)

        def issue(i):
            barrier.wait()
            results[i] = client.delay_cdf(
                chain_trace, max_hops=i + 1, grid_points=6, _test_delay_s=1.0
            )

        threads = [
            threading.Thread(target=issue, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        statuses = sorted(r.status for r in results)
        assert statuses == [200, 200, 429]
        rejected = next(r for r in results if r.status == 429)
        assert int(rejected.headers["Retry-After"]) >= 1
        assert rejected.json()["error"]["type"] == "saturated"


class TestErrors:
    def test_invalid_json_body(self, service_factory):
        service, client, _ = service_factory()
        response = client.request("POST", "/v1/diameter", None)
        # An empty body parses as {} and fails trace validation instead.
        raw = service.handle_query("diameter", b"{not json")
        assert raw.status == 400
        assert json.loads(raw.body)["error"]["type"] == "bad-request"
        assert response.status == 400

    def test_unknown_field(self, service_factory, chain_trace):
        _service, client, _ = service_factory()
        response = client.diameter(chain_trace, max_hop=4)
        assert response.status == 400
        assert response.json()["error"]["field"] == "max_hop"

    def test_unknown_route(self, service_factory):
        _service, client, _ = service_factory()
        assert client.request("GET", "/v1/nope").status == 404
        assert client.request("POST", "/v1/nope", {}).status == 404

    def test_worker_failure_is_structured(self, service_factory, tmp_path):
        """A trace deleted between normalisation and execution fails the
        job with a structured error body, not a hung request."""
        _service, client, _ = service_factory()
        doomed = tmp_path / "doomed.txt"
        doomed.write_text("0 1 0 100\n")
        holder = [None]

        def issue():
            holder[0] = client.delay_cdf(
                str(doomed), max_hops=2, grid_points=6, _test_delay_s=0.8
            )

        thread = threading.Thread(target=issue)
        thread.start()
        import time

        time.sleep(0.3)  # normalised and queued; worker still sleeping
        doomed.unlink()
        thread.join()
        response = holder[0]
        assert response.status == 500
        error = response.json()["error"]
        assert error["type"] in ("exception", "command-failed")
        assert error["message"]


class TestJobsEndpoint:
    def test_finished_job_is_queryable(self, service_factory, chain_trace):
        _service, client, _ = service_factory()
        response = client.diameter(chain_trace, max_hops=4, grid_points=8)
        job_id = response.headers["X-Repro-Job"]
        status = client.job(job_id)
        assert status.status == 200
        document = status.json()
        assert document["state"] == "done"
        assert document["exit_code"] == 0
        assert document["output_bytes"] == len(response.body)

    def test_unknown_job_404(self, service_factory):
        _service, client, _ = service_factory()
        assert client.job("f" * 32).status == 404


class TestHealthAndMetrics:
    def test_healthz(self, service_factory):
        _service, client, _ = service_factory(workers=2)
        response = client.health()
        assert response.status == 200
        document = response.json()
        assert document["status"] == "healthy"
        assert document["pool"]["alive"] == 2
        assert document["store"]["entries"] == 0

    def test_metrics_exposition(self, service_factory, chain_trace):
        _service, client, _ = service_factory()
        client.diameter(chain_trace, max_hops=4, grid_points=8)
        text = client.metrics_text()
        lines = dict(
            line.rsplit(" ", 1) for line in text.strip().splitlines()
        )
        assert lines["service_jobs_computed"] == "1"
        assert lines["service_jobs_submitted"] == "1"
        assert 'service_http_requests{method="POST"}' in lines
        # Engine counters share the same registry and scrape.
        assert "service_http_responses{source=\"computed\"}" in lines


class TestConfigValidation:
    def test_pool_size_validated(self, tmp_path):
        from repro.service import ServiceConfig

        with pytest.raises(ValueError):
            ServiceConfig(cache_dir=str(tmp_path), workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(cache_dir=str(tmp_path), queue_capacity=0)

    def test_serve_cli_rejects_zero_workers(self, tmp_path, capsys):
        from repro.service.__main__ import main as service_main

        with pytest.raises(SystemExit) as exc:
            service_main(
                ["serve", "--cache-dir", str(tmp_path), "--workers", "0"]
            )
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err
