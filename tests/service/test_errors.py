"""Structured failure paths: degenerate traces, unreachable servers."""

import socket

import pytest

from repro.service import ServiceClient, ServiceUnreachable


@pytest.fixture
def dead_url():
    """A URL that is guaranteed to refuse connections: bind an
    ephemeral port, then close it before anyone connects."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


class TestDegenerateTrace:
    def test_empty_trace_answers_400_with_trace_id(
        self, service_factory, tmp_path
    ):
        _service, client, _ = service_factory()
        empty = tmp_path / "empty.txt"
        empty.write_text("# no contacts\n")
        response = client.delay_cdf(str(empty))
        assert response.status == 400
        document = response.json()
        assert document["error"]["type"] == "bad-request"
        assert "not analyzable" in document["error"]["message"]
        assert document["error"]["field"] == "trace"
        assert document["trace_id"] == response.trace_id

    def test_zero_span_trace_answers_400(self, service_factory, tmp_path):
        _service, client, _ = service_factory()
        point = tmp_path / "point.txt"
        point.write_text("0 1 50 50\n")
        response = client.diameter(str(point))
        assert response.status == 400
        assert "zero length" in response.json()["error"]["message"]


class TestUnreachableService:
    def test_request_raises_service_unreachable(self, dead_url):
        client = ServiceClient(dead_url, timeout_s=2.0)
        with pytest.raises(ServiceUnreachable) as exc:
            client.health()
        assert exc.value.attempts == 1
        assert dead_url in str(exc.value)
        assert isinstance(exc.value.cause, OSError)

    def test_retry_makes_the_configured_attempts(self, dead_url):
        client = ServiceClient(dead_url, timeout_s=2.0)
        with pytest.raises(ServiceUnreachable) as exc:
            client.query(
                "delay-cdf", "trace.txt", retries=2, backoff_s=0.01
            )
        assert exc.value.attempts == 3

    def test_unreachable_is_oserror(self, dead_url):
        """Existing ``except OSError`` call sites must keep working."""
        client = ServiceClient(dead_url, timeout_s=2.0)
        with pytest.raises(OSError):
            client.health()

    def test_ping_swallows_unreachable(self, dead_url):
        client = ServiceClient(dead_url, timeout_s=2.0)
        assert client.ping(retries=1, backoff_s=0.01) is False
