"""The write-ahead journal: writer, replay, compaction, validation.

The end-to-end crash/restart behaviour lives in ``test_recovery.py``;
this module covers the journal subsystem itself, including the
property-style guarantee that *any prefix* of a recorded journal
replays to a consistent state.
"""

import json

import pytest

from repro.obs import Instrumentation, set_obs
from repro.service.journal import (
    JOURNAL_SCHEMA,
    JournalError,
    JournalWriter,
    compact,
    read_journal_lines,
    replay,
    replay_lines,
    segment_paths,
    validate_journal_dir,
    validate_journal_lines,
)


@pytest.fixture
def bundle():
    instrumentation = Instrumentation.started()
    previous = set_obs(instrumentation)
    yield instrumentation
    set_obs(previous)


def _counter(bundle, name):
    counters = bundle.metrics.to_dict()["counters"]
    return sum(v for k, v in counters.items() if k.split("{")[0] == name)


def _spec_doc(priority="interactive", shards=1):
    return {
        "command": "delay-cdf",
        "trace": "/tmp/trace.txt",
        "max_hops": 3,
        "grid_points": 8,
        "eps": None,
        "shards": shards,
        "priority": priority,
    }


def _write_episode(writer, key, events):
    for event, fields in events:
        writer.append(event, key, **fields)


class TestJournalWriter:
    def test_records_carry_schema_and_monotonic_seq(self, tmp_path, bundle):
        writer = JournalWriter(tmp_path / "j")
        first = writer.append("submitted", "k1", spec=_spec_doc())
        second = writer.append("running", "k1", attempts=1)
        writer.close()
        assert first["schema"] == JOURNAL_SCHEMA
        assert second["seq"] == first["seq"] + 1
        lines = read_journal_lines(tmp_path / "j")
        assert [json.loads(line)["event"] for line in lines] == [
            "submitted",
            "running",
        ]
        assert _counter(bundle, "service.journal.appended") == 2
        assert _counter(bundle, "service.journal.fsyncs") == 2

    def test_no_fsync_mode_skips_fsync_counter(self, tmp_path, bundle):
        writer = JournalWriter(tmp_path / "j", fsync=False)
        writer.append("submitted", "k1", spec=_spec_doc())
        writer.close()
        assert _counter(bundle, "service.journal.appended") == 1
        assert _counter(bundle, "service.journal.fsyncs") == 0

    def test_segment_rotation_by_size(self, tmp_path, bundle):
        writer = JournalWriter(tmp_path / "j", segment_max_bytes=400)
        for i in range(8):
            writer.append("submitted", f"key-{i}", spec=_spec_doc())
            writer.append("completed", f"key-{i}", exit_code=0)
        writer.close()
        segments = segment_paths(tmp_path / "j")
        assert len(segments) > 1
        assert _counter(bundle, "service.journal.rotations") == (
            len(segments) - 1
        )
        # Rotation preserves the single logical stream.
        state = replay(tmp_path / "j")
        assert state.events == 16
        assert all(not e.open for e in state.episodes.values())

    def test_reopen_continues_sequence(self, tmp_path, bundle):
        root = tmp_path / "j"
        writer = JournalWriter(root)
        writer.append("submitted", "k1", spec=_spec_doc())
        writer.close()
        state = replay(root)
        second = JournalWriter(root, next_seq=state.next_seq)
        record = second.append("completed", "k1", exit_code=0)
        second.close()
        assert record["seq"] == 2
        validate_journal_dir(root)

    def test_torn_tail_truncated_on_reopen(self, tmp_path, bundle):
        """Appending after a torn line would weld two records together;
        the writer must cut the unacknowledged bytes first."""
        root = tmp_path / "j"
        writer = JournalWriter(root)
        writer.append("submitted", "k1", spec=_spec_doc())
        writer.close()
        segment = segment_paths(root)[-1]
        with open(segment, "ab") as stream:
            stream.write(b'{"schema": "repro.journal/1", "seq": 2, "ev')
        state = replay(root)
        assert state.torn_lines == 1
        assert state.next_seq == 2
        second = JournalWriter(root, next_seq=state.next_seq)
        second.append("completed", "k1", exit_code=0)
        second.close()
        assert _counter(bundle, "service.journal.torn_repaired") == 1
        # Post-repair the journal is fully valid again — no torn line
        # buried mid-stream.
        summary = validate_journal_dir(root)
        assert summary["torn_lines"] == 0
        assert summary["counts"]["completed"] == 1


class TestReplay:
    def test_episodes_fold_to_latest(self, tmp_path, bundle):
        writer = JournalWriter(tmp_path / "j")
        _write_episode(
            writer,
            "k1",
            [
                ("submitted", {"spec": _spec_doc(shards=3)}),
                ("running", {"attempts": 1}),
                ("shard_done", {"shard_index": 0, "shard_count": 3}),
                ("shard_done", {"shard_index": 2, "shard_count": 3}),
            ],
        )
        _write_episode(
            writer,
            "k2",
            [
                ("submitted", {"spec": _spec_doc(priority="batch")}),
                ("running", {"attempts": 1}),
                ("completed", {"exit_code": 0}),
            ],
        )
        writer.close()
        state = replay(tmp_path / "j")
        open_episode = state.episodes["k1"]
        assert open_episode.open
        assert open_episode.shards_done == {0, 2}
        assert open_episode.shard_count == 3
        assert open_episode.crashes == 1
        assert not state.episodes["k2"].open
        assert [e.key for e in state.unfinished()] == ["k1"]

    def test_resubmission_opens_fresh_episode(self, tmp_path, bundle):
        """A completed job whose result was evicted from the store can
        be submitted again: the new episode starts clean."""
        writer = JournalWriter(tmp_path / "j")
        _write_episode(
            writer,
            "k1",
            [
                ("submitted", {"spec": _spec_doc()}),
                ("running", {"attempts": 1}),
                ("completed", {"exit_code": 0}),
                ("submitted", {"spec": _spec_doc()}),
            ],
        )
        writer.close()
        state = replay(tmp_path / "j")
        episode = state.episodes["k1"]
        assert episode.open
        assert episode.crashes == 0
        assert episode.first_seq == 4

    def test_crash_count_is_running_events(self, tmp_path, bundle):
        writer = JournalWriter(tmp_path / "j")
        _write_episode(
            writer,
            "k1",
            [
                ("submitted", {"spec": _spec_doc()}),
                ("running", {"attempts": 1}),
                ("running", {"attempts": 1}),
                ("running", {"attempts": 2}),
            ],
        )
        writer.close()
        assert replay(tmp_path / "j").episodes["k1"].crashes == 3

    def test_prefix_replay_is_consistent(self, tmp_path, bundle):
        """Property-style: every prefix of a journal replays without
        error, prefix states grow monotonically (events, shards_done),
        and re-replay of the same prefix is idempotent."""
        writer = JournalWriter(tmp_path / "j", segment_max_bytes=300)
        _write_episode(
            writer,
            "k1",
            [
                ("submitted", {"spec": _spec_doc(shards=3)}),
                ("running", {"attempts": 1}),
                ("shard_done", {"shard_index": 0, "shard_count": 3}),
                ("shard_done", {"shard_index": 1, "shard_count": 3}),
                ("shard_done", {"shard_index": 2, "shard_count": 3}),
                ("completed", {"exit_code": 0}),
            ],
        )
        _write_episode(
            writer,
            "k2",
            [
                ("submitted", {"spec": _spec_doc(priority="batch")}),
                ("running", {"attempts": 1}),
                ("failed", {"error_type": "timeout", "message": "slow"}),
                ("submitted", {"spec": _spec_doc(priority="batch")}),
                ("running", {"attempts": 1}),
            ],
        )
        writer.close()
        lines = read_journal_lines(tmp_path / "j")
        assert len(lines) == 11
        previous = None
        for cut in range(len(lines) + 1):
            prefix = lines[:cut]
            state = replay_lines(prefix)
            again = replay_lines(prefix)
            assert state.to_dict() == again.to_dict()  # idempotent
            assert state.events == cut
            assert state.torn_lines == 0
            for episode in state.episodes.values():
                assert episode.state in (
                    "queued",
                    "running",
                    "done",
                    "failed",
                    "dead_lettered",
                )
                assert all(
                    0 <= i < episode.shard_count
                    for i in episode.shards_done
                )
            if previous is not None:
                assert state.events == previous.events + 1
                for key, old in previous.episodes.items():
                    new = state.episodes[key]
                    # Within one episode progress only grows; a fresh
                    # submitted record resets to a new episode.
                    if new.first_seq == old.first_seq:
                        assert new.shards_done >= old.shards_done
                        assert new.crashes >= old.crashes
            previous = state

    def test_empty_directory_replays_empty(self, tmp_path):
        state = replay(tmp_path / "missing")
        assert state.events == 0
        assert state.next_seq == 1


class TestCompaction:
    def _populate(self, root):
        writer = JournalWriter(root)
        _write_episode(
            writer,
            "done-key",
            [
                ("submitted", {"spec": _spec_doc()}),
                ("running", {"attempts": 1}),
                ("completed", {"exit_code": 0}),
            ],
        )
        _write_episode(
            writer,
            "open-key",
            [
                ("submitted", {"spec": _spec_doc(shards=2)}),
                ("running", {"attempts": 1}),
                ("shard_done", {"shard_index": 0, "shard_count": 2}),
            ],
        )
        _write_episode(
            writer,
            "dead-key",
            [
                ("submitted", {"spec": _spec_doc()}),
                ("running", {"attempts": 1}),
                (
                    "dead_lettered",
                    {"crashes": 3, "error_type": "worker-crashed"},
                ),
            ],
        )
        writer.close()

    def test_compact_drops_closed_keeps_open_and_dead(
        self, tmp_path, bundle
    ):
        root = tmp_path / "j"
        self._populate(root)
        summary = compact(root)
        assert summary["events_before"] == 9
        assert summary["events_after"] == 6
        state = replay(root)
        assert set(state.episodes) == {"open-key", "dead-key"}
        assert state.episodes["open-key"].shards_done == {0}
        assert state.episodes["dead-key"].state == "dead_lettered"
        assert len(segment_paths(root)) == 1
        validate_journal_dir(root)

    def test_compact_can_drop_dead_letters(self, tmp_path, bundle):
        root = tmp_path / "j"
        self._populate(root)
        compact(root, drop_dead_letters=True)
        assert set(replay(root).episodes) == {"open-key"}

    def test_writer_appends_after_compaction(self, tmp_path, bundle):
        """Compaction preserves original seq values; a new writer must
        continue past them so the stream stays strictly increasing."""
        root = tmp_path / "j"
        self._populate(root)
        compact(root)
        state = replay(root)
        writer = JournalWriter(root, next_seq=state.next_seq)
        writer.append("completed", "open-key", exit_code=0)
        writer.close()
        validate_journal_dir(root)


class TestValidator:
    def _lines(self, *records):
        return [json.dumps(r, sort_keys=True) for r in records]

    def _record(self, seq, event, key="k1", **fields):
        return {
            "schema": JOURNAL_SCHEMA,
            "seq": seq,
            "event": event,
            "key": key,
            "unix": 1700000000.0 + seq,
            **fields,
        }

    def test_valid_journal_summary(self, tmp_path, bundle):
        root = tmp_path / "j"
        writer = JournalWriter(root)
        _write_episode(
            writer,
            "k1",
            [
                ("submitted", {"spec": _spec_doc()}),
                ("running", {"attempts": 1}),
                ("completed", {"exit_code": 0}),
            ],
        )
        writer.close()
        summary = validate_journal_dir(root)
        assert summary["events"] == 3
        assert summary["open_episodes"] == 0
        assert summary["closed_episodes"] == 1

    def test_rejects_wrong_schema(self):
        record = self._record(1, "submitted", spec=_spec_doc())
        record["schema"] = "repro.journal/999"
        with pytest.raises(JournalError, match="schema"):
            validate_journal_lines(self._lines(record))

    def test_rejects_non_monotonic_seq(self):
        lines = self._lines(
            self._record(2, "submitted", spec=_spec_doc()),
            self._record(2, "running", attempts=1),
        )
        with pytest.raises(JournalError, match="strictly increasing"):
            validate_journal_lines(lines)

    def test_rejects_event_without_episode(self):
        with pytest.raises(JournalError, match="no open episode"):
            validate_journal_lines(
                self._lines(self._record(1, "running", attempts=1))
            )

    def test_rejects_double_terminal(self):
        lines = self._lines(
            self._record(1, "submitted", spec=_spec_doc()),
            self._record(2, "completed", exit_code=0),
            self._record(3, "failed", error_type="x", message="y"),
        )
        with pytest.raises(JournalError, match="terminal"):
            validate_journal_lines(lines)

    def test_rejects_resubmit_of_open_episode(self):
        lines = self._lines(
            self._record(1, "submitted", spec=_spec_doc()),
            self._record(2, "submitted", spec=_spec_doc()),
        )
        with pytest.raises(JournalError, match="resubmitted"):
            validate_journal_lines(lines)

    def test_rejects_shard_index_out_of_range(self):
        lines = self._lines(
            self._record(1, "submitted", spec=_spec_doc(shards=2)),
            self._record(2, "shard_done", shard_index=2, shard_count=2),
        )
        with pytest.raises(JournalError, match="shard_done"):
            validate_journal_lines(lines)

    def test_torn_line_tolerated_only_at_end(self):
        good = self._record(1, "submitted", spec=_spec_doc())
        summary = validate_journal_lines(self._lines(good) + ['{"torn'])
        assert summary["torn_lines"] == 1
        with pytest.raises(JournalError, match="mid-journal"):
            validate_journal_lines(
                ['{"torn'] + self._lines(good)
            )

    def test_empty_directory_fails(self, tmp_path):
        with pytest.raises(JournalError, match="no journal segments"):
            validate_journal_dir(tmp_path / "missing")
