"""Tests of the LRU result store."""

import os

from repro.obs import observed
from repro.service import ResultStore

K1 = "a" * 64
K2 = "b" * 64
K3 = "c" * 64


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        assert store.get(K1) is None
        store.put(K1, b"diameter: 3 hops\n")
        assert store.get(K1) == b"diameter: 3 hops\n"
        assert store.contains(K1)

    def test_counters(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with observed() as run:
            store.get(K1)
            store.put(K1, b"x")
            store.get(K1)
            store.get(K1)
        counters = run.metrics.to_dict()["counters"]
        assert counters["service.store.miss"] == 1
        assert counters["service.store.hit"] == 2

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(K1, b"x" * 1000)
        leftovers = [p for p in store.root.iterdir() if p.name.startswith("tmp-")]
        assert leftovers == []

    def test_stats(self, tmp_path):
        store = ResultStore(tmp_path / "s", max_bytes=100)
        store.put(K1, b"x" * 10)
        stats = store.stats()
        assert stats == {"entries": 1, "bytes": 10, "max_bytes": 100}


class TestEviction:
    def _age(self, store, key, age_s):
        """Backdate an entry's mtime so LRU order is deterministic."""
        path = store.path(key)
        stat = path.stat()
        os.utime(path, (stat.st_atime - age_s, stat.st_mtime - age_s))

    def test_lru_eviction_under_budget(self, tmp_path):
        store = ResultStore(tmp_path / "s", max_bytes=250)
        with observed() as run:
            store.put(K1, b"1" * 100)
            self._age(store, K1, 100)
            store.put(K2, b"2" * 100)
            self._age(store, K2, 50)
            store.put(K3, b"3" * 100)  # 300 bytes total: evict oldest
        assert store.get(K1) is None
        assert store.get(K2) == b"2" * 100
        assert store.get(K3) == b"3" * 100
        counters = run.metrics.to_dict()["counters"]
        assert counters["service.store.evict"] == 1

    def test_hit_refreshes_recency(self, tmp_path):
        store = ResultStore(tmp_path / "s", max_bytes=250)
        store.put(K1, b"1" * 100)
        self._age(store, K1, 100)
        store.put(K2, b"2" * 100)
        self._age(store, K2, 50)
        # Serving K1 makes it the most recent: K2 must go instead.
        assert store.get(K1) is not None
        store.put(K3, b"3" * 100)
        assert store.get(K1) is not None
        assert store.get(K2) is None

    def test_just_written_entry_protected(self, tmp_path):
        """One oversized entry must survive its own write."""
        store = ResultStore(tmp_path / "s", max_bytes=50)
        store.put(K1, b"1" * 100)
        assert store.get(K1) == b"1" * 100

    def test_unbounded_by_default(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for i, key in enumerate((K1, K2, K3)):
            store.put(key, bytes([65 + i]) * 1000)
        assert store.stats()["entries"] == 3
