"""``GET /v1/jobs`` listing and the client's backpressure-wait mode."""

import threading
import time

import pytest


def _saturate(client, chain_trace, count=2, delay_s=1.5):
    """Occupy the single worker plus the queue with slow jobs.

    Returns the submitter threads; callers join them at the end so the
    service_factory teardown never races live requests.
    """
    threads = []
    for index in range(count):
        # Distinct grid_points so nothing coalesces or hits the store.
        def submit(gp=40 + index):
            client.delay_cdf(
                chain_trace, max_hops=3, grid_points=gp, _test_delay_s=delay_s
            )

        thread = threading.Thread(target=submit, daemon=True)
        thread.start()
        threads.append(thread)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        pool = client.health().json()["pool"]
        if pool["busy"] + pool["pending"] >= count:
            return threads
        time.sleep(0.02)
    pytest.fail("pool never saturated")


class TestJobsListing:
    def test_listing_reports_finished_jobs(self, service_factory, chain_trace):
        _service, client, _bundle = service_factory()
        client.delay_cdf(chain_trace, max_hops=3, grid_points=8)
        response = client.jobs()
        assert response.status == 200
        listing = response.json()
        assert listing["count"] == 1
        assert listing["inflight"] == 0
        assert listing["dead_lettered"] == 0
        document = listing["jobs"][0]
        assert document["state"] == "done"
        assert document["priority"] == "interactive"
        assert document["command"] == "delay-cdf"
        assert document["exit_code"] == 0

    def test_state_and_priority_filters(self, service_factory, chain_trace):
        _service, client, _bundle = service_factory()
        client.delay_cdf(chain_trace, max_hops=3, grid_points=8)
        client.delay_cdf(
            chain_trace, max_hops=3, grid_points=12, priority="batch"
        )
        batch_only = client.jobs(priority="batch").json()
        assert batch_only["count"] == 1
        assert batch_only["jobs"][0]["priority"] == "batch"
        done = client.jobs(state="done").json()
        assert done["count"] == 2
        queued = client.jobs(state="queued").json()
        assert queued["count"] == 0

    def test_limit_bounds_the_page(self, service_factory, chain_trace):
        _service, client, _bundle = service_factory()
        for grid_points in (8, 10, 12):
            client.delay_cdf(
                chain_trace, max_hops=3, grid_points=grid_points
            )
        listing = client.jobs(limit=2).json()
        assert listing["count"] == 2
        assert len(listing["jobs"]) == 2
        # Finished jobs list newest-first.
        assert client.jobs().json()["count"] == 3

    def test_invalid_filters_are_rejected(self, service_factory, chain_trace):
        _service, client, _bundle = service_factory()
        assert client.jobs(state="bogus").status == 400
        assert client.jobs(priority="urgent").status == 400
        assert client.jobs(limit=0).status == 400
        assert client.request("GET", "/v1/jobs?limit=nope").status == 400
        assert client.request("GET", "/v1/jobs?flavour=mild").status == 400
        # The page bound is enforced server-side too.
        assert client.jobs(limit=100000).status == 400


class TestWaitOnBackpressure:
    def test_opted_in_client_waits_out_saturation(
        self, service_factory, chain_trace
    ):
        """With the pool and queue full, a plain submit is shed with 429
        + Retry-After, a bounded waiter gives up with the last 429, and
        a patient waiter lands once the blockers drain."""
        _service, client, _bundle = service_factory(
            workers=1, queue_capacity=1, job_timeout_s=2.0
        )
        blockers = _saturate(client, chain_trace, count=2, delay_s=1.5)
        try:
            shed = client.delay_cdf(chain_trace, max_hops=3, grid_points=8)
            assert shed.status == 429
            assert int(shed.headers["Retry-After"]) >= 1

            bounded = client.delay_cdf(
                chain_trace,
                max_hops=3,
                grid_points=10,
                wait_on_backpressure=True,
                max_wait_s=0.25,
            )
            assert bounded.status == 429  # budget spent, last 429 returned

            patient = client.delay_cdf(
                chain_trace,
                max_hops=3,
                grid_points=12,
                wait_on_backpressure=True,
                max_wait_s=30.0,
            )
            assert patient.status == 200
            assert patient.headers["X-Repro-Source"] == "computed"
        finally:
            for thread in blockers:
                thread.join(timeout=30.0)
