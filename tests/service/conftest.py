"""Shared fixtures: a tiny trace and a running service instance."""

import os

import pytest

from repro.obs import Instrumentation, LockWatch, set_obs
from repro.service import ReproService, ServiceConfig, ServiceClient, serve_in_thread


@pytest.fixture(autouse=True)
def lockwatch_gate():
    """Watch every service test's locks when ``REPRO_LOCKWATCH=1``.

    Off by default (plain test runs pay nothing); the CI concurrency job
    turns it on so the whole service suite — not just the dedicated fuzz
    tests — runs under the lock-order watchdog.  Any ABBA inversion
    observed anywhere in a test fails that test at teardown.
    """
    if os.environ.get("REPRO_LOCKWATCH") != "1":
        yield None
        return
    watch = LockWatch(long_hold_threshold_s=5.0)
    with watch.watching():
        yield watch
    inversions = watch.inversions()
    assert inversions == [], f"lock-order inversions observed: {inversions}"


@pytest.fixture
def chain_trace(tmp_path):
    """A 4-node chain: diameter 3 hops, computes in milliseconds."""
    path = tmp_path / "chain.txt"
    path.write_text("0 1 0 100\n1 2 0 100\n2 3 0 100\n")
    return str(path)


@pytest.fixture
def service_factory(tmp_path):
    """Start fully-wired service instances; tears everything down.

    Each ``start(**config_overrides)`` installs a fresh obs bundle (the
    pool binds its instruments at start), boots a service on an
    ephemeral port, and returns ``(service, client, bundle)``.
    """
    running = []

    def start(**overrides):
        bundle = Instrumentation.started()
        previous = set_obs(bundle)
        overrides.setdefault("workers", 1)
        overrides.setdefault("allow_test_delay", True)
        overrides.setdefault(
            "cache_dir", str(tmp_path / f"service-cache-{len(running)}")
        )
        service = ReproService(ServiceConfig(**overrides))
        server, _thread, url = serve_in_thread(service)
        client = ServiceClient(url, timeout_s=60.0)
        running.append((service, server, previous))
        return service, client, bundle

    yield start

    for service, server, previous in reversed(running):
        server.shutdown()
        server.server_close()
        service.close(drain=True, timeout_s=10.0)
        set_obs(previous)
