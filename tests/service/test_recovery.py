"""Durability end to end: SIGKILL, restart, replay, dead-lettering.

The acceptance path for the journal subsystem: a server killed
mid-sharded-job must, on restart with the same ``--journal-dir``,
finish the job while recomputing only the shards whose checkpoints
never landed; unfinished jobs re-enqueue interactive-first; jobs past
the crash budget land in the queryable dead-letter set and refuse
resubmission with 409.
"""

import io
import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import redirect_stdout
from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.core.shards import shard_sources
from repro.obs import Instrumentation, set_obs
from repro.service import ReproService, ServiceClient, ServiceConfig
from repro.service.jobs import JobSpec, job_key
from repro.service.journal import (
    JournalWriter,
    read_journal_lines,
    replay,
    validate_journal_dir,
)
from repro.traces.format import read_contacts


def cli_bytes(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli_main(argv)
    assert code == 0
    return buffer.getvalue().encode("utf-8")


def _counter(bundle, name):
    counters = bundle.metrics.to_dict()["counters"]
    return sum(v for k, v in counters.items() if k.split("{")[0] == name)


def _spec(trace, priority="interactive", shards=1, grid_points=8):
    return JobSpec(
        command="delay-cdf",
        trace=str(Path(trace).resolve()),
        max_hops=3,
        grid_points=grid_points,
        eps=None,
        shards=shards,
        priority=priority,
    )


def _wait_until(predicate, timeout_s=30.0, message="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {message}")


class TestKillAndRestart:
    def test_sigkill_mid_sharded_job_completes_on_restart(
        self, tmp_path, chain_trace
    ):
        """The acceptance scenario: a real server process, SIGKILLed
        between shard checkpoints, restarted over the same journal and
        cache.  The restarted instance must recompute exactly the
        missing shards (journaled ``shard_done`` checkpoints are
        skipped, the finalisation run is pure cache hits) and commit
        the byte-identical result to the store."""
        # Reference bytes, computed before the restart's obs bundle
        # exists so the CLI run cannot pollute the asserted counters.
        expected = cli_bytes(
            ["delay-cdf", chain_trace, "--max-hops", "3", "--grid-points", "8"]
        )
        cache = tmp_path / "cache"
        journal = tmp_path / "journal"
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "serve",
                "--cache-dir",
                str(cache),
                "--journal-dir",
                str(journal),
                "--port",
                "0",
                "--workers",
                "1",
                "--allow-test-delay",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            assert proc.stdout is not None
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            url = banner.strip().rsplit(" ", 1)[-1]
            client = ServiceClient(url, timeout_s=60.0)

            def submit():
                try:
                    client.delay_cdf(
                        chain_trace,
                        max_hops=3,
                        grid_points=8,
                        shards=3,
                        _test_delay_s=1.0,
                    )
                except OSError:
                    pass  # the server dies under this request by design

            thread = threading.Thread(target=submit, daemon=True)
            thread.start()
            _wait_until(
                lambda: any(
                    e.shards_done for e in replay(journal).episodes.values()
                ),
                message="first journaled shard checkpoint",
            )
            # The next shard is now sitting in its injected pre-compute
            # delay: kill the whole server between checkpoints.
            time.sleep(0.2)
            proc.kill()
            proc.wait(timeout=10.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)

        state = replay(journal)
        assert len(state.unfinished()) == 1
        episode = state.unfinished()[0]
        done_before = set(episode.shards_done)
        assert 1 <= len(done_before) < 3
        assert episode.crashes == 1  # one journaled running event

        bundle = Instrumentation.started()
        previous = set_obs(bundle)
        service = None
        try:
            service = ReproService(
                ServiceConfig(
                    cache_dir=str(cache),
                    journal_dir=str(journal),
                    workers=1,
                    allow_test_delay=True,
                )
            )
            key = episode.key
            _wait_until(
                lambda: replay(journal).episodes[key].state == "done",
                timeout_s=60.0,
                message="recovered job completion",
            )
            assert service.store.get(key) == expected
            assert _counter(bundle, "service.recovery.requeued") == 1
            assert _counter(
                bundle, "service.recovery.shards_skipped"
            ) == len(done_before)
            # Only the missing shards were recomputed: one cache write
            # per missing shard, and the finalisation run read all 3
            # shard checkpoints as hits.
            assert _counter(bundle, "profiles.cache.miss") == 3 - len(
                done_before
            )
            assert _counter(bundle, "profiles.cache.hit") == 3
            # The DP saw exactly the missing shards' sources — nothing
            # the first life checkpointed was computed again.
            plan = shard_sources(read_contacts(chain_trace).nodes, 3)
            missing_sources = sum(
                len(plan[i])
                for i in range(len(plan))
                if i not in done_before
            )
            assert _counter(bundle, "optimal.sources") == missing_sources
            # The torn-tail repair keeps the journal contract valid
            # across the crash/restart cycle.
            summary = validate_journal_dir(journal)
            assert summary["open_episodes"] == 0
        finally:
            if service is not None:
                service.close(drain=True, timeout_s=10.0)
            set_obs(previous)

    def test_unfinished_monolithic_job_recovered_to_store(
        self, service_factory, chain_trace, tmp_path
    ):
        """A ``submitted`` record with no terminal event re-enqueues on
        startup even though no HTTP client is waiting; the result goes
        to the store and the episode closes."""
        expected = cli_bytes(
            ["delay-cdf", chain_trace, "--max-hops", "3", "--grid-points", "8"]
        )
        journal = tmp_path / "journal-mono"
        spec = _spec(chain_trace)
        key = job_key(spec, read_contacts(chain_trace))
        writer = JournalWriter(journal)
        writer.append("submitted", key, spec=spec.to_document())
        writer.close()
        service, client, bundle = service_factory(
            journal_dir=str(journal)
        )
        _wait_until(
            lambda: replay(journal).episodes[key].state == "done",
            message="recovered job completion",
        )
        assert _counter(bundle, "service.recovery.requeued") == 1
        assert service.store.get(key) == expected
        # A fresh identical query is served straight from the store.
        response = client.delay_cdf(chain_trace, max_hops=3, grid_points=8)
        assert response.status == 200
        assert response.headers["X-Repro-Source"] == "store"
        assert response.body == expected

    def test_recovery_reenqueues_interactive_before_batch(
        self, service_factory, chain_trace, tmp_path
    ):
        """Two open episodes, the *batch* one journaled first: recovery
        must still run the interactive one first."""
        journal = tmp_path / "journal-priority"
        network = read_contacts(chain_trace)
        batch_spec = _spec(chain_trace, priority="batch", grid_points=8)
        inter_spec = _spec(
            chain_trace, priority="interactive", grid_points=12
        )
        batch_key = job_key(batch_spec, network)
        inter_key = job_key(inter_spec, network)
        assert batch_key != inter_key
        writer = JournalWriter(journal)
        writer.append("submitted", batch_key, spec=batch_spec.to_document())
        writer.append("submitted", inter_key, spec=inter_spec.to_document())
        writer.close()
        _service, _client, bundle = service_factory(
            journal_dir=str(journal), workers=1
        )
        _wait_until(
            lambda: all(
                not e.open for e in replay(journal).episodes.values()
            ),
            message="both recovered jobs to finish",
        )
        assert _counter(bundle, "service.recovery.requeued") == 2
        completed_order = [
            json.loads(line)["key"]
            for line in read_journal_lines(journal)
            if json.loads(line).get("event") == "completed"
        ]
        assert completed_order == [inter_key, batch_key]

    def test_changed_trace_is_not_recomputed_under_stale_key(
        self, service_factory, tmp_path
    ):
        """If the trace file changed since the submission was journaled,
        the recomputed job key no longer matches — running the job
        would poison the result store with different bytes under the
        old key, so recovery must drop it with a terminal ``failed``."""
        trace = tmp_path / "mutating.txt"
        trace.write_text("0 1 0 100\n1 2 0 100\n2 3 0 100\n")
        spec = _spec(str(trace))
        key = job_key(spec, read_contacts(str(trace)))
        journal = tmp_path / "journal-stale"
        writer = JournalWriter(journal)
        writer.append("submitted", key, spec=spec.to_document())
        writer.close()
        trace.write_text("0 1 0 100\n1 2 0 100\n2 3 0 100\n3 0 50 80\n")
        _service, _client, bundle = service_factory(
            journal_dir=str(journal)
        )
        state = replay(journal)
        assert state.episodes[key].state == "failed"
        assert state.episodes[key].error_type == "trace-changed"
        assert _counter(bundle, "service.recovery.requeued") == 0


class TestDeadLettering:
    def test_journaled_crash_budget_dead_letters_on_restart(
        self, service_factory, chain_trace, tmp_path
    ):
        """Three journaled ``running`` events = three server lives died
        executing this job: the default budget dead-letters it at
        replay instead of crashing a fourth life."""
        journal = tmp_path / "journal-dead"
        spec = _spec(chain_trace)
        key = job_key(spec, read_contacts(chain_trace))
        writer = JournalWriter(journal)
        writer.append("submitted", key, spec=spec.to_document())
        for _ in range(3):
            writer.append("running", key, attempts=1)
        writer.close()
        _service, client, bundle = service_factory(
            journal_dir=str(journal)
        )
        assert _counter(bundle, "service.recovery.dead_lettered") == 1
        listing = client.jobs(state="dead_lettered").json()
        assert listing["count"] == 1
        record = listing["jobs"][0]
        assert record["state"] == "dead_lettered"
        assert record["crashes"] == 3
        assert record["recovered"] is True
        # The dead letter answers by job id too.
        assert client.job(record["job"]).json()["state"] == "dead_lettered"
        # Resubmitting the identical query is refused, not re-queued.
        response = client.delay_cdf(chain_trace, max_hops=3, grid_points=8)
        assert response.status == 409
        assert response.json()["error"]["type"] == "dead-lettered"
        state = replay(journal)
        assert state.episodes[key].state == "dead_lettered"
        validate_journal_dir(journal)

    def test_runtime_crash_budget_dead_letters(
        self, service_factory, chain_trace, tmp_path
    ):
        """With a budget of one, a single worker crash dead-letters the
        job in the running server: the waiter gets a structured 500,
        the dead letter is queryable, resubmission is 409."""
        journal = tmp_path / "journal-runtime"
        service, client, bundle = service_factory(
            workers=1,
            journal_dir=str(journal),
            max_attempts=1,
            dead_letter_attempts=1,
        )
        result = {}

        def submit():
            result["response"] = client.delay_cdf(
                chain_trace, max_hops=3, grid_points=8, _test_delay_s=5.0
            )

        thread = threading.Thread(target=submit)
        thread.start()
        _wait_until(
            lambda: any(
                e.state == "running"
                for e in replay(journal).episodes.values()
            ),
            message="job to start running",
        )
        time.sleep(0.2)  # let the worker settle into its injected delay
        pid = service.pool.worker_pids()[0]
        assert pid is not None
        os.kill(pid, signal.SIGKILL)
        thread.join(timeout=30.0)
        response = result["response"]
        assert response.status == 500
        assert response.json()["error"]["type"] == "dead-lettered"
        # The counter lands just after the waiter is notified; poll
        # rather than race the supervisor thread.
        _wait_until(
            lambda: _counter(bundle, "service.jobs.dead_lettered") == 1,
            timeout_s=5.0,
            message="dead-letter counter",
        )
        listing = client.jobs(state="dead_lettered").json()
        assert listing["count"] == 1
        assert listing["jobs"][0]["crashes"] == 1
        resubmitted = client.delay_cdf(
            chain_trace, max_hops=3, grid_points=8
        )
        assert resubmitted.status == 409
        state = replay(journal)
        assert [e.state for e in state.episodes.values()] == [
            "dead_lettered"
        ]
        validate_journal_dir(journal)
