"""End-to-end request tracing: span reassembly across the three contexts.

These tests drive the full service over HTTP and then read the traces
back through ``GET /debug/traces/<id>``, asserting the acceptance
criterion of the tracing layer: one request produces one trace whose
spans cover HTTP handling, job admission, the pool attempt, worker
execution and the engine internals — with coalesced followers linked to
their leader and a crash-retried job showing both attempts.
"""

import io
import json
import os
import signal
import threading
import time

from repro.obs.log import StructuredLogger
from repro.obs.tracectx import TraceContext
from repro.obs.tracestore import validate_trace_jsonl


def _kill_worker(service):
    pid = service.pool.worker_pids()[0]
    assert pid is not None
    os.kill(pid, signal.SIGKILL)
    return pid


def _spans_by_name(export):
    spans = {}
    for line in export.splitlines():
        record = json.loads(line)
        if record.get("kind") == "span":
            spans.setdefault(record["name"], []).append(record)
    return spans


def _export(client, trace_id):
    response = client.trace(trace_id)
    assert response.status == 200, response.body
    assert response.headers["Content-Type"] == "application/x-ndjson"
    return response.text()


class TestLayerCoverage:
    def test_one_request_one_trace_across_all_layers(
        self, service_factory, chain_trace
    ):
        """The PR's acceptance criterion, asserted end to end."""
        service, client, _ = service_factory(workers=1)
        response = client.diameter(chain_trace, max_hops=3, grid_points=6)
        assert response.status == 200
        assert response.headers["X-Repro-Source"] == "computed"
        trace_id = response.trace_id
        assert trace_id is not None and len(trace_id) == 32

        export = _export(client, trace_id)
        summary = validate_trace_jsonl(
            export,
            require_names=(
                "service.http.request",
                "service.admit",
                "service.execute",
                "service.pool.attempt",
                "worker.execute",
                # at least one span from core/, recorded *inside* the
                # worker process:
                "optimal.compute_profiles",
                "cache.load_or_compute",
            ),
            require_origins=("server", "supervisor", "worker"),
        )
        assert summary["trace_id"] == trace_id
        assert summary["roots"] == 1

        # The hierarchy reassembles: request -> execute -> attempt ->
        # worker -> engine.
        spans = _spans_by_name(export)
        root = spans["service.http.request"][0]
        execute = spans["service.execute"][0]
        attempt = spans["service.pool.attempt"][0]
        worker = spans["worker.execute"][0]
        assert root["parent_span_id"] is None
        assert execute["parent_span_id"] == root["span_id"]
        assert attempt["parent_span_id"] == execute["span_id"]
        assert worker["parent_span_id"] == attempt["span_id"]
        assert attempt["attrs"]["outcome"] == "ok"
        engine = spans["optimal.compute_profiles"][0]
        assert engine["origin"] == "worker"

    def test_store_hit_trace_has_no_worker_spans(
        self, service_factory, chain_trace
    ):
        _service, client, _ = service_factory(workers=1)
        params = {"max_hops": 3, "grid_points": 6}
        first = client.diameter(chain_trace, **params)
        second = client.diameter(chain_trace, **params)
        assert second.headers["X-Repro-Source"] == "store"
        assert second.trace_id != first.trace_id
        spans = _spans_by_name(_export(client, second.trace_id))
        assert "service.admit" in spans
        assert "worker.execute" not in spans

    def test_inbound_traceparent_continues_the_trace(
        self, service_factory, chain_trace
    ):
        _service, client, _ = service_factory(workers=1)
        upstream = TraceContext.new()
        response = client.diameter(
            chain_trace,
            max_hops=2,
            grid_points=6,
            traceparent=upstream.to_traceparent(),
        )
        assert response.status == 200
        assert response.trace_id == upstream.trace_id
        export = _export(client, upstream.trace_id)
        validate_trace_jsonl(export, require_origins=("server", "worker"))
        root = _spans_by_name(export)["service.http.request"][0]
        # The caller's span is attached as an attribute (it lives in the
        # caller's process, so it cannot resolve inside this export).
        assert root["attrs"]["remote_parent"] == upstream.span_id
        assert root["span_id"] != upstream.span_id


class TestCoalescing:
    def test_eight_way_coalesce_links_to_the_leader(
        self, service_factory, chain_trace
    ):
        _service, client, _ = service_factory(workers=1)
        responses = [None] * 8

        def issue(i):
            responses[i] = client.delay_cdf(
                chain_trace, max_hops=2, grid_points=6, _test_delay_s=1.0
            )

        threads = [
            threading.Thread(target=issue, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert all(r.status == 200 for r in responses)
        bodies = {r.body for r in responses}
        assert len(bodies) == 1, "coalesced responses must be byte-identical"
        by_source = {}
        for r in responses:
            by_source.setdefault(r.headers["X-Repro-Source"], []).append(r)
        leaders = by_source.get("computed", [])
        followers = by_source.get("coalesced", [])
        assert len(leaders) == 1
        assert len(followers) == 7

        leader_export = _export(client, leaders[0].trace_id)
        summary = validate_trace_jsonl(
            leader_export,
            require_names=("worker.execute",),
            require_link_types=("coalesce-fan-in",),
        )
        assert summary["links"] == 7

        leader_spans = _spans_by_name(leader_export)
        leader_execute = leader_spans["service.execute"][0]["span_id"]
        follower_trace_ids = set()
        for follower in followers:
            export = _export(client, follower.trace_id)
            validate_trace_jsonl(export, require_link_types=("coalesce",))
            links = [
                json.loads(line)
                for line in export.splitlines()
                if json.loads(line).get("kind") == "link"
            ]
            (link,) = links
            # Every follower links its execute span to the leader's
            # compute span.
            assert link["linked_trace_id"] == leaders[0].trace_id
            assert link["linked_span_id"] == leader_execute
            follower_trace_ids.add(follower.trace_id)
        assert len(follower_trace_ids) == 7

        # And the fan-in links on the leader point back at them.
        fan_in = [
            json.loads(line)
            for line in leader_export.splitlines()
            if json.loads(line).get("kind") == "link"
        ]
        assert {l["linked_trace_id"] for l in fan_in} == follower_trace_ids
        assert all(l["span_id"] == leader_execute for l in fan_in)


class TestCrashRetry:
    def test_crash_and_retry_is_one_trace_with_both_attempts(
        self, service_factory, chain_trace
    ):
        service, client, _ = service_factory(workers=1, respawn_delay_s=0.2)
        holder = [None]

        def issue():
            holder[0] = client.delay_cdf(
                chain_trace, max_hops=2, grid_points=6, _test_delay_s=1.0
            )

        thread = threading.Thread(target=issue)
        thread.start()
        time.sleep(0.4)  # inside the first attempt's delay window
        _kill_worker(service)
        thread.join()

        response = holder[0]
        assert response.status == 200

        export = _export(client, response.trace_id)
        validate_trace_jsonl(
            export,
            require_names=("service.pool.attempt", "worker.execute"),
            require_origins=("server", "supervisor", "worker"),
        )
        spans = _spans_by_name(export)
        attempts = sorted(
            spans["service.pool.attempt"],
            key=lambda s: s["attrs"]["attempt"],
        )
        assert [a["attrs"]["attempt"] for a in attempts] == [1, 2]
        assert [a["attrs"]["outcome"] for a in attempts] == ["crashed", "ok"]
        assert attempts[0]["span_id"] != attempts[1]["span_id"]
        # The crashed attempt's worker spans died with the process; the
        # surviving worker.execute hangs off the *second* attempt.
        (worker,) = spans["worker.execute"]
        assert worker["parent_span_id"] == attempts[1]["span_id"]
        assert worker["attrs"]["attempt"] == 2


class TestErrorPaths:
    def test_malformed_json_is_a_structured_400_with_trace_id(
        self, service_factory
    ):
        import urllib.error
        import urllib.request

        _service, client, _ = service_factory(workers=1)
        req = urllib.request.Request(
            client.base_url + "/v1/diameter",
            data=b"{not json",
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=30.0) as resp:
                status, headers, body = (
                    resp.status,
                    dict(resp.headers.items()),
                    resp.read(),
                )
        except urllib.error.HTTPError as exc:
            status, headers, body = (
                exc.code,
                dict(exc.headers.items()),
                exc.read(),
            )
        assert status == 400
        document = json.loads(body)
        assert document["error"]["type"] == "bad-request"
        assert document["trace_id"] == headers["X-Repro-Trace"]

    def test_unknown_job_is_a_structured_404_with_trace_id(
        self, service_factory
    ):
        _service, client, _ = service_factory(workers=1)
        response = client.job("no-such-job")
        assert response.status == 404
        document = response.json()
        assert document["error"]["type"] == "not-found"
        assert document["trace_id"] == response.trace_id

    def test_unknown_route_and_unknown_trace_carry_trace_ids(
        self, service_factory
    ):
        _service, client, _ = service_factory(workers=1)
        for response in (
            client.request("GET", "/nope"),
            client.request("POST", "/v1/nope"),
            client.trace("ab" * 16),
        ):
            assert response.status == 404
            assert response.json()["trace_id"] == response.trace_id

    def test_unexpected_exception_is_a_structured_500_with_trace_id(
        self, service_factory, monkeypatch
    ):
        service, client, _ = service_factory(workers=1)

        def boom(job_id):
            raise RuntimeError("wired to fail")

        monkeypatch.setattr(service, "handle_job", boom)
        response = client.job("whatever")
        assert response.status == 500
        document = response.json()
        assert document["error"]["type"] == "internal-error"
        assert "RuntimeError" in document["error"]["message"]
        assert document["trace_id"] == response.trace_id

    def test_success_responses_carry_the_trace_header_too(
        self, service_factory, chain_trace
    ):
        _service, client, _ = service_factory(workers=1)
        assert client.health().trace_id is not None
        response = client.diameter(chain_trace, max_hops=2, grid_points=6)
        assert response.trace_id is not None


class TestDiagnostics:
    def test_debug_traces_lists_recent_traces_newest_first(
        self, service_factory, chain_trace
    ):
        _service, client, _ = service_factory(workers=1)
        first = client.diameter(chain_trace, max_hops=2, grid_points=6)
        second = client.diameter(chain_trace, max_hops=3, grid_points=6)
        listing = client.traces().json()
        rows = listing["traces"]
        ids = [row["trace_id"] for row in rows]
        assert ids.index(second.trace_id) < ids.index(first.trace_id)
        row = rows[ids.index(first.trace_id)]
        assert row["root"] == "service.http.request"
        assert row["spans"] >= 3
        assert listing["stats"]["capacity"] == 256

    def test_trace_capacity_is_configurable_and_bounds_the_ring(
        self, service_factory, chain_trace
    ):
        _service, client, _ = service_factory(workers=1, trace_capacity=2)
        for hops in (2, 3, 4):
            client.diameter(chain_trace, max_hops=hops, grid_points=6)
        listing = client.traces().json()
        assert listing["stats"]["capacity"] == 2
        assert len(listing["traces"]) <= 2

    def test_slow_job_logged_and_counted(self, service_factory, chain_trace):
        service, client, bundle = service_factory(
            workers=1, slow_job_threshold_s=0.1
        )
        sink = io.StringIO()
        service.log = StructuredLogger("repro.service", stream=sink)
        response = client.delay_cdf(
            chain_trace, max_hops=2, grid_points=6, _test_delay_s=0.4
        )
        assert response.status == 200
        counters = bundle.metrics.to_dict()["counters"]
        assert counters["service.jobs.slow"] == 1
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        (slow,) = [e for e in events if e["event"] == "service.job.slow"]
        assert slow["trace_id"] == response.trace_id
        assert slow["wall_s"] >= 0.4
        assert slow["threshold_s"] == 0.1

    def test_per_endpoint_latency_histograms_in_metrics(
        self, service_factory, chain_trace
    ):
        _service, client, _ = service_factory(workers=1)
        client.diameter(chain_trace, max_hops=2, grid_points=6)
        client.health()
        text = client.metrics_text()
        assert 'service_http_latency_wall_count{endpoint="diameter"}' in text
        assert 'service_http_latency_wall_count{endpoint="healthz"}' in text
