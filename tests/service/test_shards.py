"""Sharded job execution: fan-out, progress reporting, crash resume."""

import io
import os
import signal
import threading
import time
from contextlib import redirect_stdout

import pytest

from repro.cli import main as cli_main


def cli_bytes(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli_main(argv)
    assert code == 0
    return buffer.getvalue().encode("utf-8")


def _counter(bundle, name):
    counters = bundle.metrics.to_dict()["counters"]
    return sum(v for k, v in counters.items() if k.split("{")[0] == name)


class TestShardedJobs:
    def test_sharded_job_byte_identical_to_cli(
        self, service_factory, chain_trace
    ):
        _service, client, bundle = service_factory(workers=2)
        response = client.delay_cdf(
            chain_trace, max_hops=3, grid_points=8, shards=3
        )
        assert response.status == 200
        assert response.body == cli_bytes(
            ["delay-cdf", chain_trace, "--max-hops", "3", "--grid-points", "8"]
        )
        assert _counter(bundle, "service.shards.dispatched") == 3
        assert _counter(bundle, "service.shards.completed") == 3

    def test_job_endpoint_reports_shard_progress(
        self, service_factory, chain_trace
    ):
        _service, client, _ = service_factory()
        response = client.diameter(
            chain_trace, max_hops=4, grid_points=8, shards=3
        )
        assert response.status == 200
        job = client.job(response.headers["X-Repro-Job"]).json()
        assert job["state"] == "done"
        assert job["shards_total"] == 3
        assert job["shards_done"] == 3

    def test_monolithic_job_reports_single_shard(
        self, service_factory, chain_trace
    ):
        _service, client, _ = service_factory()
        response = client.diameter(chain_trace, max_hops=4, grid_points=8)
        job = client.job(response.headers["X-Repro-Job"]).json()
        assert job["shards_total"] == 1
        assert job["shards_done"] == 1

    def test_shard_count_excluded_from_job_key(
        self, service_factory, chain_trace
    ):
        """Sharding is an execution strategy, not a different query: a
        later monolithic request must be served from the store."""
        _service, client, _ = service_factory()
        sharded = client.delay_cdf(
            chain_trace, max_hops=3, grid_points=8, shards=3
        )
        monolithic = client.delay_cdf(chain_trace, max_hops=3, grid_points=8)
        assert monolithic.headers["X-Repro-Source"] == "store"
        assert monolithic.body == sharded.body

    def test_shard_attempt_spans_have_distinct_ids(
        self, service_factory, chain_trace
    ):
        """Sibling shard tasks share the leader's exec span as parent and
        all run as attempt 1, so the attempt-span derivation must also
        fold in the task key — before it did, every shard (and the
        finalize run) exported the same span id and the trace failed
        validation with "duplicate span_id"."""
        import json

        from repro.obs.tracestore import validate_trace_jsonl

        _service, client, _ = service_factory(workers=2)
        response = client.delay_cdf(
            chain_trace, max_hops=3, grid_points=8, shards=3
        )
        assert response.status == 200
        export = client.trace(response.trace_id).text()
        validate_trace_jsonl(export)  # rejects duplicate span ids
        attempts = [
            record
            for line in export.splitlines()
            for record in (json.loads(line),)
            if record.get("kind") == "span"
            and record["name"] == "service.pool.attempt"
        ]
        # 3 shard attempts + the finalize run, all ids distinct.
        assert len(attempts) == 4
        assert len({span["span_id"] for span in attempts}) == 4

    def test_shards_clamped_to_roster(self, service_factory, chain_trace):
        """Requesting more shards than sources (4 nodes) must still
        answer correctly with one shard per source."""
        _service, client, bundle = service_factory(workers=2)
        response = client.delay_cdf(
            chain_trace, max_hops=3, grid_points=8, shards=16
        )
        assert response.status == 200
        job = client.job(response.headers["X-Repro-Job"]).json()
        assert job["shards_total"] == 4
        assert job["shards_done"] == 4

    def test_invalid_shard_count_rejected(self, service_factory, chain_trace):
        _service, client, _ = service_factory()
        response = client.delay_cdf(chain_trace, shards=0)
        assert response.status == 400
        assert response.json()["error"]["field"] == "shards"


class TestShardCrashResume:
    def test_killed_worker_resumes_from_completed_shards(
        self, service_factory, chain_trace
    ):
        """The checkpoint contract, end to end: kill the only worker
        after the first shard lands and assert the retry recomputes
        only the missing shards — every source goes through the DP
        exactly once, unlike a monolithic retry which restarts from
        scratch."""
        # The reference bytes are computed before the service's obs
        # bundle exists, so the in-process CLI run cannot pollute the
        # counters asserted below.
        expected = cli_bytes(
            ["delay-cdf", chain_trace, "--max-hops", "3", "--grid-points", "8"]
        )
        service, client, bundle = service_factory(workers=1)
        result = {}

        def submit():
            result["response"] = client.delay_cdf(
                chain_trace,
                max_hops=3,
                grid_points=8,
                shards=3,
                _test_delay_s=1.2,
            )

        thread = threading.Thread(target=submit)
        thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if _counter(bundle, "service.shards.completed") >= 1:
                break
            time.sleep(0.05)
        else:
            pytest.fail("first shard never completed")
        # The second shard is now in its injected pre-compute delay.
        time.sleep(0.3)
        pid = service.pool.worker_pids()[0]
        assert pid is not None
        os.kill(pid, signal.SIGKILL)
        thread.join(timeout=90.0)
        response = result["response"]
        assert response.status == 200
        assert response.body == expected
        assert _counter(bundle, "service.pool.crashes") == 1
        assert _counter(bundle, "service.pool.retries") == 1
        assert _counter(bundle, "service.shards.completed") == 3
        # Each of the 3 shards was computed exactly once (the crash lost
        # no completed shard), and the finalisation run was pure hits.
        assert _counter(bundle, "profiles.cache.miss") == 3
        assert _counter(bundle, "profiles.cache.hit") == 3
        # Strictly fewer sources recomputed than a cold rerun: the DP
        # saw each of the 4 sources once, not once per attempt.
        assert _counter(bundle, "optimal.sources") == 4
