"""Seeded thread-fuzz of the service's shared state under LockWatch.

Sixteen threads hammer the single-flight :class:`JobTable` and the LRU
:class:`ResultStore` — the two structures every request crosses — while
a :class:`LockWatch` observes every lock they create.  The assertions
are the service's core concurrency contracts:

* exactly one thread per round wins ``get_or_create`` (exactly-once
  leader execution; everyone else coalesces onto the leader's job);
* the submitted/coalesced and hit/miss/evict counters stay consistent
  with the operations actually performed — no lost updates;
* the watch sees zero lock-order inversions.

Set ``REPRO_LOCKWATCH_OUT=<dir>`` to export the fuzz run's
``repro.lockwatch/1`` artifact for the CI validation gate.
"""

import os
import random
import threading
from pathlib import Path

from repro.obs import Instrumentation, LockWatch, set_obs, validate_lockwatch_jsonl
from repro.service.jobs import JobSpec, JobTable
from repro.service.store import ResultStore

SEED = 20260808
THREADS = 16


def _spec(trace: str) -> JobSpec:
    return JobSpec(command="delay-cdf", trace=trace, max_hops=3, grid_points=16)


def _run_threads(workers):
    """Start, join, and propagate the first failure of worker callables."""
    errors = []

    def guarded(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - repropagated below
                errors.append(exc)

        return run

    threads = [threading.Thread(target=guarded(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads), "fuzz thread hung"
    if errors:
        raise errors[0]
    return errors


def _maybe_export(watch: LockWatch, name: str) -> None:
    out = os.environ.get("REPRO_LOCKWATCH_OUT")
    if not out:
        return
    target = watch.export_jsonl(Path(out) / f"LOCKWATCH_{name}.jsonl")
    validate_lockwatch_jsonl(
        target.read_text(encoding="utf-8"), forbid_inversions=True
    )


def test_jobtable_single_flight_under_fuzz():
    rounds = 24
    bundle = Instrumentation.started()
    previous = set_obs(bundle)
    watch = LockWatch(long_hold_threshold_s=5.0)
    try:
        with watch.watching():
            table = JobTable(history=8)
            barrier = threading.Barrier(THREADS)
            created_by_round = [[] for _ in range(rounds)]
            jobs_by_round = [[] for _ in range(rounds)]
            record_lock = threading.Lock()

            def worker():
                for index in range(rounds):
                    barrier.wait(timeout=30.0)
                    key = f"fuzz-key-{index}"
                    job, created = table.get_or_create(key, _spec(key))
                    with record_lock:
                        created_by_round[index].append(created)
                        jobs_by_round[index].append(job)

            _run_threads([worker] * THREADS)
    finally:
        set_obs(previous)

    for index in range(rounds):
        flags = created_by_round[index]
        assert len(flags) == THREADS
        assert flags.count(True) == 1, (
            f"round {index}: {flags.count(True)} leaders; single-flight "
            "must elect exactly one"
        )
        # Every thread got the same Job object and is counted as a waiter.
        jobs = jobs_by_round[index]
        assert all(job is jobs[0] for job in jobs)
        assert jobs[0].waiters == THREADS

    metrics = bundle.metrics
    assert metrics.counter("service.jobs.submitted").snapshot() == rounds
    assert (
        metrics.counter("service.jobs.coalesced").snapshot()
        == rounds * (THREADS - 1)
    )
    assert watch.inversions() == [], watch.inversions()
    _maybe_export(watch, "service_fuzz_jobtable")


def test_result_store_lru_under_fuzz(tmp_path):
    keys = [f"store-key-{index}" for index in range(24)]
    payloads = {
        key: f"payload-{key}|".encode("ascii") * (64 + 8 * index)
        for index, key in enumerate(keys)
    }
    # Budget fits roughly a third of the keys: eviction is guaranteed.
    max_bytes = sum(len(p) for p in payloads.values()) // 3

    bundle = Instrumentation.started()
    previous = set_obs(bundle)
    watch = LockWatch(long_hold_threshold_s=5.0)
    gets_performed = [0] * THREADS
    try:
        with watch.watching():
            store = ResultStore(tmp_path / "results", max_bytes=max_bytes)
            barrier = threading.Barrier(THREADS)

            def worker(thread_index):
                rng = random.Random(SEED + thread_index)
                barrier.wait(timeout=30.0)
                for _ in range(40):
                    key = rng.choice(keys)
                    if rng.random() < 0.5:
                        store.put(key, payloads[key])
                    else:
                        gets_performed[thread_index] += 1
                        payload = store.get(key)
                        if payload is not None:
                            # Atomic publication: never a torn payload.
                            assert payload == payloads[key]

            _run_threads(
                [lambda i=i: worker(i) for i in range(THREADS)]
            )
    finally:
        set_obs(previous)

    metrics = bundle.metrics
    hits = metrics.counter("service.store.hit").snapshot()
    misses = metrics.counter("service.store.miss").snapshot()
    evictions = metrics.counter("service.store.evict").snapshot()
    total_gets = sum(gets_performed)
    assert total_gets > 0
    assert hits + misses == total_gets, (
        f"hit {hits} + miss {misses} != gets {total_gets}; a counter "
        "update was lost"
    )
    assert evictions > 0, "budget was sized to force eviction"

    # Whatever survived on disk is intact and within a sane bound of the
    # budget (keep= protects at most one in-flight entry per putter).
    surviving = list((tmp_path / "results").glob("result-*.bin"))
    for path in surviving:
        content = path.read_bytes()
        assert any(content == payload for payload in payloads.values())
    assert watch.inversions() == [], watch.inversions()
    _maybe_export(watch, "service_fuzz_store")
