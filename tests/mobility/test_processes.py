"""Unit tests for the contact processes (Poisson pairs, community, RWP)."""

import numpy as np
import pytest

from repro.mobility import (
    ActivityProfile,
    CommunityProcess,
    Fixed,
    PoissonPairProcess,
    RandomWaypoint,
    assign_communities,
)
from repro.mobility.poisson_pairs import sample_nonhomogeneous_times


class TestNonhomogeneousSampling:
    def test_count_matches_intensity(self, rng):
        profile = ActivityProfile(boundaries=(0.0, 10.0, 20.0), levels=(0.0, 2.0))
        counts = [
            len(sample_nonhomogeneous_times(1.0, profile, 100.0, rng))
            for _ in range(50)
        ]
        # Intensity 2.0 on half the time: expect 100 events on average.
        assert np.mean(counts) == pytest.approx(100.0, rel=0.1)

    def test_zero_level_produces_no_events(self, rng):
        profile = ActivityProfile(boundaries=(0.0, 10.0, 20.0), levels=(0.0, 1.0))
        times = sample_nonhomogeneous_times(5.0, profile, 200.0, rng)
        phases = times % 20.0
        assert np.all(phases >= 10.0)

    def test_sorted_output(self, rng):
        profile = ActivityProfile(boundaries=(0.0, 50.0), levels=(1.0,))
        times = sample_nonhomogeneous_times(0.5, profile, 200.0, rng)
        assert np.all(np.diff(times) >= 0)

    def test_negative_rate_rejected(self, rng):
        profile = ActivityProfile(boundaries=(0.0, 1.0), levels=(1.0,))
        with pytest.raises(ValueError):
            sample_nonhomogeneous_times(-1.0, profile, 10.0, rng)


class TestPoissonPairProcess:
    def test_expected_contacts_matches(self, rng):
        process = PoissonPairProcess(n=20, contact_rate=0.05, horizon=1000.0)
        net = process.generate(rng)
        assert net.num_contacts == pytest.approx(
            process.expected_contacts(), rel=0.2
        )

    def test_roster_complete(self, rng):
        process = PoissonPairProcess(n=12, contact_rate=0.001, horizon=10.0)
        assert len(process.generate(rng)) == 12

    def test_durations_applied(self, rng):
        process = PoissonPairProcess(
            n=6, contact_rate=0.2, horizon=500.0, durations=Fixed(3.0)
        )
        net = process.generate(rng)
        assert net.num_contacts > 0
        for c in net.contacts:
            assert c.duration == pytest.approx(3.0) or c.t_end == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonPairProcess(n=1, contact_rate=1.0, horizon=10.0)
        with pytest.raises(ValueError):
            PoissonPairProcess(n=5, contact_rate=0.0, horizon=10.0)
        with pytest.raises(ValueError):
            PoissonPairProcess(n=5, contact_rate=1.0, horizon=0.0)


class TestCommunityAssignment:
    def test_blocks(self):
        assert assign_communities([2, 3]) == [0, 0, 1, 1, 1]

    def test_positive_sizes_required(self):
        with pytest.raises(ValueError):
            assign_communities([2, 0])


class TestCommunityProcess:
    def make(self, **kwargs):
        defaults = dict(
            community_sizes=(5, 5),
            intra_rate=1e-3,
            inter_rate=1e-4,
            horizon=2000.0,
        )
        defaults.update(kwargs)
        return CommunityProcess(**defaults)

    def test_expected_internal_contacts(self, rng):
        process = self.make()
        nets = [process.generate(np.random.default_rng(s)) for s in range(5)]
        mean_count = np.mean([n.num_contacts for n in nets])
        assert mean_count == pytest.approx(
            process.expected_internal_contacts(), rel=0.25
        )

    def test_intra_dominates_inter(self, rng):
        process = self.make(intra_rate=5e-3, inter_rate=1e-5, horizon=5000.0)
        net = process.generate(rng)
        intra = sum(1 for c in net.contacts if (c.u < 5) == (c.v < 5))
        inter = net.num_contacts - intra
        assert intra > inter

    def test_scaled_to_target(self, rng):
        process = self.make().scaled_to(500.0)
        assert process.expected_internal_contacts() == pytest.approx(500.0)

    def test_scaled_to_invalid_target(self):
        with pytest.raises(ValueError):
            self.make().scaled_to(0.0)

    def test_externals_generated_and_labelled(self, rng):
        process = self.make(externals=10, external_rate=1e-3)
        net = process.generate(rng)
        external_contacts = [
            c for c in net.contacts
            if isinstance(c.u, str) or isinstance(c.v, str)
        ]
        assert external_contacts
        assert all(
            str(c.v).startswith("ext") or str(c.u).startswith("ext")
            for c in external_contacts
        )
        assert "ext0" in net

    def test_node_sigma_zero_gives_unit_multipliers(self, rng):
        process = self.make(node_sigma=0.0)
        assert np.all(process._node_multipliers(rng, 5) == 1.0)

    def test_node_sigma_unit_mean(self, rng):
        process = self.make(node_sigma=0.8)
        multipliers = process._node_multipliers(rng, 20000)
        assert multipliers.mean() == pytest.approx(1.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(community_sizes=())
        with pytest.raises(ValueError):
            self.make(intra_rate=-1.0)
        with pytest.raises(ValueError):
            self.make(node_sigma=-0.1)
        with pytest.raises(ValueError):
            self.make(externals=-1)


class TestRandomWaypoint:
    def make(self, **kwargs):
        defaults = dict(
            n=10,
            area=100.0,
            speed_min=1.0,
            speed_max=2.0,
            pause_max=5.0,
            radio_range=20.0,
            horizon=200.0,
            dt=1.0,
        )
        defaults.update(kwargs)
        return RandomWaypoint(**defaults)

    def test_generates_contacts(self, rng):
        net = self.make().generate(rng)
        assert net.num_contacts > 0
        assert len(net) == 10

    def test_contacts_within_horizon(self, rng):
        net = self.make().generate(rng)
        for c in net.contacts:
            assert 0.0 <= c.t_beg <= c.t_end <= 200.0

    def test_contact_requires_proximity(self, rng):
        # A huge radio range connects everyone the whole time.
        net = self.make(radio_range=1000.0).generate(rng)
        pairs = {(c.u, c.v) for c in net.contacts}
        assert len(pairs) == 10 * 9 / 2
        assert all(c.t_beg == 0.0 and c.t_end == 200.0 for c in net.contacts)

    def test_deterministic_given_seed(self):
        a = self.make().generate(np.random.default_rng(3))
        b = self.make().generate(np.random.default_rng(3))
        assert list(a.contacts) == list(b.contacts)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(n=1)
        with pytest.raises(ValueError):
            self.make(speed_min=0.0)
        with pytest.raises(ValueError):
            self.make(speed_min=3.0, speed_max=2.0)
        with pytest.raises(ValueError):
            self.make(dt=0.0)
