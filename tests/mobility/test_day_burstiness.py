"""Tests for the per-node-per-day burstiness of the community process."""

import numpy as np
import pytest

from repro.mobility import CommunityProcess, Fixed


def make(**kwargs):
    defaults = dict(
        community_sizes=(6, 6),
        intra_rate=3e-4,
        inter_rate=3e-4,
        horizon=6 * 86400.0,
        durations_intra=Fixed(60.0),
        durations_inter=Fixed(60.0),
    )
    defaults.update(kwargs)
    return CommunityProcess(**defaults)


class TestDaySigma:
    def test_validation(self):
        with pytest.raises(ValueError):
            make(day_sigma=-0.5)

    def test_zero_sigma_unchanged_distribution(self, rng):
        # day_sigma=0 takes the homogeneous path.
        net = make(day_sigma=0.0).generate(rng)
        assert net.num_contacts > 0

    def test_burstiness_increases_daily_variance(self):
        """With day_sigma, per-day contact counts vary far more than the
        Poisson baseline."""

        def daily_dispersion(day_sigma, seed):
            process = make(day_sigma=day_sigma)
            net = process.generate(np.random.default_rng(seed))
            days = np.asarray([int(c.t_beg // 86400.0) for c in net.contacts])
            counts = np.bincount(days, minlength=6).astype(float)
            return counts.var() / max(counts.mean(), 1e-9)

        flat = np.mean([daily_dispersion(0.0, s) for s in range(5)])
        bursty = np.mean([daily_dispersion(1.2, s) for s in range(5)])
        assert bursty > 2 * flat

    def test_mean_volume_preserved(self):
        """Unit-mean multipliers keep the expected volume unchanged."""
        flat = np.mean(
            [
                make(day_sigma=0.0).generate(np.random.default_rng(s)).num_contacts
                for s in range(8)
            ]
        )
        bursty = np.mean(
            [
                make(day_sigma=0.8).generate(np.random.default_rng(s)).num_contacts
                for s in range(8)
            ]
        )
        assert bursty == pytest.approx(flat, rel=0.35)

    def test_contacts_still_within_horizon(self, rng):
        net = make(day_sigma=1.0).generate(rng)
        for c in net.contacts:
            assert 0.0 <= c.t_beg <= c.t_end <= 6 * 86400.0
