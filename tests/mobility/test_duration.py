"""Unit tests for contact-duration distributions."""

import numpy as np
import pytest

from repro.mobility.duration import (
    BoundedPareto,
    Exponential,
    Fixed,
    LogNormal,
    Mixture,
    campus_durations,
    conference_durations,
)


class TestFixed:
    def test_sample(self, rng):
        model = Fixed(120.0)
        assert np.all(model.sample(rng, 5) == 120.0)
        assert model.mean() == 120.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Fixed(-1.0)


class TestExponential:
    def test_mean_matches(self, rng):
        model = Exponential(60.0)
        sample = model.sample(rng, 20000)
        assert sample.mean() == pytest.approx(60.0, rel=0.05)
        assert model.mean() == 60.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestLogNormal:
    def test_median_matches(self, rng):
        model = LogNormal(median=100.0, sigma=1.0)
        sample = model.sample(rng, 20000)
        assert np.median(sample) == pytest.approx(100.0, rel=0.05)

    def test_mean_formula(self, rng):
        model = LogNormal(median=100.0, sigma=0.5)
        sample = model.sample(rng, 50000)
        assert sample.mean() == pytest.approx(model.mean(), rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormal(0.0, 1.0)
        with pytest.raises(ValueError):
            LogNormal(1.0, -0.5)


class TestBoundedPareto:
    def test_samples_within_bounds(self, rng):
        model = BoundedPareto(alpha=1.2, lower=10.0, upper=1000.0)
        sample = model.sample(rng, 5000)
        assert sample.min() >= 10.0
        assert sample.max() <= 1000.0

    def test_mean_formula(self, rng):
        model = BoundedPareto(alpha=1.5, lower=10.0, upper=500.0)
        sample = model.sample(rng, 100000)
        assert sample.mean() == pytest.approx(model.mean(), rel=0.03)

    def test_mean_alpha_one(self, rng):
        model = BoundedPareto(alpha=1.0, lower=10.0, upper=500.0)
        sample = model.sample(rng, 100000)
        assert sample.mean() == pytest.approx(model.mean(), rel=0.03)

    def test_heavy_tail_present(self, rng):
        model = BoundedPareto(alpha=1.1, lower=60.0, upper=10000.0)
        sample = model.sample(rng, 20000)
        assert (sample > 1000.0).mean() > 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedPareto(alpha=0.0, lower=1.0, upper=2.0)
        with pytest.raises(ValueError):
            BoundedPareto(alpha=1.0, lower=5.0, upper=2.0)


class TestMixture:
    def test_mean_is_weighted(self, rng):
        mix = Mixture(components=(Fixed(10.0), Fixed(30.0)), weights=(1.0, 3.0))
        assert mix.mean() == pytest.approx(25.0)
        sample = mix.sample(rng, 20000)
        assert sample.mean() == pytest.approx(25.0, rel=0.05)

    def test_only_mixture_values(self, rng):
        mix = Mixture(components=(Fixed(10.0), Fixed(30.0)), weights=(1.0, 1.0))
        assert set(np.unique(mix.sample(rng, 100))) <= {10.0, 30.0}

    def test_validation(self):
        with pytest.raises(ValueError, match="one weight"):
            Mixture(components=(Fixed(1.0),), weights=(1.0, 2.0))
        with pytest.raises(ValueError, match="at least one"):
            Mixture(components=(), weights=())
        with pytest.raises(ValueError, match="non-negative"):
            Mixture(components=(Fixed(1.0),), weights=(-1.0,))


class TestPresets:
    def test_conference_shape(self, rng):
        """Most contacts short, a small heavy tail beyond one hour —
        the Figure 7 shape the Infocom data sets show."""
        sample = conference_durations(120.0).sample(rng, 50000)
        assert np.median(sample) < 10 * 60
        over_hour = (sample > 3600.0).mean()
        assert 0.001 < over_hour < 0.1

    def test_campus_longer_median(self, rng):
        conf = np.median(conference_durations().sample(rng, 20000))
        campus = np.median(campus_durations().sample(rng, 20000))
        assert campus > conf
