"""Unit tests for the place-based (clique-structured) contact process."""

import numpy as np
import pytest

from repro.mobility.base import diurnal_profile
from repro.mobility.duration import Exponential, Fixed
from repro.mobility.places import PlacesProcess


def make(**kwargs):
    defaults = dict(
        n=20,
        num_places=4,
        visit_rate=2e-4,
        horizon=4 * 86400.0,
        stay=Exponential(1800.0),
        node_sigma=0.0,
        day_sigma=0.0,
        home_bias=0.5,
        min_overlap=0.0,
    )
    defaults.update(kwargs)
    return PlacesProcess(**defaults)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n=1),
            dict(num_places=0),
            dict(visit_rate=0.0),
            dict(horizon=0.0),
            dict(home_bias=1.5),
            dict(node_sigma=-1.0),
            dict(min_overlap=-1.0),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            make(**kwargs)

    def test_home_places_round_robin(self):
        process = make()
        assert process.home_place(0) == 0
        assert process.home_place(4) == 0
        assert process.home_place(5) == 1


class TestVisits:
    def test_visits_sorted_and_bounded(self, rng):
        by_place = make().visits(rng)
        assert set(by_place) == {0, 1, 2, 3}
        for visits in by_place.values():
            begs = [b for b, _, _ in visits]
            assert begs == sorted(begs)
            for beg, end, node in visits:
                assert 0.0 <= beg <= end <= 4 * 86400.0
                assert 0 <= node < 20

    def test_one_place_at_a_time(self, rng):
        by_place = make(visit_rate=2e-3).visits(rng)
        per_node = {}
        for visits in by_place.values():
            for beg, end, node in visits:
                per_node.setdefault(node, []).append((beg, end))
        for intervals in per_node.values():
            intervals.sort()
            for (b1, e1), (b2, _) in zip(intervals[:-1], intervals[1:]):
                assert b2 >= e1  # visits of one node never overlap

    def test_home_bias_one_keeps_nodes_home(self, rng):
        by_place = make(home_bias=1.0).visits(rng)
        for place, visits in by_place.items():
            for _, _, node in visits:
                assert node % 4 == place


class TestContacts:
    def test_contacts_are_co_presence(self, rng):
        process = make()
        net = process.generate(rng)
        assert net.num_contacts > 0
        for c in net.contacts:
            assert c.t_end >= c.t_beg + process.min_overlap or c.duration >= 0

    def test_transitivity_of_co_presence(self, rng):
        """At any instant the contact graph is a union of cliques: if
        a-b and b-c are active, a-c must be active too."""
        net = make(visit_rate=1e-3).generate(rng)
        probes = np.linspace(0.0, 4 * 86400.0, 40)
        for t in probes:
            active = [c for c in net.contacts if c.t_beg < t < c.t_end]
            edges = {frozenset((c.u, c.v)) for c in active}
            neighbors = {}
            for c in active:
                neighbors.setdefault(c.u, set()).add(c.v)
                neighbors.setdefault(c.v, set()).add(c.u)
            for b, nbrs in neighbors.items():
                nbrs = list(nbrs)
                for i in range(len(nbrs)):
                    for j in range(i + 1, len(nbrs)):
                        assert frozenset((nbrs[i], nbrs[j])) in edges

    def test_min_overlap_filters_short_contacts(self, rng):
        sparse = make(min_overlap=1800.0).generate(rng)
        for c in sparse.contacts:
            assert c.duration >= 1800.0 - 1e-9

    def test_deterministic_given_seed(self):
        a = make().generate(np.random.default_rng(4))
        b = make().generate(np.random.default_rng(4))
        assert list(a.contacts) == list(b.contacts)

    def test_profile_modulates_activity(self):
        rng = np.random.default_rng(0)
        net = make(
            profile=diurnal_profile(night_level=0.0), visit_rate=1e-3,
            stay=Fixed(600.0),
        ).generate(rng)
        assert net.num_contacts > 0
        for c in net.contacts:
            hour = (c.t_beg % 86400.0) / 3600.0
            assert 8.0 <= hour <= 20.0


class TestCalibration:
    def test_calibrated_to_hits_target(self):
        process = make().calibrated_to(
            400.0, lambda i: np.random.default_rng([9, i])
        )
        net = process.generate(np.random.default_rng(99))
        assert 200 < net.num_contacts < 800

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            make().calibrated_to(0.0, lambda i: np.random.default_rng(i))

    def test_with_visit_rate(self):
        process = make()
        faster = process.with_visit_rate(process.visit_rate * 2)
        assert faster.visit_rate == pytest.approx(2 * process.visit_rate)
        assert faster.n == process.n
