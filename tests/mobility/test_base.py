"""Unit tests for activity profiles."""

import pytest

from repro.mobility.base import (
    ActivityProfile,
    compose_profiles,
    conference_profile,
    diurnal_profile,
    flat_profile,
    weekly_profile,
)

DAY = 86400.0
HOUR = 3600.0


class TestActivityProfile:
    def test_validation(self):
        with pytest.raises(ValueError, match="boundaries"):
            ActivityProfile(boundaries=(0.0, 1.0), levels=(1.0, 2.0))
        with pytest.raises(ValueError, match="start at 0"):
            ActivityProfile(boundaries=(1.0, 2.0), levels=(1.0,))
        with pytest.raises(ValueError, match="increasing"):
            ActivityProfile(boundaries=(0.0, 2.0, 1.0), levels=(1.0, 1.0))
        with pytest.raises(ValueError, match="negative"):
            ActivityProfile(boundaries=(0.0, 1.0), levels=(-1.0,))

    def test_level_at_and_periodicity(self):
        profile = ActivityProfile(boundaries=(0.0, 10.0, 20.0), levels=(1.0, 3.0))
        assert profile.level_at(5.0) == 1.0
        assert profile.level_at(15.0) == 3.0
        assert profile.level_at(25.0) == 1.0   # next period
        assert profile.level_at(0.0) == 1.0

    def test_mean_level(self):
        profile = ActivityProfile(boundaries=(0.0, 10.0, 20.0), levels=(1.0, 3.0))
        assert profile.mean_level() == pytest.approx(2.0)

    def test_pieces_cover_interval_exactly(self):
        profile = ActivityProfile(boundaries=(0.0, 10.0, 20.0), levels=(1.0, 3.0))
        pieces = profile.pieces(5.0, 35.0)
        assert pieces[0][0] == 5.0
        assert pieces[-1][1] == 35.0
        for (a, b, _), (c, _, _) in zip(pieces[:-1], pieces[1:]):
            assert b == c
        # Levels alternate with the period.
        assert [lvl for _, _, lvl in pieces] == [1.0, 3.0, 1.0, 3.0]

    def test_pieces_empty_interval(self):
        assert flat_profile().pieces(5.0, 5.0) == []

    def test_peak(self):
        assert conference_profile().peak == 2.5


class TestPresets:
    def test_flat(self):
        profile = flat_profile()
        assert profile.mean_level() == 1.0
        assert profile.level_at(12345.0) == 1.0

    def test_diurnal_day_night(self):
        profile = diurnal_profile(day_start=8 * HOUR, day_end=20 * HOUR,
                                  night_level=0.1)
        assert profile.level_at(12 * HOUR) == 1.0
        assert profile.level_at(2 * HOUR) == 0.1
        assert profile.level_at(23 * HOUR) == 0.1
        assert profile.period == DAY

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            diurnal_profile(day_start=10 * HOUR, day_end=5 * HOUR)

    def test_conference_quiet_nights(self):
        profile = conference_profile()
        assert profile.level_at(3 * HOUR) < 0.1
        assert profile.level_at(10.75 * HOUR) > 1.0  # coffee break burst

    def test_weekly(self):
        profile = weekly_profile()
        assert profile.period == 7 * DAY
        assert profile.level_at(1 * DAY) == 1.0
        assert profile.level_at(5.5 * DAY) == 0.3


class TestCompose:
    def test_pointwise_product(self):
        composed = compose_profiles(diurnal_profile(), weekly_profile())
        assert composed.period == 7 * DAY
        # Weekday noon: 1 * 1; weekend noon: 1 * 0.3; weekday night: 0.05.
        assert composed.level_at(0.5 * DAY) == pytest.approx(1.0)
        assert composed.level_at(5.5 * DAY) == pytest.approx(0.3)
        assert composed.level_at(2 * HOUR) == pytest.approx(0.05)

    def test_mean_of_product(self):
        diurnal = diurnal_profile()
        weekly = weekly_profile()
        composed = compose_profiles(diurnal, weekly)
        # Profiles are independent in phase here, so means multiply.
        assert composed.mean_level() == pytest.approx(
            diurnal.mean_level() * weekly.mean_level()
        )

    def test_incompatible_periods_rejected(self):
        odd = ActivityProfile(boundaries=(0.0, 100_000.0), levels=(1.0,))
        with pytest.raises(ValueError, match="integer multiples"):
            compose_profiles(odd, diurnal_profile())

    def test_order_does_not_matter(self):
        a = compose_profiles(diurnal_profile(), weekly_profile())
        b = compose_profiles(weekly_profile(), diurnal_profile())
        for t in [0.0, 1000.0, 2 * DAY, 5.2 * DAY]:
            assert a.level_at(t) == pytest.approx(b.level_at(t))
