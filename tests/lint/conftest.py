"""Shared fixture loading for the reprolint tests.

Fixture files live in ``fixtures/`` with a ``.pytxt`` extension so the
engine's directory walk (``*.py``) never lints them as part of the real
tree — their whole point is to contain violations.  Line 1 of every
fixture is ``# path: <pretend path>``; the loader strips it and lints the
rest as if it lived at that path, which is how the package-scoped rules
are exercised.
"""

import pathlib

import pytest

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def load_fixture(name):
    """Return (source, pretend_path) of one ``.pytxt`` fixture."""
    text = (FIXTURES / f"{name}.pytxt").read_text(encoding="utf-8")
    first, _, rest = text.partition("\n")
    prefix = "# path:"
    assert first.startswith(prefix), f"{name}: line 1 must be '# path: ...'"
    return rest, first[len(prefix):].strip()


@pytest.fixture
def fixture_loader():
    return load_fixture


@pytest.fixture
def repo_root():
    return pathlib.Path(__file__).resolve().parents[2]
