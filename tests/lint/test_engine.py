"""Engine-level tests: suppression parsing and application, REP000
hygiene, path scoping, reporters, the CLI entry point, and the
self-clean guarantee that the shipped tree lints clean."""

import json

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.cli import main
from repro.lint.engine import (
    LintError,
    module_path,
    parse_suppressions,
)
from repro.lint.reporters import JSON_SCHEMA, render_json, render_text

VIOLATION = (
    '"""doc"""\n'
    "import time\n\n\n"
    "def stamp() -> float:\n"
    "    return time.time()\n"
)

SUPPRESSED = (
    '"""doc"""\n'
    "import time\n\n\n"
    "def stamp() -> float:\n"
    "    return time.time()  # reprolint: disable=REP004 -- frozen in tests\n"
)

STANDALONE = (
    '"""doc"""\n'
    "import time\n\n\n"
    "def stamp() -> float:\n"
    "    # reprolint: disable=REP004 -- frozen in tests\n"
    "    return time.time()\n"
)

CORE_PATH = "src/repro/core/example.py"


class TestModulePath:
    def test_resolves_inside_src_repro(self):
        assert module_path("src/repro/core/optimal.py") == "core/optimal.py"
        assert (
            module_path("/root/repo/src/repro/obs/metrics.py")
            == "obs/metrics.py"
        )

    def test_outside_package_is_none(self):
        assert module_path("tests/core/test_x.py") is None
        assert module_path("benchmarks/run.py") is None


class TestSuppressions:
    def test_trailing_comment_parsed(self):
        sups = parse_suppressions(SUPPRESSED)
        assert len(sups) == 1
        sup = sups[0]
        assert sup.codes == ("REP004",)
        assert sup.justified
        assert sup.target_line == sup.line == 6

    def test_standalone_comment_targets_next_code_line(self):
        sups = parse_suppressions(STANDALONE)
        assert len(sups) == 1
        assert sups[0].line == 6
        assert sups[0].target_line == 7

    def test_trailing_suppression_silences_finding(self):
        assert lint_source(VIOLATION, CORE_PATH, select=["REP004"]) != []
        assert lint_source(SUPPRESSED, CORE_PATH, select=["REP004"]) == []

    def test_standalone_suppression_silences_finding(self):
        assert lint_source(STANDALONE, CORE_PATH, select=["REP004"]) == []

    def test_suppression_is_code_specific(self):
        source = SUPPRESSED.replace("REP004", "REP002")
        findings = lint_source(source, CORE_PATH, select=["REP002", "REP004"])
        assert [f.code for f in findings] == ["REP004"]

    def test_multiple_codes_in_one_comment(self):
        source = (
            "import time\n\n\n"
            "def f() -> bool:\n"
            "    return time.time() == 0.0"
            "  # reprolint: disable=REP002,REP004 -- fixture\n"
        )
        assert lint_source(source, CORE_PATH) == []


class TestHygiene:
    def test_bare_disable_fires_rep000(self):
        source = VIOLATION.replace(
            "return time.time()",
            "return time.time()  # reprolint: disable=REP004",
        )
        findings = lint_source(source, CORE_PATH, select=["REP004"])
        # The bare disable still silences REP004, but is itself a
        # finding — the run stays red until the justification is added.
        assert [f.code for f in findings] == ["REP000"]
        assert "justification" in findings[0].message

    def test_unknown_code_fires_rep000(self):
        source = (
            "def f() -> int:\n"
            "    return 1  # reprolint: disable=REP999 -- no such rule\n"
        )
        findings = lint_source(source, CORE_PATH)
        assert [f.code for f in findings] == ["REP000"]
        assert "REP999" in findings[0].message

    def test_rep000_cannot_be_suppressed(self):
        source = (
            "def f() -> int:\n"
            "    return 1  # reprolint: disable=REP000,REP999 -- nice try\n"
        )
        findings = lint_source(source, CORE_PATH)
        assert any(f.code == "REP000" for f in findings)


class TestErrors:
    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError):
            lint_source("def broken(:\n", CORE_PATH)

    def test_unknown_select_code_raises(self):
        with pytest.raises(LintError):
            lint_source("x = 1\n", CORE_PATH, select=["REP999"])


class TestReporters:
    def _findings(self):
        return lint_source(VIOLATION, CORE_PATH, select=["REP004"])

    def test_text_reporter_lists_findings_and_summary(self):
        text = render_text(self._findings(), files_checked=1)
        assert f"{CORE_PATH}:6:" in text
        assert "REP004" in text
        assert "1 finding(s) in 1 file" in text

    def test_text_reporter_clean(self):
        assert "clean: 0 findings in 3 files" in render_text([], 3)

    def test_json_reporter_shape(self):
        payload = json.loads(render_json(self._findings(), files_checked=1))
        assert payload["schema"] == JSON_SCHEMA
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"REP004": 1}
        (finding,) = payload["findings"]
        assert finding["path"] == CORE_PATH
        assert finding["code"] == "REP004"
        assert finding["line"] == 6

    def test_json_reporter_registry_block(self):
        from repro.lint import REGISTRY_VERSION, rule_codes

        payload = json.loads(render_json([], files_checked=0))
        registry = payload["registry"]
        assert registry["version"] == REGISTRY_VERSION
        assert registry["rules"] == ["REP000"] + rule_codes()
        assert registry["rules"] == sorted(registry["rules"])
        for code in ("REP006", "REP007", "REP008"):
            assert code in registry["rules"]


class TestCli:
    def _write(self, tmp_path, name, source):
        target = tmp_path / "src" / "repro" / "core"
        target.mkdir(parents=True, exist_ok=True)
        path = target / name
        path.write_text(source)
        return path

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        self._write(tmp_path, "clean.py", "def f(x: int) -> int:\n    return x\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        self._write(tmp_path, "dirty.py", VIOLATION)
        assert main([str(tmp_path)]) == 1
        assert "REP004" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        self._write(tmp_path, "dirty.py", VIOLATION)
        assert main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"REP004": 1}

    def test_select_filter(self, tmp_path):
        self._write(tmp_path, "dirty.py", VIOLATION)
        assert main(["--select", "REP002", str(tmp_path)]) == 0

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "nope" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005"):
            assert code in out


class TestParallelScan:
    """--jobs N fans out over processes with byte-identical output."""

    def _tree(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core"
        target.mkdir(parents=True)
        clean = "def f(x: int) -> int:\n    return x\n"
        for index in range(6):
            source = VIOLATION if index % 2 else clean
            (target / f"mod_{index}.py").write_text(source)
        return tmp_path

    def test_lint_paths_jobs_matches_serial(self, tmp_path):
        root = self._tree(tmp_path)
        serial = lint_paths([str(root)], jobs=1)
        parallel = lint_paths([str(root)], jobs=4)
        assert parallel == serial
        findings, files = parallel
        assert files == 6
        assert len(findings) == 3

    def test_invalid_jobs_rejected(self, tmp_path):
        with pytest.raises(LintError, match="jobs must be >= 1"):
            lint_paths([str(self._tree(tmp_path))], jobs=0)

    @pytest.mark.parametrize("fmt", ["text", "json"])
    def test_cli_output_byte_identical_across_jobs(
        self, tmp_path, fmt, repo_root
    ):
        import os
        import subprocess
        import sys

        root = self._tree(tmp_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")

        def run(jobs):
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.lint",
                    str(root),
                    "--format",
                    fmt,
                    "--jobs",
                    str(jobs),
                ],
                capture_output=True,
                env=env,
                cwd=repo_root,
            )
            assert proc.returncode == 1, proc.stderr.decode()
            return proc.stdout

        assert run(1) == run(4)


class TestSelfClean:
    def test_shipped_tree_lints_clean(self, repo_root):
        findings, files_checked = lint_paths([str(repo_root / "src")])
        assert findings == []
        assert files_checked > 50

    def test_tests_and_benchmarks_lint_clean(self, repo_root):
        # The CI static-analysis job lints these trees too; suppression
        # hygiene (REP000) is the active check outside src/repro.
        findings, files_checked = lint_paths(
            [str(repo_root / "tests"), str(repo_root / "benchmarks")]
        )
        assert findings == []
        assert files_checked > 30
