"""Fixture-driven tests: every REP rule fires on its minimal violation
and stays silent on the compliant variant, and REP001/REP003 catch the
pre-fix forms of real convention violations from this repo's history."""

import pytest

from repro.lint import lint_source

from .conftest import load_fixture


def codes_of(findings):
    return sorted({f.code for f in findings})


def lint_fixture(name, select=None):
    source, path = load_fixture(name)
    return lint_source(source, path, select=select)


class TestFireAndSilence:
    """The minimal-violation / compliant-variant pair of every rule."""

    @pytest.mark.parametrize(
        "code,expected_count",
        [
            ("REP001", 2),  # two Compare nodes in the and-joined test
            ("REP002", 2),
            ("REP003", 2),
            ("REP004", 4),
            ("REP005", 5),
            ("REP006", 5),  # bad guard comment, 2 declared, inferred, helper
            ("REP007", 2),  # ABBA cycle + plain-Lock re-entry via helper
            ("REP008", 5),  # subprocess, write_bytes, sleep, get, join
        ],
    )
    def test_fires_on_minimal_violation(self, code, expected_count):
        findings = lint_fixture(f"{code.lower()}_violation")
        assert codes_of(findings) == [code]
        assert len(findings) == expected_count

    @pytest.mark.parametrize(
        "code",
        [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
        ],
    )
    def test_silent_on_compliant_variant(self, code):
        assert lint_fixture(f"{code.lower()}_clean") == []


class TestHistoricalBugs:
    """At least one rule demonstrably catches a real past defect."""

    def test_rep001_catches_seed_contacts_beginning_in(self):
        # The seed's closed-interval window selection (fixed in PR 2):
        # the membership test `t0 <= c.t_beg <= t1` double-counts
        # boundary contacts when chaining windows.
        findings = lint_fixture("rep001_seed_contacts_beginning_in")
        rep001 = [f for f in findings if f.code == "REP001"]
        assert len(rep001) == 1
        assert "t0 <= c.t_beg <= t1" in load_fixture(
            "rep001_seed_contacts_beginning_in"
        )[0].splitlines()[rep001[0].line - 1]

    def test_rep003_catches_pr2_record_profile_metrics(self):
        # Verbatim pre-fix loop body of core/optimal.py (commit d168df7):
        # labelled counter lookup once per (source, hop).
        findings = lint_fixture("rep003_pr2_record_profile_metrics")
        rep003 = [f for f in findings if f.code == "REP003"]
        assert len(rep003) == 2
        assert all(".counter(...)" in f.message for f in rep003)

    def test_rep006_catches_pool_health_torn_read(self):
        # Pre-fix WorkerPool.health() read _pending/_draining without
        # _lock, so a concurrent drain() produced a torn health view.
        findings = lint_fixture("rep006_pool_draining")
        rep006 = [f for f in findings if f.code == "REP006"]
        assert len(rep006) == 2
        fields = sorted(f.message.split(" is guarded")[0] for f in rep006)
        assert fields == ["WorkerPool._draining", "WorkerPool._pending"]
        assert all("health()" in f.message for f in rep006)

    def test_rep008_catches_store_put_write_under_lock(self):
        # Pre-fix ResultStore.put() wrote the payload inside _lock,
        # convoying every store access behind one disk write.
        findings = lint_fixture("rep008_store_put")
        rep008 = [f for f in findings if f.code == "REP008"]
        assert len(rep008) == 1
        assert ".write_bytes()" in rep008[0].message
        assert "_lock" in rep008[0].message


class TestScoping:
    """Rules apply only inside their package scopes."""

    def test_rep001_exempts_contact_module(self):
        source = (
            "def overlaps(a: object, b: object) -> bool:\n"
            "    return a.t_beg <= b.t_end\n"
        )
        assert lint_source(source, "src/repro/core/contact.py") == []
        findings = lint_source(source, "src/repro/core/journeys.py")
        assert codes_of(findings) == ["REP001"]

    def test_rep002_exempts_floats_module(self):
        source = (
            "def pinned_equal(x: float, y: float) -> bool:\n"
            "    return x == 0.0\n"
        )
        assert lint_source(source, "src/repro/core/floats.py") == []
        assert codes_of(lint_source(source, "src/repro/core/paths.py")) == [
            "REP002"
        ]

    def test_rep002_ignores_out_of_scope_packages(self):
        source = "def f(p):\n    return p == 0.0\n"
        assert lint_source(source, "src/repro/traces/filters.py") == []

    def test_rep003_only_in_hot_packages(self):
        source, _ = load_fixture("rep003_violation")
        assert lint_source(source, "src/repro/traces/example.py") == []
        assert (
            codes_of(lint_source(source, "src/repro/forwarding/example.py"))
            == ["REP003"]
        )

    def test_rep003_covers_the_vectorized_engine(self):
        """The batched kernel's round loop is exactly the hot path the
        hoisting contract exists for — pin it inside REP003's scope.
        (REP005 fires too — the fixture is unannotated and both rules
        scope over core/ — so assert membership, not the full list.)"""
        source, _ = load_fixture("rep003_violation")
        assert "REP003" in codes_of(
            lint_source(source, "src/repro/core/engine_vec.py")
        )
        assert "REP003" in codes_of(
            lint_source(source, "src/repro/core/engine_pool.py")
        )

    def test_rep004_wall_clock_allowed_in_obs(self):
        source = "import time\n\ndef stamp() -> float:\n    return time.time()\n"
        assert lint_source(source, "src/repro/obs/spans.py") == []
        assert codes_of(lint_source(source, "src/repro/core/cache.py")) == [
            "REP004"
        ]

    def test_outside_repro_package_no_domain_rules(self):
        source, _ = load_fixture("rep004_violation")
        assert lint_source(source, "tests/core/test_example.py") == []

    def test_select_restricts_rules(self):
        source, path = load_fixture("rep005_violation")
        assert lint_source(source, path, select=["REP001"]) == []
        assert codes_of(lint_source(source, path, select=["REP005"])) == [
            "REP005"
        ]


class TestRuleDetails:
    def test_rep003_timer_lookup_in_while(self):
        source = (
            "def f(metrics):\n"
            "    while True:\n"
            "        with metrics.timer(\"x\"):\n"
            "            pass\n"
        )
        findings = lint_source(
            source, "src/repro/core/example.py", select=["REP003"]
        )
        assert codes_of(findings) == ["REP003"]

    def test_rep003_requires_string_name(self):
        # threading.Timer(...)-style calls with a non-literal first arg
        # are not instrument lookups.
        source = (
            "def f(factory, interval):\n"
            "    for _ in range(3):\n"
            "        factory.timer(interval)\n"
        )
        assert (
            lint_source(source, "src/repro/core/example.py", select=["REP003"])
            == []
        )

    def test_rep004_seeded_default_rng_allowed(self):
        source = (
            "import numpy as np\n\n"
            "def make(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert lint_source(source, "src/repro/mobility/example.py") == []

    def test_rep005_kwonly_and_starargs(self):
        source = (
            "def run(*args, workers=1, **kwargs) -> int:\n"
            "    return workers\n"
        )
        findings = lint_source(source, "src/repro/core/example.py")
        assert len(findings) == 1
        message = findings[0].message
        assert "*args" in message and "workers" in message and "**kwargs" in message

    def test_rep002_negative_literal(self):
        source = "def f(x):\n    return x == -1.0\n"
        findings = lint_source(
            source, "src/repro/core/example.py", select=["REP002"]
        )
        assert codes_of(findings) == ["REP002"]

    def test_rep006_inference_needs_dominance(self):
        # Two locked and two unlocked accesses (50 %) is an ambiguous
        # pattern, not a convention: no guard is inferred.
        source = (
            "import threading\n\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def c(self):\n"
            "        self._n += 1\n"
            "    def d(self):\n"
            "        return self._n\n"
        )
        assert (
            lint_source(source, "src/repro/service/x.py", select=["REP006"])
            == []
        )

    def test_rep006_self_synced_fields_not_inferred(self):
        # An Event carries its own lock; waiting on it outside the
        # class lock is the correct shutdown pattern, not a violation.
        source = (
            "import threading\n\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._idle = threading.Event()\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self._idle.clear()\n"
            "    def b(self):\n"
            "        with self._lock:\n"
            "            self._idle.set()\n"
            "    def wait(self):\n"
            "        self._idle.wait(timeout=1.0)\n"
        )
        assert (
            lint_source(source, "src/repro/service/x.py", select=["REP006"])
            == []
        )

    def test_rep007_consistent_three_lock_order_clean(self):
        source = (
            "import threading\n\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "        self._c = threading.Lock()\n"
            "    def f(self):\n"
            "        with self._a:\n"
            "            with self._b:\n"
            "                with self._c:\n"
            "                    pass\n"
            "    def g(self):\n"
            "        with self._b:\n"
            "            with self._c:\n"
            "                pass\n"
        )
        assert (
            lint_source(source, "src/repro/service/x.py", select=["REP007"])
            == []
        )

    def test_rep008_string_join_not_flagged(self):
        # sep.join(parts) always has a positional argument; only the
        # zero-argument thread/process join blocks.
        source = (
            "import threading\n\n"
            "_LOCK = threading.Lock()\n\n"
            "def f(parts):\n"
            "    with _LOCK:\n"
            "        return ', '.join(parts)\n"
        )
        assert (
            lint_source(source, "src/repro/service/x.py", select=["REP008"])
            == []
        )

    def test_rep008_explicit_none_timeout_flagged(self):
        source = (
            "import threading\n\n"
            "_LOCK = threading.Lock()\n\n"
            "def f(q):\n"
            "    with _LOCK:\n"
            "        return q.get(timeout=None)\n"
        )
        findings = lint_source(
            source, "src/repro/service/x.py", select=["REP008"]
        )
        assert codes_of(findings) == ["REP008"]

    def test_rep008_justified_suppression_silences(self):
        source = (
            "import time\n"
            "import threading\n\n"
            "_LOCK = threading.Lock()\n\n"
            "def f():\n"
            "    with _LOCK:\n"
            "        time.sleep(0.01)  "
            "# reprolint: disable=REP008 -- test-only backoff probe\n"
        )
        assert lint_source(source, "src/repro/service/x.py") == []
