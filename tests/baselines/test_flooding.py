"""Unit tests for the brute-force flooding baseline."""

import math

import pytest

from repro.baselines.flooding import (
    earliest_delivery,
    flood,
    hop_arrival_curve,
)
from repro.core import Contact, TemporalNetwork

INF = math.inf


class TestFlood:
    def test_source_trivially_reached(self, line_network):
        arrival = flood(line_network, 0, 5.0)
        assert arrival[0] == 5.0

    def test_line_propagation(self, line_network):
        arrival = flood(line_network, 0, 0.0)
        assert arrival == {0: 0.0, 1: 0.0, 2: 20.0, 3: 40.0}

    def test_start_inside_contact(self, line_network):
        arrival = flood(line_network, 0, 7.0)
        assert arrival[1] == 7.0

    def test_start_after_contact_misses(self, line_network):
        arrival = flood(line_network, 0, 11.0)
        assert 1 not in arrival

    def test_hop_bound_limits_reach(self, line_network):
        assert 3 not in flood(line_network, 0, 0.0, max_hops=2)
        assert 3 in flood(line_network, 0, 0.0, max_hops=3)

    def test_long_contact_chaining(self, overlap_network):
        arrival = flood(overlap_network, 0, 15.0)
        # All hops crossed instantly inside the overlap window.
        assert arrival == {0: 15.0, 1: 15.0, 2: 15.0, 3: 15.0}

    def test_long_contact_chaining_respects_hop_bound(self, overlap_network):
        arrival = flood(overlap_network, 0, 15.0, max_hops=2)
        assert 3 not in arrival
        assert arrival[2] == 15.0

    def test_directed_network_one_way(self):
        net = TemporalNetwork([Contact(0.0, 5.0, 0, 1)], directed=True)
        assert 1 in flood(net, 0, 0.0)
        assert 0 not in flood(net, 1, 0.0)

    def test_unknown_source(self, line_network):
        with pytest.raises(KeyError):
            flood(line_network, 99, 0.0)


class TestEarliestDelivery:
    def test_reachable(self, line_network):
        assert earliest_delivery(line_network, 0, 3, 0.0) == 40.0

    def test_unreachable_is_inf(self, line_network):
        assert earliest_delivery(line_network, 3, 0, 0.0) == INF


class TestHopArrivalCurve:
    def test_curve_strictly_improving(self):
        # Direct slow contact vs fast 2-hop path.
        net = TemporalNetwork(
            [
                Contact(50.0, 60.0, 0, 2),
                Contact(0.0, 10.0, 0, 1),
                Contact(5.0, 15.0, 1, 2),
            ]
        )
        curve = hop_arrival_curve(net, 0, 2, 0.0)
        assert curve == [(1, 50.0), (2, 5.0)]

    def test_unreachable_empty(self, line_network):
        assert hop_arrival_curve(line_network, 3, 0, 0.0) == []
