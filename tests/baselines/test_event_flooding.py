"""Unit tests for the event-driven flooding reconstruction (paper [18])."""

import math

from repro.baselines.event_flooding import (
    delivery_samples,
    reconstruct_delivery_function,
    sample_times,
)
from repro.core import Contact, PathPair, TemporalNetwork


class TestSampleTimes:
    def test_includes_events_midpoints_and_sentinels(self, line_network):
        times = sample_times(line_network)
        events = line_network.event_times()
        for event in events:
            assert event in times
        assert times[0] < events[0]
        assert times[-1] > events[-1]
        # Midpoint of the [10, 20] gap.
        assert 15.0 in times

    def test_empty_network(self):
        assert sample_times(TemporalNetwork([], nodes=[0, 1])) == [0.0]


class TestDeliverySamples:
    def test_matches_flooding(self, line_network):
        times = [0.0, 5.0, 10.0, 10.5]
        samples = delivery_samples(line_network, 0, 3, times)
        assert samples == [40.0, 40.0, 40.0, math.inf]


class TestReconstruction:
    def test_line_network_exact(self, line_network):
        rebuilt = reconstruct_delivery_function(line_network, 0, 3)
        assert list(rebuilt.pairs()) == [PathPair(ld=10.0, ea=40.0)]

    def test_contemporaneous_window(self, overlap_network):
        rebuilt = reconstruct_delivery_function(overlap_network, 0, 3)
        # True function: single pair (LD=20, EA=10).
        assert rebuilt.delivery_time(5.0) == 10.0
        assert rebuilt.delivery_time(15.0) == 15.0
        assert rebuilt.delivery_time(20.5) == math.inf

    def test_unreachable_gives_empty(self, line_network):
        rebuilt = reconstruct_delivery_function(line_network, 3, 0)
        assert not rebuilt

    def test_multi_step_frontier_values(self):
        net = TemporalNetwork(
            [Contact(0.0, 2.0, 0, 1), Contact(10.0, 12.0, 0, 1)]
        )
        rebuilt = reconstruct_delivery_function(net, 0, 1)
        # The pair list may contain redundant sliver pairs, but delivery
        # values match the exact function [(LD=2, EA=0), (LD=12, EA=10)]
        # away from slivers.
        assert rebuilt.delivery_time(-5.0) == 0.0
        assert rebuilt.delivery_time(1.0) == 1.0
        assert rebuilt.delivery_time(5.0) == 10.0
        assert rebuilt.delivery_time(11.0) == 11.0
        assert rebuilt.delivery_time(12.5) == math.inf
