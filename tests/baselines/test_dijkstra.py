"""Unit tests for generalized Dijkstra and witness reconstruction."""

import pytest

from repro.baselines.dijkstra import earliest_arrival, earliest_arrival_path
from repro.core import Contact, TemporalNetwork


class TestEarliestArrival:
    def test_line(self, line_network):
        arrival = earliest_arrival(line_network, 0, 0.0)
        assert arrival == {0: 0.0, 1: 0.0, 2: 20.0, 3: 40.0}

    def test_waits_for_next_contact(self):
        net = TemporalNetwork(
            [Contact(0.0, 1.0, 0, 1), Contact(10.0, 11.0, 0, 1)]
        )
        assert earliest_arrival(net, 0, 5.0)[1] == 10.0

    def test_unknown_source(self, line_network):
        with pytest.raises(KeyError):
            earliest_arrival(line_network, "missing", 0.0)


class TestWitnessPath:
    def test_line_witness(self, line_network):
        path = earliest_arrival_path(line_network, 0, 3, 0.0)
        assert path is not None
        assert path.hops == [0, 1, 2, 3]
        assert path.schedule(0.0)[-1] == 40.0

    def test_hop_bound_respected(self):
        net = TemporalNetwork(
            [
                Contact(50.0, 60.0, 0, 2),
                Contact(0.0, 10.0, 0, 1),
                Contact(5.0, 15.0, 1, 2),
            ]
        )
        direct = earliest_arrival_path(net, 0, 2, 0.0, max_hops=1)
        assert direct is not None
        assert direct.num_contacts == 1
        assert direct.schedule(0.0)[-1] == 50.0
        relay = earliest_arrival_path(net, 0, 2, 0.0, max_hops=2)
        assert relay.num_contacts == 2
        assert relay.schedule(0.0)[-1] == 5.0

    def test_unreachable_returns_none(self, line_network):
        assert earliest_arrival_path(line_network, 3, 0, 0.0) is None
        assert earliest_arrival_path(line_network, 0, 3, 0.0, max_hops=2) is None

    def test_same_endpoints_rejected(self, line_network):
        with pytest.raises(ValueError):
            earliest_arrival_path(line_network, 0, 0, 0.0)

    def test_witness_is_time_respecting(self, overlap_network):
        path = earliest_arrival_path(overlap_network, 0, 3, 12.0)
        assert path is not None
        times = path.schedule(12.0)
        assert times == [12.0, 12.0, 12.0]
