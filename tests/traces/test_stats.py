"""Unit tests for trace statistics (Table 1, Figures 6-7 inputs)."""

import math

import numpy as np
import pytest

from repro.core import Contact, TemporalNetwork
from repro.traces.stats import (
    contact_durations,
    contact_rate_per_device_per_hour,
    disconnection_periods,
    duration_ccdf,
    fraction_longer_than,
    inter_contact_times,
    next_contact_function,
    per_node_contact_counts,
    summarize,
)


@pytest.fixture
def net():
    return TemporalNetwork(
        [
            Contact(0.0, 100.0, 0, 1),
            Contact(200.0, 500.0, 0, 1),
            Contact(450.0, 460.0, 1, 2),
            Contact(3600.0, 3660.0, 0, 2),
        ],
        nodes=range(4),
    )


class TestSummary:
    def test_rate_formula(self, net):
        rate = contact_rate_per_device_per_hour(net)
        # 4 contacts * 2 endpoints / (4 devices * 1.0166h span).
        hours = net.duration / 3600.0
        assert rate == pytest.approx(8 / (4 * hours))

    def test_empty(self):
        assert contact_rate_per_device_per_hour(
            TemporalNetwork([], nodes=[0])
        ) == 0.0

    def test_summarize_row(self, net):
        summary = summarize(net, "demo", granularity_s=120.0)
        assert summary.name == "demo"
        assert summary.num_devices == 4
        assert summary.num_contacts == 4
        row = summary.as_row()
        assert row[0] == "demo"
        assert row[2] == 120.0

    def test_summarize_without_granularity(self, net):
        assert summarize(net, "x").as_row()[2] == "-"


class TestDurations:
    def test_contact_durations(self, net):
        assert sorted(contact_durations(net)) == [10.0, 60.0, 100.0, 300.0]

    def test_duration_ccdf(self, net):
        ccdf = duration_ccdf(net, [5.0, 50.0, 150.0, 1000.0])
        assert ccdf == pytest.approx([1.0, 0.75, 0.25, 0.0])

    def test_fraction_longer_than(self, net):
        assert fraction_longer_than(net, 50.0) == 0.75
        assert fraction_longer_than(net, 300.0) == 0.0  # strict
        assert fraction_longer_than(TemporalNetwork([], nodes=[0]), 1.0) == 0.0


class TestInterContact:
    def test_gaps_per_pair(self, net):
        gaps = inter_contact_times(net)
        assert sorted(gaps) == [100.0]  # only the (0,1) pair repeats

    def test_overlapping_contacts_skipped(self):
        net = TemporalNetwork(
            [Contact(0.0, 10.0, 0, 1), Contact(5.0, 20.0, 1, 0),
             Contact(30.0, 31.0, 0, 1)]
        )
        gaps = inter_contact_times(net)
        # Undirected pair key pools (0,1) and (1,0): gaps 20 -> 30 only.
        assert sorted(gaps) == [10.0]

    def test_empty(self):
        assert len(inter_contact_times(TemporalNetwork([], nodes=[0]))) == 0


class TestNextContact:
    def test_during_contact_returns_probe(self, net):
        out = next_contact_function(net, 0, [50.0])
        assert out[0] == 50.0

    def test_gap_returns_next_begin(self, net):
        out = next_contact_function(net, 0, [150.0, 600.0])
        assert out[0] == 200.0
        assert out[1] == 3600.0

    def test_after_last_is_inf(self, net):
        out = next_contact_function(net, 0, [4000.0])
        assert math.isinf(out[0])

    def test_isolated_node(self, net):
        out = next_contact_function(net, 3, [0.0])
        assert math.isinf(out[0])

    def test_unknown_node(self, net):
        with pytest.raises(KeyError):
            next_contact_function(net, 99, [0.0])

    def test_node_seen_as_v_endpoint(self, net):
        out = next_contact_function(net, 2, [0.0])
        assert out[0] == 450.0


class TestDisconnections:
    def test_periods(self, net):
        gaps = disconnection_periods(net, 0)
        assert gaps == [(100.0, 200.0), (500.0, 3600.0)]

    def test_isolated_node_one_big_gap(self, net):
        assert disconnection_periods(net, 3) == [(0.0, 3660.0)]


class TestPerNodeCounts:
    def test_counts(self, net):
        counts = per_node_contact_counts(net)
        assert counts == {0: 3, 1: 3, 2: 2, 3: 0}
        assert sum(counts.values()) == 2 * net.num_contacts
