"""Unit tests for the iMote periodic-scanning model."""

import numpy as np
import pytest

from repro.core import Contact, TemporalNetwork
from repro.traces.imote import ScanningModel, quantize_only


class TestScanningModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScanningModel(granularity=0.0)
        with pytest.raises(ValueError):
            ScanningModel(granularity=10.0, miss_probability=1.0)

    def test_long_contact_recorded(self, rng):
        # A contact far longer than the granularity is always seen.
        net = TemporalNetwork([Contact(100.0, 1000.0, 0, 1)])
        observed = ScanningModel(granularity=60.0).observe(net, rng)
        assert observed.num_contacts == 1
        recorded = observed.contacts[0]
        # Recorded span is within one granularity of the truth.
        assert abs(recorded.t_beg - 100.0) <= 60.0
        assert abs(recorded.t_end - 1000.0) <= 60.0

    def test_short_contacts_can_be_missed(self):
        # Contacts much shorter than the granularity are missed whenever
        # no scan instant falls inside them.
        rng = np.random.default_rng(0)
        contacts = [
            Contact(t, t + 5.0, 0, 1) for t in np.arange(0.0, 12000.0, 200.0)
        ]
        net = TemporalNetwork(contacts)
        observed = ScanningModel(granularity=120.0).observe(net, rng)
        assert observed.num_contacts < len(contacts)

    def test_recorded_durations_are_scan_multiples(self, rng):
        net = TemporalNetwork(
            [Contact(13.0, 700.0, 0, 1), Contact(90.0, 1300.0, 0, 2)]
        )
        observed = ScanningModel(granularity=120.0).observe(net, rng)
        for c in observed.contacts:
            assert c.duration % 120.0 == pytest.approx(0.0, abs=1e-6)
            assert c.duration >= 120.0

    def test_miss_probability_splits_or_thins(self):
        rng = np.random.default_rng(1)
        net = TemporalNetwork([Contact(0.0, 50000.0, 0, 1)])
        lossless = ScanningModel(120.0, miss_probability=0.0).observe(
            net, np.random.default_rng(1)
        )
        lossy = ScanningModel(120.0, miss_probability=0.4).observe(net, rng)
        assert lossless.num_contacts == 1
        assert lossy.num_contacts > 1  # dropped scans split the interval

    def test_roster_preserved(self, rng):
        net = TemporalNetwork([Contact(0.0, 10.0, 0, 1)], nodes=range(5))
        observed = ScanningModel(granularity=240.0).observe(net, rng)
        assert len(observed) == 5

    def test_deterministic_given_seed(self):
        net = TemporalNetwork(
            [Contact(float(i * 37 % 500), float(i * 37 % 500 + 200), i % 4, (i + 1) % 4)
             for i in range(1, 20)]
        )
        a = ScanningModel(120.0, 0.2).observe(net, np.random.default_rng(9))
        b = ScanningModel(120.0, 0.2).observe(net, np.random.default_rng(9))
        assert list(a.contacts) == list(b.contacts)


class TestQuantizeOnly:
    def test_snaps_to_grid(self):
        net = TemporalNetwork([Contact(130.0, 250.0, 0, 1)])
        quantized = quantize_only(net, 120.0)
        c = quantized.contacts[0]
        assert c.t_beg == 120.0
        assert c.t_end == 360.0

    def test_never_shrinks(self):
        net = TemporalNetwork([Contact(10.0, 20.0, 0, 1)])
        c = quantize_only(net, 120.0).contacts[0]
        assert c.t_beg <= 10.0 and c.t_end >= 20.0

    def test_validation(self):
        net = TemporalNetwork([Contact(0.0, 1.0, 0, 1)])
        with pytest.raises(ValueError):
            quantize_only(net, 0.0)


class TestScanningProperties:
    """Property tests: what a scanner may and may not invent."""

    def test_observed_intervals_within_one_granularity(self):
        import numpy as np
        from hypothesis import given, settings
        from hypothesis import strategies as st

        g = 120.0

        @settings(max_examples=40, deadline=None)
        @given(
            spans=st.lists(
                st.tuples(
                    st.floats(min_value=0, max_value=5000, allow_nan=False),
                    st.floats(min_value=0, max_value=2000, allow_nan=False),
                ),
                min_size=1,
                max_size=8,
            ),
            seed=st.integers(min_value=0, max_value=50),
        )
        def check(spans, seed):
            contacts = [Contact(b, b + d, 0, 1) for b, d in spans]
            net = TemporalNetwork(contacts)
            observed = ScanningModel(g, miss_probability=0.1).observe(
                net, np.random.default_rng(seed)
            )
            def near_some_contact(point):
                return any(
                    max(true.t_beg - point, point - true.t_end, 0.0) <= g
                    for true in contacts
                )

            for rec in observed.contacts:
                # Recorded intervals may merge adjacent sightings, but
                # every recorded boundary stays within one granularity of
                # some true contact — a scanner cannot invent contacts out
                # of thin air.
                assert near_some_contact(rec.t_beg), rec
                assert near_some_contact(rec.t_end), rec

        check()

    def test_observed_never_exceeds_scan_count(self):
        import numpy as np

        net = TemporalNetwork([Contact(0.0, 100000.0, 0, 1)])
        observed = ScanningModel(1000.0).observe(
            net, np.random.default_rng(0)
        )
        total = sum(c.duration for c in observed.contacts)
        assert total <= 100000.0 + 2000.0
