"""Unit tests for Section 6 contact-removal transforms."""

import numpy as np
import pytest

from repro.core import Contact, TemporalNetwork
from repro.traces.filters import (
    internal_only,
    keep_if,
    remove_long,
    remove_random,
    remove_short,
    restrict_nodes,
    shift_origin,
    time_window,
)


@pytest.fixture
def net():
    return TemporalNetwork(
        [
            Contact(0.0, 60.0, 0, 1),       # 1 minute
            Contact(100.0, 700.0, 1, 2),    # 10 minutes
            Contact(800.0, 4400.0, 0, 2),   # 1 hour
            Contact(5000.0, 5010.0, "ext0", 1),
        ],
        nodes=[0, 1, 2, 3, "ext0"],
    )


class TestRemoveRandom:
    def test_zero_probability_keeps_everything(self, net, rng):
        assert remove_random(net, 0.0, rng).num_contacts == net.num_contacts

    def test_one_probability_removes_everything(self, net, rng):
        filtered = remove_random(net, 1.0, rng)
        assert filtered.num_contacts == 0
        assert len(filtered) == len(net)  # roster preserved

    def test_expected_fraction(self, rng):
        contacts = [Contact(float(i), float(i + 1), 0, 1) for i in range(2000)]
        big = TemporalNetwork(contacts)
        filtered = remove_random(big, 0.9, rng)
        assert filtered.num_contacts == pytest.approx(200, rel=0.25)

    def test_validation(self, net, rng):
        with pytest.raises(ValueError):
            remove_random(net, 1.5, rng)

    def test_subset_of_original(self, net, rng):
        filtered = remove_random(net, 0.5, rng)
        original = set(net.contacts)
        assert all(c in original for c in filtered.contacts)


class TestRemoveByDuration:
    def test_remove_short(self, net):
        filtered = remove_short(net, 600.0)
        assert filtered.num_contacts == 2
        assert all(c.duration >= 600.0 for c in filtered.contacts)

    def test_remove_short_boundary_inclusive(self, net):
        filtered = remove_short(net, 60.0)
        assert Contact(0.0, 60.0, 0, 1) in list(filtered.contacts)

    def test_remove_long(self, net):
        filtered = remove_long(net, 600.0)
        assert filtered.num_contacts == 3
        assert all(c.duration <= 600.0 for c in filtered.contacts)

    def test_validation(self, net):
        with pytest.raises(ValueError):
            remove_short(net, -1.0)
        with pytest.raises(ValueError):
            remove_long(net, -1.0)

    def test_complementary_split(self, net):
        kept_short = remove_long(net, 100.0).num_contacts
        kept_long = remove_short(net, 100.0).num_contacts
        # Durations exactly 100 would be double-counted; none here.
        assert kept_short + kept_long == net.num_contacts


class TestTimeWindow:
    def test_clipping(self, net):
        windowed = time_window(net, 50.0, 900.0)
        assert all(50.0 <= c.t_beg and c.t_end <= 900.0 for c in windowed.contacts)
        # The straddling contact [0, 60] is clipped to [50, 60].
        assert Contact(50.0, 60.0, 0, 1) in list(windowed.contacts)

    def test_strict_containment(self, net):
        windowed = time_window(net, 50.0, 900.0, clip=False)
        assert windowed.num_contacts == 1  # only [100, 700]

    def test_empty_window_rejected(self, net):
        with pytest.raises(ValueError):
            time_window(net, 5.0, 5.0)

    def test_contact_ending_at_window_end_dropped(self, net):
        # Regression: windows are half-open [t0, t1).  A contact whose
        # closed interval touches t1 extends to an unobserved instant
        # and must be dropped, not kept (the old closed-interval test
        # admitted [100, 700] into a window ending exactly at 700).
        windowed = time_window(net, 100.0, 700.0, clip=False)
        assert windowed.num_contacts == 0

    def test_contact_beginning_at_window_end_dropped(self):
        net = TemporalNetwork([Contact(700.0, 700.0, 0, 1)])
        windowed = time_window(net, 100.0, 700.0, clip=False)
        assert windowed.num_contacts == 0

    def test_contact_beginning_at_window_start_kept(self, net):
        windowed = time_window(net, 100.0, 701.0, clip=False)
        assert list(windowed.contacts) == [Contact(100.0, 700.0, 1, 2)]

    def test_clip_boundary_behaviour_unchanged(self, net):
        # Clipping intersects closed contact intervals with the window;
        # the half-open fix applies to the drop path only.
        windowed = time_window(net, 100.0, 700.0, clip=True)
        assert Contact(100.0, 700.0, 1, 2) in list(windowed.contacts)


class TestNodeFilters:
    def test_restrict_nodes(self, net):
        reduced = restrict_nodes(net, [0, 1, 3])
        assert set(reduced.nodes) == {0, 1, 3}
        assert reduced.num_contacts == 1  # only the 0-1 contact survives
        assert 3 in reduced  # isolated node kept in roster

    def test_restrict_unknown_node_rejected(self, net):
        with pytest.raises(KeyError):
            restrict_nodes(net, [0, 99])

    def test_internal_only(self, net):
        internal = internal_only(net)
        assert "ext0" not in internal
        assert internal.num_contacts == 3

    def test_keep_if(self, net):
        kept = keep_if(net, lambda c: c.u == 0)
        assert all(c.u == 0 for c in kept.contacts)


class TestShiftOrigin:
    def test_shift_to_zero(self, net):
        shifted = shift_origin(time_window(net, 100.0, 5010.0))
        assert shifted.span[0] == 0.0

    def test_shift_to_custom_origin(self, net):
        shifted = shift_origin(net, new_origin=1000.0)
        assert shifted.span[0] == 1000.0
        assert shifted.duration == net.duration
